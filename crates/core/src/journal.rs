//! The write-ahead session journal — what makes a batch crash-consistent.
//!
//! A durable batch ([`crate::SessionEngine::run`] under a policy with
//! [`crate::BatchPolicy::with_durability`]) records each session's
//! progress as `intent → launched → terminal`:
//!
//! * **Intent** — a worker picked the job up; nothing irreversible yet.
//! * **Launched** — `SLAUNCH` succeeded; pages and a sePCR are bound.
//! * **Quoted** / **Degraded** — the session finished; its complete
//!   result (output, cost report, quote bytes) is in the record.
//!
//! At each terminal commit the whole journal is serialized, sealed to
//! the empty PCR selection (so a reboot can never invalidate the blob),
//! and parked in TPM NVRAM. After a power loss, recovery unseals the
//! blob and replays it: terminal records rebuild their
//! [`SessionResult`]s byte-for-byte; everything else — intent-only,
//! launched-but-torn, or never started — is relaunched.
//!
//! Killed sessions are deliberately **not** journaled. A kill is a pure
//! function of the fault plan and the session key, so relaunching a
//! killed session after a reset re-derives the identical
//! [`SessionResult::Killed`] — cheaper and safer than serializing
//! arbitrary error values into NVRAM. (The crash-point property test
//! proves the equivalence.)

use std::collections::BTreeMap;

use sea_hw::{CpuId, SimDuration};
use sea_tpm::Quote;

use crate::concurrent::{JobResult, SessionResult};
use crate::error::SeaError;
use crate::report::SessionReport;

/// Magic prefix of the serialized journal.
const MAGIC: &[u8; 6] = b"SJNLv1";

/// Progress record for one session, keyed by its batch index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// A worker owns the job; `SLAUNCH` has not succeeded yet.
    Intent,
    /// `SLAUNCH` succeeded; the session holds pages and a sePCR.
    Launched,
    /// Terminal: the session completed and was quoted.
    Quoted {
        /// The PAL's output.
        output: Vec<u8>,
        /// The session's cost breakdown.
        report: SessionReport,
        /// Virtual cost of the post-exit quote + free.
        quote_cost: SimDuration,
        /// The CPU (= worker) the session ran on.
        cpu: u16,
        /// The serialized attestation ([`Quote::to_bytes`]).
        quote: Vec<u8>,
        /// Injected faults retried along the way.
        retries: u32,
        /// Virtual time spent on fault handling and backoff.
        recovery_cost: SimDuration,
    },
    /// Terminal: the sePCR bank was saturated; the session completed on
    /// the legacy slow path without a sePCR-bound quote.
    Degraded {
        /// The PAL's output.
        output: Vec<u8>,
        /// The legacy session's cost breakdown.
        report: SessionReport,
    },
}

impl JournalEntry {
    /// Whether this record is terminal (the session need not re-run).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JournalEntry::Quoted { .. } | JournalEntry::Degraded { .. }
        )
    }
}

/// The batch's write-ahead journal: one [`JournalEntry`] per session
/// key, monotone per key (intent → launched → terminal).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionJournal {
    entries: BTreeMap<u64, JournalEntry>,
}

impl SessionJournal {
    /// An empty journal (fresh batch, or nothing recovered from NVRAM).
    pub fn new() -> Self {
        SessionJournal::default()
    }

    /// Number of sessions with any record.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no session has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The record for `key`, if any.
    pub fn entry(&self, key: u64) -> Option<&JournalEntry> {
        self.entries.get(&key)
    }

    /// Records that a worker owns session `key`. Never downgrades a
    /// later record (a relaunched session re-declares intent).
    pub fn record_intent(&mut self, key: u64) {
        self.entries.entry(key).or_insert(JournalEntry::Intent);
    }

    /// Records that session `key` launched. Never downgrades a terminal
    /// record.
    pub fn record_launched(&mut self, key: u64) {
        let e = self.entries.entry(key).or_insert(JournalEntry::Launched);
        if !e.is_terminal() {
            *e = JournalEntry::Launched;
        }
    }

    /// Commits a terminal record for `key` from the session's final
    /// result. [`SessionResult::Killed`] is intentionally not journaled
    /// (see the module docs); the entry stays non-terminal and the
    /// session re-derives its kill on relaunch.
    pub fn commit(&mut self, key: u64, result: &SessionResult) {
        let record = match result {
            SessionResult::Quoted {
                result,
                quote,
                retries,
                recovery_cost,
            } => JournalEntry::Quoted {
                output: result.output.clone(),
                report: result.report,
                quote_cost: result.quote_cost,
                cpu: result.cpu.0,
                quote: quote.to_bytes(),
                retries: *retries,
                recovery_cost: *recovery_cost,
            },
            SessionResult::Degraded { output, report, .. } => JournalEntry::Degraded {
                output: output.clone(),
                report: *report,
            },
            SessionResult::Killed { .. } => return,
            // Unknown future variants are conservatively treated as
            // non-durable: the session relaunches after a crash.
            #[allow(unreachable_patterns)]
            _ => return,
        };
        self.entries.insert(key, record);
    }

    /// Keys whose sessions were in flight — intent or launched, no
    /// terminal record — i.e. torn by the crash.
    pub fn torn(&self) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|(_, e)| !e.is_terminal())
            .map(|(k, _)| *k)
            .collect()
    }

    /// Rebuilds the committed [`SessionResult`]s from the terminal
    /// records, in key order.
    ///
    /// # Errors
    ///
    /// [`SeaError::Tpm`] if a stored quote fails to parse.
    pub fn restore(&self) -> Result<Vec<(u64, SessionResult)>, SeaError> {
        let mut out = Vec::new();
        for (key, entry) in &self.entries {
            match entry {
                JournalEntry::Quoted {
                    output,
                    report,
                    quote_cost,
                    cpu,
                    quote,
                    retries,
                    recovery_cost,
                } => out.push((
                    *key,
                    SessionResult::Quoted {
                        result: JobResult {
                            output: output.clone(),
                            report: *report,
                            quote_cost: *quote_cost,
                            cpu: CpuId(*cpu),
                        },
                        quote: Quote::from_bytes(quote)?,
                        retries: *retries,
                        recovery_cost: *recovery_cost,
                    },
                )),
                JournalEntry::Degraded { output, report } => out.push((
                    *key,
                    SessionResult::Degraded {
                        job: *key as usize,
                        output: output.clone(),
                        report: *report,
                    },
                )),
                JournalEntry::Intent | JournalEntry::Launched => {}
            }
        }
        Ok(out)
    }

    /// Serializes the journal (the bytes the checkpoint seals).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for (key, entry) in &self.entries {
            out.extend_from_slice(&key.to_be_bytes());
            match entry {
                JournalEntry::Intent => out.push(0),
                JournalEntry::Launched => out.push(1),
                JournalEntry::Quoted {
                    output,
                    report,
                    quote_cost,
                    cpu,
                    quote,
                    retries,
                    recovery_cost,
                } => {
                    out.push(2);
                    put_bytes(&mut out, output);
                    put_report(&mut out, report);
                    out.extend_from_slice(&quote_cost.as_ns().to_be_bytes());
                    out.extend_from_slice(&cpu.to_be_bytes());
                    put_bytes(&mut out, quote);
                    out.extend_from_slice(&retries.to_be_bytes());
                    out.extend_from_slice(&recovery_cost.as_ns().to_be_bytes());
                }
                JournalEntry::Degraded { output, report } => {
                    out.push(3);
                    put_bytes(&mut out, output);
                    put_report(&mut out, report);
                }
            }
        }
        out
    }

    /// Parses a journal serialized by [`SessionJournal::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SeaError::JournalCorrupt`] for truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SeaError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SeaError::JournalCorrupt("bad magic"));
        }
        let count = r.u32()?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let key = r.u64()?;
            let entry = match r.u8()? {
                0 => JournalEntry::Intent,
                1 => JournalEntry::Launched,
                2 => JournalEntry::Quoted {
                    output: r.bytes_field()?,
                    report: r.report()?,
                    quote_cost: r.duration()?,
                    cpu: r.u16()?,
                    quote: r.bytes_field()?,
                    retries: r.u32()?,
                    recovery_cost: r.duration()?,
                },
                3 => JournalEntry::Degraded {
                    output: r.bytes_field()?,
                    report: r.report()?,
                },
                _ => return Err(SeaError::JournalCorrupt("unknown record tag")),
            };
            entries.insert(key, entry);
        }
        if r.pos != bytes.len() {
            return Err(SeaError::JournalCorrupt("trailing bytes"));
        }
        Ok(SessionJournal { entries })
    }
}

fn put_bytes(out: &mut Vec<u8>, field: &[u8]) {
    out.extend_from_slice(&(field.len() as u32).to_be_bytes());
    out.extend_from_slice(field);
}

fn put_report(out: &mut Vec<u8>, report: &SessionReport) {
    for d in [
        report.late_launch,
        report.seal,
        report.unseal,
        report.quote,
        report.tpm_other,
        report.context_switch,
        report.pal_work,
    ] {
        out.extend_from_slice(&d.as_ns().to_be_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SeaError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SeaError::JournalCorrupt("truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SeaError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SeaError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, SeaError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, SeaError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn duration(&mut self) -> Result<SimDuration, SeaError> {
        Ok(SimDuration::from_ns(self.u64()?))
    }

    fn bytes_field(&mut self) -> Result<Vec<u8>, SeaError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn report(&mut self) -> Result<SessionReport, SeaError> {
        Ok(SessionReport {
            late_launch: self.duration()?,
            seal: self.duration()?,
            unseal: self.duration()?,
            quote: self.duration()?,
            tpm_other: self.duration()?,
            context_switch: self.duration()?,
            pal_work: self.duration()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SessionReport {
        SessionReport {
            late_launch: SimDuration::from_us(10),
            pal_work: SimDuration::from_us(40),
            ..SessionReport::default()
        }
    }

    fn quoted(output: &[u8]) -> SessionResult {
        SessionResult::Quoted {
            result: JobResult {
                output: output.to_vec(),
                report: report(),
                quote_cost: SimDuration::from_us(880),
                cpu: CpuId(2),
            },
            quote: test_quote(),
            retries: 1,
            recovery_cost: SimDuration::from_us(70),
        }
    }

    fn test_quote() -> Quote {
        // A structurally valid quote via the TPM itself.
        let mut tpm = sea_tpm::Tpm::new(
            sea_hw::TpmKind::Infineon,
            sea_tpm::KeyStrength::Demo512,
            b"journal test",
        );
        let wire = tpm.quote(b"nonce", &[sea_tpm::PcrIndex(17)]).unwrap().value;
        Quote::from_wire(&wire).expect("TPM emits well-formed wire")
    }

    #[test]
    fn lifecycle_is_monotone_per_key() {
        let mut j = SessionJournal::new();
        j.record_intent(3);
        assert_eq!(j.entry(3), Some(&JournalEntry::Intent));
        j.record_launched(3);
        assert_eq!(j.entry(3), Some(&JournalEntry::Launched));
        // Re-declaring intent after launch must not rewind.
        j.record_intent(3);
        assert_eq!(j.entry(3), Some(&JournalEntry::Launched));
        j.commit(3, &quoted(b"out"));
        assert!(j.entry(3).unwrap().is_terminal());
        // Nor may a relaunch record rewind a terminal.
        j.record_launched(3);
        assert!(j.entry(3).unwrap().is_terminal());
    }

    #[test]
    fn killed_results_are_not_journaled() {
        let mut j = SessionJournal::new();
        j.record_launched(5);
        j.commit(
            5,
            &SessionResult::Killed {
                job: 5,
                attempts: 5,
                error: SeaError::NoTpm,
                wasted: SimDuration::from_us(1),
            },
        );
        assert_eq!(j.entry(5), Some(&JournalEntry::Launched));
        assert_eq!(j.torn(), vec![5]);
    }

    #[test]
    fn roundtrip_preserves_everything_and_restores_results() {
        let mut j = SessionJournal::new();
        j.record_intent(0);
        j.record_launched(1);
        let q = quoted(b"alpha");
        j.commit(2, &q);
        j.commit(
            7,
            &SessionResult::Degraded {
                job: 7,
                output: b"slow path".to_vec(),
                report: report(),
            },
        );

        let bytes = j.to_bytes();
        let back = SessionJournal::from_bytes(&bytes).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.torn(), vec![0, 1]);

        let restored = back.restore().unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[0].0, 2);
        assert_eq!(restored[0].1, q);
        match &restored[1].1 {
            SessionResult::Degraded { job, output, .. } => {
                assert_eq!(*job, 7);
                assert_eq!(output, b"slow path");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicked() {
        assert!(matches!(
            SessionJournal::from_bytes(b"NOPEv1\0\0\0\0"),
            Err(SeaError::JournalCorrupt("bad magic"))
        ));
        let mut good = SessionJournal::new();
        good.record_intent(1);
        let mut bytes = good.to_bytes();
        // Truncation mid-record.
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            SessionJournal::from_bytes(&bytes),
            Err(SeaError::JournalCorrupt(_))
        ));
        // Trailing garbage.
        let mut padded = good.to_bytes();
        padded.push(0xFF);
        assert!(matches!(
            SessionJournal::from_bytes(&padded),
            Err(SeaError::JournalCorrupt("trailing bytes"))
        ));
        // Unknown tag.
        let mut bad_tag = good.to_bytes();
        let last = bad_tag.len() - 1;
        bad_tag[last] = 9;
        assert!(matches!(
            SessionJournal::from_bytes(&bad_tag),
            Err(SeaError::JournalCorrupt("unknown record tag"))
        ));
        // The empty journal round-trips.
        let empty = SessionJournal::new();
        assert!(empty.is_empty());
        assert_eq!(
            SessionJournal::from_bytes(&empty.to_bytes()).unwrap().len(),
            0
        );
    }
}
