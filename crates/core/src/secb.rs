//! The Secure Execution Control Block (Figure 5(a)) and the PAL life
//! cycle (Figure 6).

use sea_hw::{PageRange, SimDuration};
use sea_tpm::SePcrHandle;

/// How interrupts are delivered while a PAL executes (§6, *PAL Interrupt
/// Handling*).
///
/// "We recommend that a PAL not accept interrupts. However, there may
/// still be situations where it is necessary ... a PAL should be able to
/// configure an Interrupt Descriptor Table to receive interrupts.
/// Routing only the interrupts the PAL is interested in requires the CPU
/// to reprogram the interrupt routing logic every time a PAL is
/// scheduled, which may create undesirable overhead."
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum InterruptPolicy {
    /// Interrupts disabled for the PAL's whole execution (the paper's
    /// recommendation and the default).
    #[default]
    Disabled,
    /// The PAL configures an IDT for the listed interrupt vectors; the
    /// routing logic is reprogrammed at every schedule, costing
    /// [`crate::EnhancedSea`] extra time per launch/resume.
    Forward(Vec<u8>),
}

/// The Figure 6 life-cycle states of a PAL.
///
/// ```text
///                      measurement
///  Start ──SLAUNCH──▶ Protect ──▶ Measure ──▶ Execute ──SFREE──▶ Done
///             MF=0                 complete      │  ▲              ▲
///                                                ▼  │ SLAUNCH MF=1 │
///                                              Suspend ───SKILL────┘
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PalLifecycle {
    /// SECB allocated by the OS; nothing protected yet.
    #[default]
    Start,
    /// Memory-controller protections being installed.
    Protect,
    /// PAL image streaming to the TPM for measurement.
    Measure,
    /// Running on a CPU with full hardware protections.
    Execute,
    /// Context-switched out; pages are `NONE`, state inaccessible to all.
    Suspend,
    /// Terminated (`SFREE` or `SKILL`); resources returned to the OS.
    Done,
}

/// The Secure Execution Control Block: the in-memory structure holding a
/// PAL's state and resource allocations (Figure 5(a)).
///
/// Fields mirror the figure: saved CPU state (modelled as the persistent
/// PAL byte-state held in its protected pages), the allocated memory
/// pages, the Measured Flag, the preemption timer, and the sePCR handle.
#[derive(Debug, Clone)]
pub struct Secb {
    /// Human-readable PAL name (diagnostics only; not part of identity).
    name: String,
    /// Physical pages allocated to the PAL ("the PAL and SECB should be
    /// contiguous in memory", §5.1.1).
    pages: PageRange,
    /// Length of the measured PAL image within the region.
    image_len: usize,
    /// The Measured Flag: distinguishes first launch (measure!) from
    /// resume (§5.3.1). "The Measured Flag is honored only if the SECB's
    /// memory page is set to NONE."
    measured: bool,
    /// OS-configured preemption budget per scheduling quantum (§5.3.1).
    preemption_timer: Option<SimDuration>,
    /// Handle of the sePCR bound at first launch (§5.4.1).
    sepcr: Option<SePcrHandle>,
    /// Interrupt delivery configuration (§6).
    interrupt_policy: InterruptPolicy,
    /// Current life-cycle state.
    lifecycle: PalLifecycle,
}

impl Secb {
    /// Creates a fresh SECB in the `Start` state.
    pub fn new(
        name: &str,
        pages: PageRange,
        image_len: usize,
        preemption_timer: Option<SimDuration>,
    ) -> Self {
        Secb {
            name: name.to_owned(),
            pages,
            image_len,
            measured: false,
            preemption_timer,
            sepcr: None,
            interrupt_policy: InterruptPolicy::Disabled,
            lifecycle: PalLifecycle::Start,
        }
    }

    /// Configures interrupt delivery (builder-style; §6).
    pub fn with_interrupt_policy(mut self, policy: InterruptPolicy) -> Self {
        self.interrupt_policy = policy;
        self
    }

    /// The configured interrupt policy.
    pub fn interrupt_policy(&self) -> &InterruptPolicy {
        &self.interrupt_policy
    }

    /// The PAL's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The allocated page range.
    pub fn pages(&self) -> PageRange {
        self.pages
    }

    /// Length of the measured image.
    pub fn image_len(&self) -> usize {
        self.image_len
    }

    /// The Measured Flag.
    pub fn measured(&self) -> bool {
        self.measured
    }

    pub(crate) fn set_measured(&mut self) {
        self.measured = true;
    }

    /// The preemption budget, if the OS configured one.
    pub fn preemption_timer(&self) -> Option<SimDuration> {
        self.preemption_timer
    }

    /// The bound sePCR handle (after measurement).
    pub fn sepcr(&self) -> Option<SePcrHandle> {
        self.sepcr
    }

    pub(crate) fn bind_sepcr(&mut self, handle: SePcrHandle) {
        self.sepcr = Some(handle);
    }

    /// Current life-cycle state.
    pub fn lifecycle(&self) -> PalLifecycle {
        self.lifecycle
    }

    /// Transitions along a Figure 6 edge. Returns `false` (and leaves the
    /// state unchanged) if the figure has no such edge — the hardware
    /// would refuse.
    pub(crate) fn transition(&mut self, to: PalLifecycle) -> bool {
        use PalLifecycle::*;
        let legal = matches!(
            (self.lifecycle, to),
            (Start, Protect)
                | (Protect, Measure)
                | (Protect, Execute)   // resume path: MF=1 skips Measure
                | (Measure, Execute)
                | (Execute, Suspend)
                | (Execute, Done)      // SFREE
                | (Suspend, Protect)   // SLAUNCH resume
                | (Suspend, Done) // SKILL
        );
        if legal {
            self.lifecycle = to;
        }
        legal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_hw::PageIndex;

    fn secb() -> Secb {
        Secb::new(
            "test",
            PageRange::new(PageIndex(4), 4),
            100,
            Some(SimDuration::from_ms(5)),
        )
    }

    #[test]
    fn fresh_secb_state() {
        let s = secb();
        assert_eq!(s.lifecycle(), PalLifecycle::Start);
        assert!(!s.measured());
        assert!(s.sepcr().is_none());
        assert_eq!(s.preemption_timer(), Some(SimDuration::from_ms(5)));
        assert_eq!(s.image_len(), 100);
        assert_eq!(s.name(), "test");
    }

    #[test]
    fn happy_path_first_launch() {
        let mut s = secb();
        assert!(s.transition(PalLifecycle::Protect));
        assert!(s.transition(PalLifecycle::Measure));
        assert!(s.transition(PalLifecycle::Execute));
        assert!(s.transition(PalLifecycle::Done));
        assert_eq!(s.lifecycle(), PalLifecycle::Done);
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut s = secb();
        s.transition(PalLifecycle::Protect);
        s.transition(PalLifecycle::Measure);
        s.transition(PalLifecycle::Execute);
        assert!(s.transition(PalLifecycle::Suspend));
        // Resume: Protect then directly Execute (Measured Flag set).
        assert!(s.transition(PalLifecycle::Protect));
        assert!(s.transition(PalLifecycle::Execute));
        assert!(s.transition(PalLifecycle::Suspend));
        // SKILL from Suspend.
        assert!(s.transition(PalLifecycle::Done));
    }

    #[test]
    fn illegal_edges_rejected() {
        let mut s = secb();
        // Cannot execute or suspend from Start.
        assert!(!s.transition(PalLifecycle::Execute));
        assert!(!s.transition(PalLifecycle::Suspend));
        assert!(!s.transition(PalLifecycle::Done));
        assert_eq!(s.lifecycle(), PalLifecycle::Start);
        // Done is terminal.
        s.transition(PalLifecycle::Protect);
        s.transition(PalLifecycle::Measure);
        s.transition(PalLifecycle::Execute);
        s.transition(PalLifecycle::Done);
        for to in [
            PalLifecycle::Start,
            PalLifecycle::Protect,
            PalLifecycle::Measure,
            PalLifecycle::Execute,
            PalLifecycle::Suspend,
        ] {
            assert!(!s.transition(to), "{to:?} should be rejected from Done");
        }
    }

    #[test]
    fn interrupt_policy_defaults_to_disabled() {
        let s = secb();
        assert_eq!(s.interrupt_policy(), &InterruptPolicy::Disabled);
        let s = secb().with_interrupt_policy(InterruptPolicy::Forward(vec![0x21]));
        assert_eq!(s.interrupt_policy(), &InterruptPolicy::Forward(vec![0x21]));
    }

    #[test]
    fn flags_are_settable_once_bound() {
        let mut s = secb();
        s.set_measured();
        assert!(s.measured());
        s.bind_sepcr(SePcrHandle(3));
        assert_eq!(s.sepcr(), Some(SePcrHandle(3)));
    }
}
