//! The external verifier — the relying party of the paper's *External
//! Verification* property (§3.1).
//!
//! A verifier holds the platform's public AIK (vouched for by a Privacy
//! CA, §2.1.1) and a notion of which PAL image it trusts. Given a quote
//! it checks, in order: the AIK signature, the anti-replay nonce, the PCR
//! selection, and finally that the reported measurement chain replays
//! exactly from the trusted image — distinguishing a genuine late launch
//! from a reboot (dynamic PCRs read −1), from different code, and from a
//! `SKILL`ed PAL (chain branded with the kill constant).

use std::error::Error;
use std::fmt;

use sea_crypto::{RsaPublicKey, Sha1, Sha1Digest};
use sea_hw::CpuVendor;
use sea_tpm::{PcrIndex, PcrValue, Quote, QuoteSource, SKILL_CONSTANT};

use crate::platform::SecurePlatform;

/// Why a quote was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The AIK signature over the quoted state failed.
    BadSignature,
    /// The quote's embedded nonce differs from the verifier's challenge
    /// (replay).
    NonceMismatch,
    /// The quote covers the wrong PCRs / wrong source kind for this
    /// verification flow.
    WrongSelection,
    /// PCR 17 reads −1: the platform rebooted and no late launch has
    /// happened since (§2.1.3's reboot/dynamic-reset distinction).
    PlatformRebooted,
    /// The chain replays from the trusted image *plus the kill constant*:
    /// the PAL was terminated by `SKILL` (§5.5).
    PalKilled,
    /// The reported measurement chain does not replay from the trusted
    /// image — different code ran.
    MeasurementMismatch,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadSignature => write!(f, "AIK signature invalid"),
            VerifyError::NonceMismatch => write!(f, "nonce mismatch (possible replay)"),
            VerifyError::WrongSelection => write!(f, "quote covers unexpected PCRs"),
            VerifyError::PlatformRebooted => {
                write!(f, "platform rebooted since last late launch")
            }
            VerifyError::PalKilled => write!(f, "PAL was terminated by SKILL"),
            VerifyError::MeasurementMismatch => {
                write!(f, "measurement chain does not match trusted PAL")
            }
        }
    }
}

impl Error for VerifyError {}

/// An external verifier bound to one platform AIK.
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug, Clone)]
pub struct Verifier {
    aik: RsaPublicKey,
}

impl Verifier {
    /// Creates a verifier trusting `aik` (obtained out-of-band through
    /// the Privacy-CA certificate chain).
    pub fn new(aik: RsaPublicKey) -> Self {
        Verifier { aik }
    }

    /// The trusted AIK.
    pub fn aik(&self) -> &RsaPublicKey {
        &self.aik
    }

    /// Replays the expected PCR chain for `image` with optional
    /// runtime `extra_extends` (inputs the PAL measured via
    /// [`crate::PalCtx::measure_input`]).
    pub fn expected_chain(image: &[u8], extra_extends: &[Sha1Digest]) -> PcrValue {
        let mut v = PcrValue::ZERO.extended(&Sha1::digest(image));
        for m in extra_extends {
            v = v.extended(m);
        }
        v
    }

    fn check_envelope(&self, quote: &Quote, nonce: &[u8]) -> Result<(), VerifyError> {
        if !quote.verify_signature(&self.aik) {
            return Err(VerifyError::BadSignature);
        }
        if quote.nonce() != nonce {
            return Err(VerifyError::NonceMismatch);
        }
        Ok(())
    }

    fn classify(
        value: PcrValue,
        expected: PcrValue,
        image_chain: PcrValue,
    ) -> Result<(), VerifyError> {
        if value == expected {
            return Ok(());
        }
        if value == PcrValue::MINUS_ONE {
            return Err(VerifyError::PlatformRebooted);
        }
        if value == image_chain.extended(&SKILL_CONSTANT) {
            return Err(VerifyError::PalKilled);
        }
        Err(VerifyError::MeasurementMismatch)
    }

    /// Verifies a baseline (`SKINIT`/`SENTER`) attestation: the quote
    /// must cover PCR 17 (AMD) or PCRs 17+18 (Intel) and replay the
    /// trusted `image`'s chain.
    ///
    /// # Errors
    ///
    /// See [`VerifyError`].
    pub fn verify_legacy_quote(
        &self,
        quote: &Quote,
        nonce: &[u8],
        image: &[u8],
        vendor: CpuVendor,
        extra_extends: &[Sha1Digest],
    ) -> Result<(), VerifyError> {
        self.check_envelope(quote, nonce)?;
        let QuoteSource::Pcrs { selection, values } = quote.source() else {
            return Err(VerifyError::WrongSelection);
        };
        let image_chain = PcrValue::ZERO.extended(&Sha1::digest(image));
        match vendor {
            CpuVendor::Amd => {
                if selection.as_slice() != [PcrIndex(17)] || values.len() != 1 {
                    return Err(VerifyError::WrongSelection);
                }
                let expected = Self::expected_chain(image, extra_extends);
                Self::classify(values[0], expected, image_chain)
            }
            CpuVendor::Intel => {
                if selection.as_slice() != [PcrIndex(17), PcrIndex(18)] || values.len() != 2 {
                    return Err(VerifyError::WrongSelection);
                }
                // PCR 17 must hold the ACMod chain; PCR 18 the PAL chain.
                let acmod = SecurePlatform::expected_acmod_chain();
                if values[0] == PcrValue::MINUS_ONE {
                    return Err(VerifyError::PlatformRebooted);
                }
                if values[0] != acmod {
                    return Err(VerifyError::MeasurementMismatch);
                }
                let expected = Self::expected_chain(image, extra_extends);
                Self::classify(values[1], expected, image_chain)
            }
        }
    }

    /// Verifies a proposed-hardware attestation over a sePCR: the quote
    /// must be a sePCR quote whose chain replays the trusted `image`
    /// (plus any `extra_extends`).
    ///
    /// # Errors
    ///
    /// See [`VerifyError`].
    pub fn verify_sepcr_quote(
        &self,
        quote: &Quote,
        nonce: &[u8],
        image: &[u8],
        extra_extends: &[Sha1Digest],
    ) -> Result<(), VerifyError> {
        self.check_envelope(quote, nonce)?;
        let QuoteSource::SePcr { value } = quote.source() else {
            return Err(VerifyError::WrongSelection);
        };
        let image_chain = PcrValue::ZERO.extended(&Sha1::digest(image));
        let expected = Self::expected_chain(image, extra_extends);
        Self::classify(*value, expected, image_chain)
    }
}

/// A verifier-side trust policy over *many* PAL images: the whitelist a
/// relying party actually operates (per-service trusted builds, plus
/// revocation when a build turns out to be vulnerable).
///
/// # Example
///
/// ```
/// use sea_core::{TrustPolicy, Verifier};
/// use sea_crypto::{Drbg, RsaPrivateKey};
///
/// # fn main() -> Result<(), sea_crypto::CryptoError> {
/// let aik = RsaPrivateKey::generate(512, &mut Drbg::new(b"aik"))?;
/// let mut policy = TrustPolicy::new(Verifier::new(aik.public_key().clone()));
/// policy.trust("payroll", b"payroll PAL v3");
/// assert!(policy.is_trusted(b"payroll PAL v3"));
/// policy.revoke(b"payroll PAL v3");
/// assert!(!policy.is_trusted(b"payroll PAL v3"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TrustPolicy {
    verifier: Verifier,
    /// (service name, image digest) pairs currently trusted.
    trusted: Vec<(String, Sha1Digest, Vec<u8>)>,
}

impl TrustPolicy {
    /// Creates an empty policy over `verifier`'s AIK.
    pub fn new(verifier: Verifier) -> Self {
        TrustPolicy {
            verifier,
            trusted: Vec::new(),
        }
    }

    /// Adds `image` as a trusted build of `service`.
    pub fn trust(&mut self, service: &str, image: &[u8]) {
        let digest = Sha1::digest(image);
        if !self.trusted.iter().any(|(_, d, _)| *d == digest) {
            self.trusted
                .push((service.to_owned(), digest, image.to_vec()));
        }
    }

    /// Revokes a previously trusted image (e.g. a vulnerable build).
    pub fn revoke(&mut self, image: &[u8]) {
        let digest = Sha1::digest(image);
        self.trusted.retain(|(_, d, _)| *d != digest);
    }

    /// Whether `image` is currently trusted for any service.
    pub fn is_trusted(&self, image: &[u8]) -> bool {
        let digest = Sha1::digest(image);
        self.trusted.iter().any(|(_, d, _)| *d == digest)
    }

    /// Number of trusted builds.
    pub fn len(&self) -> usize {
        self.trusted.len()
    }

    /// Whether the policy trusts nothing.
    pub fn is_empty(&self) -> bool {
        self.trusted.is_empty()
    }

    /// Verifies a sePCR quote against the whole whitelist, returning the
    /// *service name* whose trusted build produced it.
    ///
    /// # Errors
    ///
    /// The most informative [`VerifyError`] encountered: if any image's
    /// check fails with something other than `MeasurementMismatch`
    /// (bad signature, replayed nonce, reboot), that error is returned;
    /// otherwise `MeasurementMismatch` — no trusted build matches.
    pub fn identify_sepcr_quote(
        &self,
        quote: &Quote,
        nonce: &[u8],
        extra_extends: &[Sha1Digest],
    ) -> Result<&str, VerifyError> {
        let mut last = VerifyError::MeasurementMismatch;
        for (service, _, image) in &self.trusted {
            match self
                .verifier
                .verify_sepcr_quote(quote, nonce, image, extra_extends)
            {
                Ok(()) => return Ok(service),
                Err(VerifyError::MeasurementMismatch) => {}
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhanced::EnhancedSea;
    use crate::legacy::LegacySea;
    use crate::pal::{FnPal, PalLogic, PalOutcome};
    use crate::platform::SecurePlatform;
    use sea_hw::{CpuId, Platform};
    use sea_tpm::KeyStrength;

    fn legacy(p: Platform) -> LegacySea {
        LegacySea::new(SecurePlatform::new(p, KeyStrength::Demo512, b"attest")).unwrap()
    }

    #[test]
    fn legacy_amd_quote_verifies_end_to_end() {
        let mut sea = legacy(Platform::hp_dc5750());
        let mut pal = FnPal::new("trusted", |_| Ok(PalOutcome::Exit(vec![])));
        let image = pal.image();
        sea.run_session(&mut pal, b"").unwrap();
        let q = sea.quote(b"challenge").unwrap().value;
        let v = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        assert_eq!(
            v.verify_legacy_quote(&q, b"challenge", &image, CpuVendor::Amd, &[]),
            Ok(())
        );
        // Wrong image is rejected as a mismatch.
        assert_eq!(
            v.verify_legacy_quote(&q, b"challenge", b"other image", CpuVendor::Amd, &[]),
            Err(VerifyError::MeasurementMismatch)
        );
        // Wrong nonce is a replay.
        assert_eq!(
            v.verify_legacy_quote(&q, b"stale", &image, CpuVendor::Amd, &[]),
            Err(VerifyError::NonceMismatch)
        );
    }

    #[test]
    fn legacy_intel_quote_checks_both_pcrs() {
        let mut sea = legacy(Platform::intel_tep());
        let mut pal = FnPal::new("trusted", |_| Ok(PalOutcome::Exit(vec![])));
        let image = pal.image();
        sea.run_session(&mut pal, b"").unwrap();
        let q = sea.quote(b"n").unwrap().value;
        let v = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        assert_eq!(
            v.verify_legacy_quote(&q, b"n", &image, CpuVendor::Intel, &[]),
            Ok(())
        );
        // Interpreted as an AMD quote, the selection is wrong.
        assert_eq!(
            v.verify_legacy_quote(&q, b"n", &image, CpuVendor::Amd, &[]),
            Err(VerifyError::WrongSelection)
        );
    }

    #[test]
    fn reboot_detected_as_minus_one() {
        let mut sea = legacy(Platform::hp_dc5750());
        let mut pal = FnPal::new("trusted", |_| Ok(PalOutcome::Exit(vec![])));
        let image = pal.image();
        sea.run_session(&mut pal, b"").unwrap();
        sea.platform_mut().reboot();
        let q = sea.quote(b"n").unwrap().value;
        let v = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        assert_eq!(
            v.verify_legacy_quote(&q, b"n", &image, CpuVendor::Amd, &[]),
            Err(VerifyError::PlatformRebooted)
        );
    }

    #[test]
    fn forged_aik_rejected() {
        let mut sea = legacy(Platform::hp_dc5750());
        let mut pal = FnPal::new("trusted", |_| Ok(PalOutcome::Exit(vec![])));
        let image = pal.image();
        sea.run_session(&mut pal, b"").unwrap();
        let q = sea.quote(b"n").unwrap().value;
        // A verifier trusting a *different* AIK rejects the signature.
        let other =
            sea_crypto::RsaPrivateKey::generate(512, &mut sea_crypto::Drbg::new(b"attacker key"))
                .unwrap();
        let v = Verifier::new(other.public_key().clone());
        assert_eq!(
            v.verify_legacy_quote(&q, b"n", &image, CpuVendor::Amd, &[]),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn software_cannot_fake_a_launch() {
        // Ring-0 code extends PCR 17 with the trusted PAL's hash WITHOUT
        // a late launch. Because PCR 17 post-reboot is −1 (not 0), the
        // resulting chain can never equal the launch chain.
        let mut sea = legacy(Platform::hp_dc5750());
        let pal = FnPal::new("trusted", |_| Ok(PalOutcome::Exit(vec![])));
        let image = pal.image();
        let digest = Sha1::digest(&image);
        sea.platform_mut()
            .tpm_mut()
            .unwrap()
            .extend(PcrIndex(17), &digest)
            .unwrap();
        let q = sea.quote(b"n").unwrap().value;
        let v = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        assert_eq!(
            v.verify_legacy_quote(&q, b"n", &image, CpuVendor::Amd, &[]),
            Err(VerifyError::MeasurementMismatch)
        );
    }

    #[test]
    fn sepcr_quote_verifies_with_measured_inputs() {
        let platform =
            SecurePlatform::new(Platform::recommended(2), KeyStrength::Demo512, b"attest-e");
        let mut sea = EnhancedSea::new(platform).unwrap();
        let input_digest = Sha1::digest(b"config file v7");
        let mut pal = FnPal::new("measuring", move |ctx| {
            ctx.measure_input(&input_digest)?;
            Ok(PalOutcome::Exit(vec![]))
        });
        let image = pal.image();
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        let q = sea.quote_and_free(id, b"n").unwrap().value;
        let v = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        // Verifies only with the measured input in the expected chain.
        assert_eq!(
            v.verify_sepcr_quote(&q, b"n", &image, &[Sha1::digest(b"config file v7")]),
            Ok(())
        );
        assert_eq!(
            v.verify_sepcr_quote(&q, b"n", &image, &[]),
            Err(VerifyError::MeasurementMismatch)
        );
        // A legacy flow cannot consume a sePCR quote.
        assert_eq!(
            v.verify_legacy_quote(&q, b"n", &image, CpuVendor::Amd, &[]),
            Err(VerifyError::WrongSelection)
        );
    }

    #[test]
    fn expected_chain_replays_extends_in_order() {
        let a = Sha1::digest(b"a");
        let b = Sha1::digest(b"b");
        let ab = Verifier::expected_chain(b"img", &[a, b]);
        let ba = Verifier::expected_chain(b"img", &[b, a]);
        assert_ne!(ab, ba);
        assert_eq!(
            Verifier::expected_chain(b"img", &[]),
            PcrValue::ZERO.extended(&Sha1::digest(b"img"))
        );
    }

    #[test]
    fn skill_classification() {
        let image = b"victim";
        let chain = PcrValue::ZERO.extended(&Sha1::digest(image));
        let killed = chain.extended(&SKILL_CONSTANT);
        assert_eq!(
            Verifier::classify(killed, chain, chain),
            Err(VerifyError::PalKilled)
        );
    }

    #[test]
    fn trust_policy_identifies_and_revokes() {
        let platform =
            SecurePlatform::new(Platform::recommended(2), KeyStrength::Demo512, b"policy");
        let mut sea = EnhancedSea::new(platform).unwrap();
        let mut policy = TrustPolicy::new(Verifier::new(
            sea.platform().tpm().unwrap().aik_public().clone(),
        ));
        assert!(policy.is_empty());

        let mut payroll = FnPal::new("payroll-v3", |_| Ok(PalOutcome::Exit(vec![])));
        let mut backups = FnPal::new("backup-agent-v1", |_| Ok(PalOutcome::Exit(vec![])));
        policy.trust("payroll", &payroll.image());
        policy.trust("backups", &backups.image());
        policy.trust("payroll", &payroll.image()); // idempotent
        assert_eq!(policy.len(), 2);

        // Run the payroll PAL; the policy names the right service.
        let id = sea.slaunch(&mut payroll, b"", CpuId(0), None).unwrap();
        sea.run_to_exit(&mut payroll, id, CpuId(0)).unwrap();
        let q = sea.quote_and_free(id, b"n").unwrap().value;
        assert_eq!(policy.identify_sepcr_quote(&q, b"n", &[]), Ok("payroll"));
        // Wrong nonce reported as the informative error.
        assert_eq!(
            policy.identify_sepcr_quote(&q, b"stale", &[]),
            Err(VerifyError::NonceMismatch)
        );

        // Revoke payroll: the same quote no longer identifies.
        policy.revoke(&payroll.image());
        assert_eq!(
            policy.identify_sepcr_quote(&q, b"n", &[]),
            Err(VerifyError::MeasurementMismatch)
        );
        // Backups still trusted.
        let id = sea.slaunch(&mut backups, b"", CpuId(1), None).unwrap();
        sea.run_to_exit(&mut backups, id, CpuId(1)).unwrap();
        let q = sea.quote_and_free(id, b"m").unwrap().value;
        assert_eq!(policy.identify_sepcr_quote(&q, b"m", &[]), Ok("backups"));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            VerifyError::BadSignature,
            VerifyError::NonceMismatch,
            VerifyError::WrongSelection,
            VerifyError::PlatformRebooted,
            VerifyError::PalKilled,
            VerifyError::MeasurementMismatch,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
