//! [`SecurePlatform`]: a machine plus its TPM, with the late-launch
//! primitive both SEA generations build on.

use sea_crypto::Sha1;
use sea_hw::{
    CpuId, LateLaunchModel, Layer, Machine, Obs, PageRange, Platform, SimDuration, TpmKind,
};
use sea_tpm::{KeyStrength, Locality, PcrIndex, PcrValue, Tpm};

use crate::error::SeaError;

/// Synthetic stand-in for Intel's signed Authenticated Code Module. Its
/// ~10 KB transfer and signature check are folded into the platform's
/// calibrated fixed `SENTER` cost; only its measurement (→ PCR 17)
/// matters functionally.
const ACMOD_IMAGE: &[u8] = b"INTEL-ACMOD-SINIT-v1";

/// Outcome and cost breakdown of one late launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LateLaunch {
    /// CPU trusted-state initialization cost (< 10 µs, §4.3.1).
    pub cpu_init: SimDuration,
    /// PAL transfer + hashing cost (LPC/TPM on AMD; ACMod + CPU-side
    /// SHA-1 on Intel).
    pub transfer_hash: SimDuration,
    /// The PCR(s) now holding the launch measurement — `[17]` on AMD,
    /// `[17, 18]` on Intel — empty on TPM-less machines.
    pub measured_pcrs: Vec<PcrIndex>,
    /// Value of the PCR holding the *PAL* measurement, if a TPM exists.
    pub pal_pcr_value: Option<PcrValue>,
}

impl LateLaunch {
    /// Total late-launch latency (the quantity Table 1 reports).
    pub fn total(&self) -> SimDuration {
        self.cpu_init + self.transfer_hash
    }
}

/// A [`Machine`] with its (optional) TPM: the trusted computing base of
/// Figure 1.
#[derive(Debug, Clone)]
pub struct SecurePlatform {
    machine: Machine,
    tpm: Option<Tpm>,
}

impl SecurePlatform {
    /// Builds the platform, constructing a TPM of the platform's chip
    /// kind (with the platform's sePCR count) when one is installed.
    ///
    /// # Example
    ///
    /// ```
    /// use sea_core::SecurePlatform;
    /// use sea_hw::Platform;
    /// use sea_tpm::KeyStrength;
    ///
    /// let p = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"seed");
    /// assert!(p.tpm().is_some());
    /// let tyan = SecurePlatform::new(Platform::tyan_n3600r(), KeyStrength::Demo512, b"seed");
    /// assert!(tyan.tpm().is_none());
    /// ```
    pub fn new(platform: Platform, strength: KeyStrength, seed: &[u8]) -> Self {
        let tpm = if platform.tpm_kind.is_present() {
            Some(Tpm::new(platform.tpm_kind, strength, seed).with_sepcrs(platform.sepcr_count))
        } else {
            None
        };
        SecurePlatform {
            machine: Machine::new(platform),
            tpm,
        }
    }

    /// Builds the platform around a *pre-provisioned* TPM — the fleet
    /// path, where per-platform identity keys are generated once by a
    /// key vault and injected via [`Tpm::with_keys`] instead of being
    /// re-derived on every construction.
    ///
    /// The TPM is re-equipped with the platform's sePCR count, so the
    /// proposed-hardware capability still follows the [`Platform`]
    /// preset exactly as in [`SecurePlatform::new`].
    pub fn with_tpm(platform: Platform, tpm: Tpm) -> Self {
        let tpm = tpm.with_sepcrs(platform.sepcr_count);
        SecurePlatform {
            machine: Machine::new(platform),
            tpm: Some(tpm),
        }
    }

    /// The live machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the live machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The TPM, if installed.
    pub fn tpm(&self) -> Option<&Tpm> {
        self.tpm.as_ref()
    }

    /// Mutable access to the TPM, if installed.
    pub fn tpm_mut(&mut self) -> Option<&mut Tpm> {
        self.tpm.as_mut()
    }

    /// The TPM or [`SeaError::NoTpm`].
    ///
    /// # Errors
    ///
    /// [`SeaError::NoTpm`] when the platform has no TPM.
    pub fn require_tpm(&mut self) -> Result<&mut Tpm, SeaError> {
        self.tpm.as_mut().ok_or(SeaError::NoTpm)
    }

    /// Splits the platform into machine and TPM views (for callers that
    /// need both mutably).
    pub(crate) fn parts_mut(&mut self) -> (&mut Machine, Option<&mut Tpm>) {
        (&mut self.machine, self.tpm.as_mut())
    }

    /// Installs the observability handle into the machine, through which
    /// every charge site in this crate attributes latency. Deliberately
    /// *not* installed into the TPM: on a full platform, TPM command
    /// costs are attributed at the caller's charge sites (where exact
    /// accounting against the clock is guaranteed); the TPM's own hook
    /// is for bare-chip benchmarks.
    pub fn install_obs(&mut self, obs: Obs) {
        self.machine.install_obs(obs);
    }

    /// Simulates a power cycle: machine state persists (memory is not
    /// modelled as cleared), the TPM applies reboot PCR semantics.
    pub fn reboot(&mut self) {
        if let Some(tpm) = &mut self.tpm {
            tpm.reboot();
        }
    }

    /// A full power loss and reboot: the machine rebuilds its volatile
    /// half ([`Machine::reset`] — CPUs, controller access-control table)
    /// and the TPM applies v1.2 platform-reset semantics (static PCRs
    /// → 0, dynamic → −1, every sePCR freed, lock and transient session
    /// state cleared; NVRAM untouched). Returns the reboot's virtual
    /// cost, already added to the machine clock.
    pub fn power_cycle(&mut self) -> SimDuration {
        let cost = self.machine.reset();
        if let Some(tpm) = &mut self.tpm {
            tpm.reboot();
        }
        cost
    }

    /// Pure cost model for a late launch of `image_len` bytes on this
    /// platform — the quantity swept by the Table 1 bench. Performs no
    /// state changes.
    pub fn late_launch_cost(&self, image_len: usize) -> SimDuration {
        match self.machine.platform().late_launch {
            LateLaunchModel::AmdSkinit { cpu_init } => {
                let transfer = match &self.tpm {
                    // SKINIT streams the SLB through the TPM, paying its
                    // LPC long wait cycles (~2.71 µs/B on 2007 chips).
                    Some(tpm) => tpm.timing().hash_time(image_len),
                    // No TPM: raw LPC transfer (~134.6 ns/B measured).
                    None => self.machine.lpc().transfer_time(image_len),
                };
                cpu_init + transfer
            }
            LateLaunchModel::IntelSenter {
                acmod_cost,
                cpu_hash_ns_per_byte,
            } => acmod_cost + SimDuration::from_ns_f64(image_len as f64 * cpu_hash_ns_per_byte),
        }
    }

    /// Executes a late launch (`SKINIT`/`SENTER`) of the image stored in
    /// `slb` (`image_len` bytes from its base):
    ///
    /// 1. programs DEV/MPT DMA protection over the region (§2.2.1),
    /// 2. reinitializes the CPU to the trusted state with interrupts off,
    /// 3. resets the dynamic PCRs and measures the image into PCR 17
    ///    (AMD) or PCRs 17+18 (Intel ACMod + PAL), and
    /// 4. advances the machine clock by the calibrated cost.
    ///
    /// # Errors
    ///
    /// [`SeaError::Hw`] for bad CPU/region; [`SeaError::NoTpm`] for
    /// `SENTER` without a TPM (the ACMod handshake requires one).
    pub fn late_launch(
        &mut self,
        cpu: CpuId,
        slb: PageRange,
        image_len: usize,
    ) -> Result<LateLaunch, SeaError> {
        if image_len > slb.byte_len() {
            return Err(SeaError::RegionTooSmall {
                needed: image_len,
                available: slb.byte_len(),
            });
        }
        let image = self.machine.memory().read_raw(slb.base_addr(), image_len)?;
        self.machine.controller_mut().set_dev(slb, true)?;
        self.machine.cpu_mut(cpu)?.enter_secure(slb.base_addr());

        let (launch, transfer_attr) = match self.machine.platform().late_launch {
            LateLaunchModel::AmdSkinit { cpu_init } => {
                let (transfer, pal_value, pcrs, attr) = match &mut self.tpm {
                    Some(tpm) => {
                        tpm.hash_start(Locality::Cpu)?;
                        let t = tpm.hash_data(&image)?.elapsed;
                        let v = tpm.hash_end()?.value;
                        (
                            t,
                            Some(v),
                            vec![PcrIndex(17)],
                            (Layer::Tpm, "tpm.hash_image"),
                        )
                    }
                    None => (
                        self.machine.lpc().transfer_time(image.len()),
                        None,
                        Vec::new(),
                        (Layer::Hw, "hw.lpc_transfer"),
                    ),
                };
                (
                    LateLaunch {
                        cpu_init,
                        transfer_hash: transfer,
                        measured_pcrs: pcrs,
                        pal_pcr_value: pal_value,
                    },
                    attr,
                )
            }
            LateLaunchModel::IntelSenter {
                acmod_cost,
                cpu_hash_ns_per_byte,
            } => {
                let tpm = self.tpm.as_mut().ok_or(SeaError::NoTpm)?;
                // ACMod: verified by the chipset, hashed into PCR 17.
                tpm.hash_start(Locality::Cpu)?;
                tpm.hash_data(ACMOD_IMAGE)?;
                tpm.hash_end()?;
                // The ACMod hashes the PAL on the main CPU and extends
                // only the 20-byte digest into PCR 18 (§4.3.2).
                let pal_digest = Sha1::digest(&image);
                let v = tpm.extend(PcrIndex(18), &pal_digest)?.value;
                (
                    LateLaunch {
                        cpu_init: SimDuration::ZERO,
                        transfer_hash: acmod_cost
                            + SimDuration::from_ns_f64(image.len() as f64 * cpu_hash_ns_per_byte),
                        measured_pcrs: vec![PcrIndex(17), PcrIndex(18)],
                        pal_pcr_value: Some(v),
                    },
                    (Layer::Hw, "hw.senter_acmod"),
                )
            }
        };
        // Charge the launch as attributed leaf spans whose sum is exactly
        // `launch.total()` — CPU trusted-state init on the hw layer, the
        // transfer+hash on whichever component dominated it.
        self.machine
            .charge(Layer::Hw, "hw.cpu_init", launch.cpu_init);
        self.machine
            .charge(transfer_attr.0, transfer_attr.1, launch.transfer_hash);
        Ok(launch)
    }

    /// Tears down a late-launch session: re-enables interrupts, clears
    /// the secure-execution CPU state, lifts the region's DMA protection.
    ///
    /// # Errors
    ///
    /// [`SeaError::Hw`] for a bad CPU or region.
    pub fn late_launch_exit(&mut self, cpu: CpuId, slb: PageRange) -> Result<(), SeaError> {
        self.machine.cpu_mut(cpu)?.leave_secure();
        self.machine.controller_mut().set_dev(slb, false)?;
        Ok(())
    }

    /// Whether this platform implements the paper's proposed hardware.
    pub fn supports_slaunch(&self) -> bool {
        self.machine.platform().supports_slaunch
    }

    /// Expected PCR-17 chain for an AMD launch of `image`, or the PCR-18
    /// chain on Intel — what a verifier should compare quotes against.
    pub fn expected_pal_chain(image: &[u8]) -> PcrValue {
        PcrValue::ZERO.extended(&Sha1::digest(image))
    }

    /// Expected PCR-17 chain on Intel platforms (the ACMod measurement).
    pub fn expected_acmod_chain() -> PcrValue {
        PcrValue::ZERO.extended(&Sha1::digest(ACMOD_IMAGE))
    }

    /// Convenience: does this platform's TPM chip match `kind`?
    pub fn tpm_kind(&self) -> TpmKind {
        self.machine.platform().tpm_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_hw::{PageIndex, PhysAddr, Requester};

    fn platform(p: Platform) -> SecurePlatform {
        SecurePlatform::new(p, KeyStrength::Demo512, b"platform test")
    }

    fn stage_image(p: &mut SecurePlatform, range: PageRange, image: &[u8]) {
        p.machine_mut()
            .memory_mut()
            .write_raw(range.base_addr(), image)
            .unwrap();
    }

    #[test]
    fn table1_cost_model_amd_with_tpm() {
        let p = platform(Platform::hp_dc5750());
        let t = p.late_launch_cost(64 * 1024);
        assert!((t.as_ms_f64() - 177.52).abs() < 0.2, "got {t}");
        let t0 = p.late_launch_cost(0);
        assert!(t0.as_ms_f64() < 0.01, "0 KB should be ~0: {t0}");
    }

    #[test]
    fn table1_cost_model_amd_without_tpm() {
        let p = platform(Platform::tyan_n3600r());
        let t = p.late_launch_cost(64 * 1024);
        assert!((t.as_ms_f64() - 8.83).abs() < 0.05, "got {t}");
    }

    #[test]
    fn table1_cost_model_intel() {
        let p = platform(Platform::intel_tep());
        let t0 = p.late_launch_cost(0);
        assert!((t0.as_ms_f64() - 26.39).abs() < 0.01, "got {t0}");
        let t64 = p.late_launch_cost(64 * 1024);
        assert!((t64.as_ms_f64() - 34.35).abs() < 0.1, "got {t64}");
    }

    #[test]
    fn amd_late_launch_measures_into_pcr17() {
        let mut p = platform(Platform::hp_dc5750());
        let range = PageRange::new(PageIndex(8), 2);
        stage_image(&mut p, range, b"pal image bytes");
        let launch = p.late_launch(CpuId(0), range, 15).unwrap();
        assert_eq!(launch.measured_pcrs, vec![PcrIndex(17)]);
        let expected = SecurePlatform::expected_pal_chain(b"pal image bytes");
        assert_eq!(launch.pal_pcr_value, Some(expected));
        assert_eq!(
            p.tpm().unwrap().pcrs().read(PcrIndex(17)).unwrap(),
            expected
        );
        // CPU is in secure execution with interrupts off.
        let cpu = p.machine().cpu(CpuId(0)).unwrap();
        assert!(cpu.in_secure_exec());
        assert!(!cpu.interrupts_enabled());
        // DMA to the SLB is blocked by the DEV.
        assert!(p
            .machine()
            .dma_read(sea_hw::DeviceId(0), range.base_addr(), 4)
            .is_err());
        // Clock advanced by the launch cost.
        assert!(p.machine().now().as_ns() > 0);
    }

    #[test]
    fn intel_late_launch_measures_acmod_and_pal() {
        let mut p = platform(Platform::intel_tep());
        let range = PageRange::new(PageIndex(8), 2);
        stage_image(&mut p, range, b"pal");
        let launch = p.late_launch(CpuId(0), range, 3).unwrap();
        assert_eq!(launch.measured_pcrs, vec![PcrIndex(17), PcrIndex(18)]);
        let tpm = p.tpm().unwrap();
        assert_eq!(
            tpm.pcrs().read(PcrIndex(17)).unwrap(),
            SecurePlatform::expected_acmod_chain()
        );
        assert_eq!(
            tpm.pcrs().read(PcrIndex(18)).unwrap(),
            SecurePlatform::expected_pal_chain(b"pal")
        );
    }

    #[test]
    fn tpmless_launch_has_no_measurement() {
        let mut p = platform(Platform::tyan_n3600r());
        let range = PageRange::new(PageIndex(8), 2);
        stage_image(&mut p, range, b"pal");
        let launch = p.late_launch(CpuId(0), range, 3).unwrap();
        assert!(launch.measured_pcrs.is_empty());
        assert!(launch.pal_pcr_value.is_none());
    }

    #[test]
    fn exit_restores_cpu_and_dma() {
        let mut p = platform(Platform::hp_dc5750());
        let range = PageRange::new(PageIndex(8), 2);
        stage_image(&mut p, range, b"pal");
        p.late_launch(CpuId(0), range, 3).unwrap();
        p.late_launch_exit(CpuId(0), range).unwrap();
        assert!(!p.machine().cpu(CpuId(0)).unwrap().in_secure_exec());
        assert!(p
            .machine()
            .dma_read(sea_hw::DeviceId(0), range.base_addr(), 1)
            .is_ok());
    }

    #[test]
    fn oversized_image_rejected() {
        let mut p = platform(Platform::hp_dc5750());
        let range = PageRange::new(PageIndex(8), 1);
        assert!(matches!(
            p.late_launch(CpuId(0), range, 5000),
            Err(SeaError::RegionTooSmall { .. })
        ));
    }

    #[test]
    fn reboot_resets_dynamic_pcrs() {
        let mut p = platform(Platform::hp_dc5750());
        let range = PageRange::new(PageIndex(8), 1);
        stage_image(&mut p, range, b"pal");
        p.late_launch(CpuId(0), range, 3).unwrap();
        p.reboot();
        assert_eq!(
            p.tpm().unwrap().pcrs().read(PcrIndex(17)).unwrap(),
            PcrValue::MINUS_ONE
        );
    }

    #[test]
    fn power_cycle_clears_cpu_state_and_charges_reboot_cost() {
        let mut p = platform(Platform::hp_dc5750());
        let range = PageRange::new(PageIndex(8), 1);
        stage_image(&mut p, range, b"pal");
        p.late_launch(CpuId(0), range, 3).unwrap();
        let before = p.machine().now();
        let cost = p.power_cycle();
        assert_eq!(cost, sea_hw::RESET_REBOOT_COST);
        assert_eq!(p.machine().now(), before + cost);
        // Volatile machine state is rebuilt from scratch...
        assert!(!p.machine().cpu(CpuId(0)).unwrap().in_secure_exec());
        assert!(p
            .machine()
            .dma_read(sea_hw::DeviceId(0), range.base_addr(), 1)
            .is_ok());
        // ...and the TPM applied reboot semantics.
        assert_eq!(
            p.tpm().unwrap().pcrs().read(PcrIndex(17)).unwrap(),
            PcrValue::MINUS_ONE
        );
    }

    #[test]
    fn unchecked_memory_write_visible_to_cpu_read() {
        // Sanity of the staging helper used by higher layers.
        let mut p = platform(Platform::hp_dc5750());
        stage_image(&mut p, PageRange::new(PageIndex(4), 1), b"abc");
        let data = p
            .machine()
            .read(Requester::Cpu(CpuId(0)), PhysAddr(4 * 4096), 3)
            .unwrap();
        assert_eq!(data, b"abc");
    }
}
