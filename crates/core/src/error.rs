//! SEA-level error type.

use std::error::Error;
use std::fmt;

use sea_hw::HwError;
use sea_tpm::TpmError;

use crate::secb::PalLifecycle;

/// Errors returned by the SEA runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SeaError {
    /// A hardware operation failed (memory protection, missing CPU, …).
    Hw(HwError),
    /// A TPM command failed (sealing policy, sePCR state, …).
    Tpm(TpmError),
    /// The operation requires a TPM and this platform has none (e.g. the
    /// Tyan n3600R test machine).
    NoTpm,
    /// The platform lacks the proposed `SLAUNCH` hardware; only
    /// [`crate::LegacySea`] runs here.
    SlaunchUnsupported,
    /// A PAL life-cycle operation arrived in the wrong state (Figure 6
    /// has no such edge).
    WrongLifecycle {
        /// State the PAL was actually in.
        actual: PalLifecycle,
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// No PAL with the given identifier is registered.
    NoSuchPal(u64),
    /// The memory region allocated to a PAL is too small for its image,
    /// input, and state.
    RegionTooSmall {
        /// Bytes required.
        needed: usize,
        /// Bytes available in the allocated region.
        available: usize,
    },
    /// The PAL's application logic reported a failure.
    PalFailed(String),
    /// The concurrent engine was asked for more worker threads than the
    /// platform has CPUs (each worker drives one CPU).
    NotEnoughCpus {
        /// Workers requested.
        requested: usize,
        /// CPUs the platform actually has.
        available: usize,
    },
    /// The recovery layer exhausted a session's retry budget (or hit a
    /// fatal fault) and tore the session down via `SKILL`.
    SessionKilled {
        /// The session key the recovery layer was driving.
        session: u64,
        /// Attempts made before giving up (1 initial + retries).
        attempts: u32,
    },
    /// The batch policy asked for a capability the selected
    /// architecture does not provide (e.g. durable batches on
    /// `Skinit`, whose sessions cannot persist across a teardown).
    PolicyUnsupported {
        /// The architecture's name.
        architecture: &'static str,
        /// The capability the policy required.
        capability: &'static str,
    },
    /// The engine's own machinery failed (a worker thread panicked, a
    /// result slot was left unfilled, an internal invariant broke).
    /// Surfaced as an error so a batch driver can report and continue
    /// instead of aborting the process.
    EngineFault(&'static str),
    /// The write-ahead session journal recovered from NVRAM failed to
    /// parse — the persistent record is unusable and recovery cannot
    /// trust it.
    JournalCorrupt(&'static str),
}

impl fmt::Display for SeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeaError::Hw(e) => write!(f, "hardware error: {e}"),
            SeaError::Tpm(e) => write!(f, "TPM error: {e}"),
            SeaError::NoTpm => write!(f, "platform has no TPM"),
            SeaError::SlaunchUnsupported => {
                write!(f, "platform does not implement SLAUNCH (baseline hardware)")
            }
            SeaError::WrongLifecycle { actual, operation } => {
                write!(f, "{operation} is not valid in the {actual:?} state")
            }
            SeaError::NoSuchPal(id) => write!(f, "no such PAL: {id}"),
            SeaError::RegionTooSmall { needed, available } => {
                write!(
                    f,
                    "PAL region too small: need {needed} bytes, have {available}"
                )
            }
            SeaError::PalFailed(msg) => write!(f, "PAL logic failed: {msg}"),
            SeaError::NotEnoughCpus {
                requested,
                available,
            } => {
                write!(
                    f,
                    "pool wants {requested} workers but the platform has {available} CPUs"
                )
            }
            SeaError::SessionKilled { session, attempts } => {
                write!(
                    f,
                    "session {session} killed after {attempts} failed attempts"
                )
            }
            SeaError::PolicyUnsupported {
                architecture,
                capability,
            } => {
                write!(
                    f,
                    "the {architecture} architecture does not support {capability}"
                )
            }
            SeaError::EngineFault(what) => write!(f, "engine fault: {what}"),
            SeaError::JournalCorrupt(what) => write!(f, "session journal corrupt: {what}"),
        }
    }
}

impl Error for SeaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SeaError::Hw(e) => Some(e),
            SeaError::Tpm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HwError> for SeaError {
    fn from(e: HwError) -> Self {
        SeaError::Hw(e)
    }
}

impl From<TpmError> for SeaError {
    fn from(e: TpmError) -> Self {
        SeaError::Tpm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_hw::CpuId;

    #[test]
    fn display_and_sources() {
        let hw: SeaError = HwError::NoSuchCpu(CpuId(4)).into();
        assert!(hw.to_string().contains("cpu4"));
        assert!(Error::source(&hw).is_some());

        let tpm: SeaError = TpmError::NoFreeSePcr.into();
        assert!(tpm.to_string().contains("sePCR"));
        assert!(Error::source(&tpm).is_some());

        for e in [
            SeaError::NoTpm,
            SeaError::SlaunchUnsupported,
            SeaError::WrongLifecycle {
                actual: PalLifecycle::Done,
                operation: "resume",
            },
            SeaError::NoSuchPal(3),
            SeaError::RegionTooSmall {
                needed: 10,
                available: 5,
            },
            SeaError::PalFailed("boom".into()),
            SeaError::NotEnoughCpus {
                requested: 8,
                available: 4,
            },
            SeaError::SessionKilled {
                session: 7,
                attempts: 5,
            },
            SeaError::PolicyUnsupported {
                architecture: "skinit",
                capability: "durable batches",
            },
            SeaError::EngineFault("worker thread panicked"),
            SeaError::JournalCorrupt("bad magic"),
        ] {
            assert!(!e.to_string().is_empty());
            assert!(Error::source(&e).is_none());
        }
    }
}
