//! Pioneer-style software-based attestation — the §7 related-work
//! comparator, implemented so the repository can *demonstrate* the
//! paper's criticism rather than assert it.
//!
//! "Seshadri et al. explore an alternate means for creating a dynamic
//! root of trust at runtime, called Pioneer. Pioneer is not a realistic
//! alternative today as the verifier must possess intimate knowledge of
//! the microarchitectural design of the challenged system's CPU and
//! cannot tolerate moderate network latency."
//!
//! The scheme: the verifier sends a nonce; the device computes a
//! checksum over its memory with a function engineered so any emulating
//! or redirecting attacker is measurably *slower*; the verifier accepts
//! only answers that are both correct and fast enough. No TPM involved —
//! trust comes entirely from the timing side channel, which is exactly
//! what makes it fragile: the accept threshold must absorb network
//! jitter, and once jitter approaches the attacker's slowdown, honest
//! and forged responses become indistinguishable.

use sea_crypto::{Sha1, Sha1Digest};
use sea_hw::SimDuration;

/// The canonical attacker slowdown for Pioneer-class checksum functions:
/// the best known emulation attack costs ~33% extra time.
pub const ATTACKER_SLOWDOWN: f64 = 1.33;

/// A verifier challenge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PioneerChallenge {
    /// Unpredictable nonce seeding the checksum traversal.
    pub nonce: Vec<u8>,
    /// Checksum iterations; more iterations amplify the attacker's
    /// absolute time penalty relative to fixed jitter.
    pub iterations: u32,
}

/// A device response: checksum plus the time the computation took
/// (as observed by the verifier, i.e. including network latency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PioneerResponse {
    /// The computed checksum.
    pub checksum: Sha1Digest,
    /// Round-trip time the verifier observed.
    pub observed: SimDuration,
}

/// Verifier verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PioneerVerdict {
    /// Correct checksum within the time budget.
    Accepted,
    /// Wrong checksum.
    WrongChecksum,
    /// Correct but too slow — emulation suspected.
    TooSlow,
}

/// Cost of one checksum iteration on the honest device (fixed by the
/// microarchitecture the verifier must know "intimately").
const NS_PER_ITERATION: u64 = 600;

/// Computes the Pioneer checksum over `memory` (both parties run this —
/// the verifier on its reference copy, the device on its live memory).
pub fn checksum(memory: &[u8], challenge: &PioneerChallenge) -> Sha1Digest {
    // Nonce-seeded, strongly ordered traversal: each round folds the
    // previous digest and a pseudo-random memory window.
    let mut state = Sha1::digest(&challenge.nonce);
    let window = 64usize;
    for i in 0..challenge.iterations {
        let offset = if memory.is_empty() {
            0
        } else {
            (u32::from_be_bytes([state[0], state[1], state[2], state[3]]) as usize + i as usize)
                % memory.len()
        };
        let mut h = Sha1::new();
        h.update_bytes(&state);
        if !memory.is_empty() {
            let end = (offset + window).min(memory.len());
            h.update_bytes(&memory[offset..end]);
        }
        h.update_bytes(&i.to_be_bytes());
        state = h.finalize_fixed();
    }
    state
}

/// Honest computation time for a challenge on the reference CPU.
pub fn honest_duration(challenge: &PioneerChallenge) -> SimDuration {
    SimDuration::from_ns(challenge.iterations as u64 * NS_PER_ITERATION)
}

/// Attacker computation time: correct result, [`ATTACKER_SLOWDOWN`]×
/// slower (the emulation overhead).
pub fn forged_duration(challenge: &PioneerChallenge) -> SimDuration {
    SimDuration::from_ns_f64(honest_duration(challenge).as_ns() as f64 * ATTACKER_SLOWDOWN)
}

/// The verifier: holds the reference memory image and the timing model
/// of the device's exact CPU.
#[derive(Debug, Clone)]
pub struct PioneerVerifier {
    reference_memory: Vec<u8>,
    /// Worst-case network latency the verifier is willing to absorb.
    latency_allowance: SimDuration,
}

impl PioneerVerifier {
    /// Creates a verifier for a device whose correct memory contents are
    /// `reference_memory`, absorbing up to `latency_allowance` of
    /// network delay.
    pub fn new(reference_memory: Vec<u8>, latency_allowance: SimDuration) -> Self {
        PioneerVerifier {
            reference_memory,
            latency_allowance,
        }
    }

    /// Builds a challenge (nonce derived from `seed` for determinism).
    pub fn challenge(&self, seed: &[u8], iterations: u32) -> PioneerChallenge {
        PioneerChallenge {
            nonce: Sha1::digest(seed).to_vec(),
            iterations,
        }
    }

    /// Checks a response: the checksum must match the reference memory
    /// and arrive within `honest_time + latency_allowance`.
    pub fn verify(
        &self,
        challenge: &PioneerChallenge,
        response: &PioneerResponse,
    ) -> PioneerVerdict {
        let expected = checksum(&self.reference_memory, challenge);
        if response.checksum != expected {
            return PioneerVerdict::WrongChecksum;
        }
        let budget = honest_duration(challenge) + self.latency_allowance;
        if response.observed > budget {
            PioneerVerdict::TooSlow
        } else {
            PioneerVerdict::Accepted
        }
    }

    /// The smallest iteration count at which an attacker's extra time
    /// exceeds the latency allowance — i.e. where the scheme *can* work.
    /// Grows linearly with tolerated latency, which is the paper's
    /// point: at internet latencies the challenge must run so long that
    /// the protocol stops being practical.
    pub fn min_secure_iterations(&self) -> u32 {
        let slack_ns = self.latency_allowance.as_ns() as f64;
        let per_iter_gap = NS_PER_ITERATION as f64 * (ATTACKER_SLOWDOWN - 1.0);
        (slack_ns / per_iter_gap).ceil() as u32 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> Vec<u8> {
        (0..4096u32).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn honest_device_accepted_on_lan() {
        let mem = memory();
        let verifier = PioneerVerifier::new(mem.clone(), SimDuration::from_us(50));
        let ch = verifier.challenge(b"round-1", 10_000);
        let response = PioneerResponse {
            checksum: checksum(&mem, &ch),
            observed: honest_duration(&ch) + SimDuration::from_us(30), // LAN RTT
        };
        assert_eq!(verifier.verify(&ch, &response), PioneerVerdict::Accepted);
    }

    #[test]
    fn tampered_memory_yields_wrong_checksum() {
        let mem = memory();
        let verifier = PioneerVerifier::new(mem.clone(), SimDuration::from_us(50));
        let ch = verifier.challenge(b"round-2", 5_000);
        let mut rooted = mem.clone();
        rooted[100] ^= 0xFF; // a hook the attacker installed
        let response = PioneerResponse {
            checksum: checksum(&rooted, &ch),
            observed: honest_duration(&ch),
        };
        assert_eq!(
            verifier.verify(&ch, &response),
            PioneerVerdict::WrongChecksum
        );
    }

    #[test]
    fn emulating_attacker_detected_on_lan() {
        // The attacker computes the *correct* checksum over a pristine
        // copy while hiding its rootkit — but pays the emulation
        // slowdown, which a LAN-latency budget cannot hide.
        let mem = memory();
        let verifier = PioneerVerifier::new(mem.clone(), SimDuration::from_us(50));
        let ch = verifier.challenge(b"round-3", 10_000);
        let response = PioneerResponse {
            checksum: checksum(&mem, &ch),
            observed: forged_duration(&ch) + SimDuration::from_us(30),
        };
        assert_eq!(verifier.verify(&ch, &response), PioneerVerdict::TooSlow);
    }

    #[test]
    fn moderate_network_latency_breaks_the_scheme() {
        // §7's criticism, demonstrated: with a 50 ms latency allowance
        // (ordinary WAN), the attacker's slowdown on a 10k-iteration
        // challenge (~2 ms extra) vanishes inside the budget.
        let mem = memory();
        let verifier = PioneerVerifier::new(mem.clone(), SimDuration::from_ms(50));
        let ch = verifier.challenge(b"round-4", 10_000);
        let forged = PioneerResponse {
            checksum: checksum(&mem, &ch),
            observed: forged_duration(&ch) + SimDuration::from_ms(3),
        };
        // The forger is ACCEPTED — the timing channel failed.
        assert_eq!(verifier.verify(&ch, &forged), PioneerVerdict::Accepted);
        // Fixing it needs enormously longer challenges:
        let needed = verifier.min_secure_iterations();
        let needed_time = SimDuration::from_ns(needed as u64 * NS_PER_ITERATION);
        assert!(
            needed_time > SimDuration::from_ms(100),
            "securing 50 ms of jitter needs >100 ms challenges (got {needed_time})"
        );
    }

    #[test]
    fn min_secure_iterations_scales_with_latency() {
        let mem = memory();
        let lan = PioneerVerifier::new(mem.clone(), SimDuration::from_us(50));
        let wan = PioneerVerifier::new(mem, SimDuration::from_ms(50));
        assert!(wan.min_secure_iterations() > lan.min_secure_iterations() * 500);
    }

    #[test]
    fn checksum_depends_on_nonce_and_iterations() {
        let mem = memory();
        let a = checksum(
            &mem,
            &PioneerChallenge {
                nonce: b"a".to_vec(),
                iterations: 100,
            },
        );
        let b = checksum(
            &mem,
            &PioneerChallenge {
                nonce: b"b".to_vec(),
                iterations: 100,
            },
        );
        let c = checksum(
            &mem,
            &PioneerChallenge {
                nonce: b"a".to_vec(),
                iterations: 101,
            },
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic for equal inputs.
        let a2 = checksum(
            &mem,
            &PioneerChallenge {
                nonce: b"a".to_vec(),
                iterations: 100,
            },
        );
        assert_eq!(a, a2);
    }

    #[test]
    fn empty_memory_is_handled() {
        let ch = PioneerChallenge {
            nonce: b"n".to_vec(),
            iterations: 10,
        };
        let d = checksum(&[], &ch);
        assert_ne!(d, [0u8; 20]);
    }
}
