//! The concurrent session engine: many PAL sessions executing in
//! parallel across the platform's CPUs (§5.4, §6).
//!
//! The paper's proposed hardware explicitly supports concurrent PALs —
//! "the number of sePCRs present in a TPM establishes the limit for the
//! number of concurrently executing PALs" (§5.4) — with the memory
//! controller's per-page × per-CPU access table keeping simultaneously
//! live PALs isolated from each other. [`ConcurrentSea`] realises that:
//! a [`std::thread`] worker pool (worker *k* plays CPU *k*) drives a
//! batch of sessions against **one shared** [`EnhancedSea`], so every
//! `SLAUNCH`, page-table transition, and sePCR allocation really is
//! arbitrated through the shared state machines while other PALs are
//! live.
//!
//! # Determinism
//!
//! Results are independent of thread interleaving, by construction:
//!
//! * **Static assignment** — job *i* always runs on worker/CPU
//!   `i % workers`, so the set of jobs charged to each CPU is fixed.
//! * **Per-job costs are intrinsic** — a session's [`SessionReport`]
//!   depends only on the platform's cost model and that job's image /
//!   input / work, never on what other CPUs are doing or on absolute
//!   clock readings.
//! * **Clock joins commute** — per-CPU busy time folds into the shared
//!   timeline via [`sea_hw::SharedClock::advance_to`] (an atomic max),
//!   and batch wall time is the max over per-CPU busy sums.
//! * **Ordered collection** — outputs, reports, and quote digests are
//!   returned in job-index order, not completion order.
//!
//! The sePCR *handle* a job receives (and the physical pages backing its
//! region) may differ between interleavings — the paper makes handles
//! authority-free (§5.4.2) precisely so this doesn't matter — and
//! neither influences any cost or output.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use sea_hw::{
    CpuId, FaultPlan, Layer, ResetPlan, SharedClock, SimDuration, SimTime, TraceEvent,
    PLATFORM_TRACK, TRANSPORT_FAULT_COST,
};
use sea_tpm::{Quote, SealedBlob, TpmError};

use crate::enhanced::{EnhancedSea, PalId, PalStep};
use crate::error::SeaError;
use crate::journal::SessionJournal;
use crate::pal::PalLogic;
use crate::platform::SecurePlatform;
use crate::recovery::RetryPolicy;
use crate::report::SessionReport;

/// TPM NVRAM index where the durable engine parks the sealed session
/// journal ("SJNL" in ASCII). One checkpoint blob lives here at a time;
/// each terminal commit overwrites it.
pub const JOURNAL_NV_INDEX: u32 = 0x534a_4e4c;

/// One unit of work for the pool: a PAL plus its input.
pub struct ConcurrentJob {
    logic: Box<dyn PalLogic + Send>,
    input: Vec<u8>,
}

impl ConcurrentJob {
    /// Packages a PAL and its input for submission.
    pub fn new(logic: Box<dyn PalLogic + Send>, input: impl Into<Vec<u8>>) -> Self {
        ConcurrentJob {
            logic,
            input: input.into(),
        }
    }
}

/// Result of one job in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The PAL's output.
    pub output: Vec<u8>,
    /// The session's cost breakdown (virtual time).
    pub report: SessionReport,
    /// Virtual cost of the post-exit `TPM_Quote` + `TPM_SEPCR_Free`.
    pub quote_cost: SimDuration,
    /// The CPU (= worker) the session ran on.
    pub cpu: CpuId,
}

impl JobResult {
    /// The job's full virtual cost: session plus attestation.
    pub fn total(&self) -> SimDuration {
        self.report.total() + self.quote_cost
    }
}

/// Aggregate outcome of one [`ConcurrentSea::run_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentOutcome {
    /// Per-job results, in job-index order.
    pub results: Vec<JobResult>,
    /// Virtual busy time accumulated by each worker/CPU.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch: the busiest CPU's total (the
    /// other CPUs' work overlaps it).
    pub wall: SimDuration,
}

impl ConcurrentOutcome {
    /// Sum of all jobs' virtual costs (the serial-execution wall time).
    pub fn aggregate(&self) -> SimDuration {
        self.results.iter().map(JobResult::total).sum()
    }

    /// Sessions completed per virtual second of batch wall time.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }

    /// Parallel speedup over running the same batch on one CPU.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            1.0
        } else {
            self.aggregate().as_secs_f64() / wall
        }
    }
}

/// Outcome of one job driven by the recovery layer
/// ([`ConcurrentSea::run_batch_recovered`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionResult {
    /// The session completed (possibly after retries) and was quoted.
    Quoted {
        /// The session's output, report, quote cost, and CPU.
        result: JobResult,
        /// The attestation over the session's sePCR.
        quote: Quote,
        /// How many injected faults were retried along the way.
        retries: u32,
        /// Virtual time spent on fault handling and backoff.
        recovery_cost: SimDuration,
    },
    /// The sePCR bank was saturated at launch; the session ran to
    /// completion on the legacy (late-launch) slow path instead,
    /// without a sePCR-bound quote.
    Degraded {
        /// The job's index in the batch.
        job: usize,
        /// The PAL's output.
        output: Vec<u8>,
        /// The legacy session's cost breakdown.
        report: SessionReport,
    },
    /// The retry budget was exhausted (or the fault was fatal); the
    /// session was torn down via `SKILL` and its sePCR reclaimed.
    Killed {
        /// The job's index in the batch.
        job: usize,
        /// Attempts made (1 initial + retries) before giving up.
        attempts: u32,
        /// The error that ended the session.
        error: SeaError,
        /// Virtual time wasted on the failed attempts.
        wasted: SimDuration,
    },
}

impl SessionResult {
    /// The job's virtual cost as charged to its worker CPU.
    pub fn cost(&self) -> SimDuration {
        match self {
            SessionResult::Quoted {
                result,
                recovery_cost,
                ..
            } => result.total() + *recovery_cost,
            SessionResult::Degraded { report, .. } => report.total(),
            SessionResult::Killed { wasted, .. } => *wasted,
        }
    }

    /// Whether the session completed and was quoted.
    pub fn is_quoted(&self) -> bool {
        matches!(self, SessionResult::Quoted { .. })
    }

    /// Whether the session was killed.
    pub fn is_killed(&self) -> bool {
        matches!(self, SessionResult::Killed { .. })
    }
}

/// Aggregate outcome of one [`ConcurrentSea::run_batch_recovered`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredOutcome {
    /// Per-job outcomes, in job-index order.
    pub sessions: Vec<SessionResult>,
    /// Virtual busy time accumulated by each worker/CPU.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch (busiest CPU's total).
    pub wall: SimDuration,
}

impl RecoveredOutcome {
    /// Number of sessions that completed with a quote.
    pub fn quoted(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_quoted()).count()
    }

    /// Number of sessions killed after exhausting their retry budget.
    pub fn killed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_killed()).count()
    }

    /// Completed (quoted or degraded) sessions per virtual second of
    /// batch wall time.
    pub fn goodput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.sessions.len() - self.killed()) as f64 / secs
        }
    }
}

/// Aggregate outcome of one [`ConcurrentSea::run_batch_durable`]: a
/// recovered batch plus its crash history.
///
/// The per-session results are byte-identical to the crash-free run of
/// the same batch at any worker count: committed sessions are restored
/// verbatim from the journal, and relaunched sessions re-derive the
/// identical result because fault rolls are a pure function of
/// `(plan, session key, operation order)` and fault cursors rewind at
/// reset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableOutcome {
    /// Per-job outcomes, in job-index order.
    pub sessions: Vec<SessionResult>,
    /// Virtual busy time accumulated by each worker/CPU, including work
    /// torn by crashes and redone after recovery.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch: the busiest CPU's total plus the
    /// serial recovery and journal-checkpoint overheads.
    pub wall: SimDuration,
    /// Platform resets the batch survived.
    pub resets: u32,
    /// Session keys restored from the journal at the *last* recovery
    /// (empty when no reset fired).
    pub committed: Vec<u64>,
    /// Session keys relaunched at the *last* recovery (empty when no
    /// reset fired). With `resets > 0`,
    /// `committed.len() + relaunched.len()` equals the batch size.
    pub relaunched: Vec<u64>,
    /// Virtual time spent on reboots and journal unsealing across all
    /// recoveries.
    pub recovery_latency: SimDuration,
    /// Virtual time spent sealing journal checkpoints into NVRAM.
    pub journal_overhead: SimDuration,
}

impl DurableOutcome {
    /// Number of sessions that completed with a quote.
    pub fn quoted(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_quoted()).count()
    }

    /// Number of sessions that completed on the degraded slow path.
    pub fn degraded(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| matches!(s, SessionResult::Degraded { .. }))
            .count()
    }

    /// Number of sessions killed after exhausting their retry budget.
    pub fn killed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_killed()).count()
    }

    /// Completed (quoted or degraded) sessions per virtual second of
    /// batch wall time — the crash sweep's goodput axis.
    pub fn goodput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.sessions.len() - self.killed()) as f64 / secs
        }
    }
}

/// A multi-core concurrent session engine over one shared
/// [`EnhancedSea`].
///
/// # Example
///
/// ```
/// use sea_core::{ConcurrentJob, ConcurrentSea, FnPal, PalOutcome, SecurePlatform};
/// use sea_hw::Platform;
/// use sea_tpm::KeyStrength;
///
/// let platform =
///     SecurePlatform::new(Platform::recommended(4), KeyStrength::Demo512, b"pool");
/// let mut pool = ConcurrentSea::new(platform, 4).unwrap();
/// let jobs = (0..8u8)
///     .map(|i| {
///         ConcurrentJob::new(
///             Box::new(FnPal::new("job", move |_| Ok(PalOutcome::Exit(vec![i])))),
///             [],
///         )
///     })
///     .collect();
/// let outcome = pool.run_batch(jobs).unwrap();
/// assert_eq!(outcome.results[3].output, vec![3]);
/// assert!(outcome.speedup() > 1.0);
/// ```
pub struct ConcurrentSea {
    sea: Arc<Mutex<EnhancedSea>>,
    clock: Arc<SharedClock>,
    workers: usize,
}

impl ConcurrentSea {
    /// Builds a pool of `workers` worker threads (worker *k* drives CPU
    /// *k*) over a fresh [`EnhancedSea`] on `platform`.
    ///
    /// # Errors
    ///
    /// [`SeaError::SlaunchUnsupported`] / [`SeaError::NoTpm`] as for
    /// [`EnhancedSea::new`]; [`SeaError::NotEnoughCpus`] when `workers`
    /// is zero or exceeds the platform's CPU count (each worker needs a
    /// CPU of its own).
    pub fn new(mut platform: SecurePlatform, workers: usize) -> Result<Self, SeaError> {
        let n_cpus = platform.machine().cpus().len();
        if workers == 0 || workers > n_cpus {
            return Err(SeaError::NotEnoughCpus {
                requested: workers,
                available: n_cpus,
            });
        }
        // Pin TPM latencies to their nominal means: with jitter, a
        // command's sampled cost depends on its position in the shared
        // noise stream — i.e. on thread interleaving — which would break
        // the byte-identical serial/parallel contract. (A PAL that emits
        // TPM RNG output verbatim is likewise outside the contract; the
        // RNG stream is shared for the same reason.)
        if let Some(tpm) = platform.tpm_mut() {
            tpm.set_nominal_timing(true);
        }
        let sea = EnhancedSea::new(platform)?;
        Ok(ConcurrentSea {
            sea: Arc::new(Mutex::new(sea)),
            clock: Arc::new(SharedClock::new()),
            workers,
        })
    }

    /// Number of worker threads (= CPUs driven).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Installs the observability handle into the shared engine's
    /// machine: every keyed session operation then emits lifecycle
    /// spans and attributed charges on the session's own track.
    pub fn install_obs(&self, obs: sea_hw::Obs) {
        self.sea
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .platform_mut()
            .install_obs(obs);
    }

    /// The shared engine's observability handle (null unless
    /// [`ConcurrentSea::install_obs`] was called).
    pub fn obs(&self) -> sea_hw::Obs {
        self.sea
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .platform()
            .machine()
            .obs()
            .clone()
    }

    /// The shared virtual clock the batch timeline folds into.
    pub fn clock(&self) -> &Arc<SharedClock> {
        &self.clock
    }

    /// Runs a batch of jobs to completion across the worker pool and
    /// collects results in job-index order.
    ///
    /// Job *i* is statically assigned to worker `i % workers`; each
    /// session is `SLAUNCH`ed, stepped to exit, quoted, and freed, with
    /// the shared engine locked per *operation* (not per job) so
    /// sessions genuinely overlap: while one PAL steps, others hold
    /// pages in the access table and sePCRs in `Exclusive`.
    ///
    /// # Errors
    ///
    /// The first error any job hits (by job index) is returned; jobs on
    /// other workers still run to completion.
    pub fn run_batch(&mut self, jobs: Vec<ConcurrentJob>) -> Result<ConcurrentOutcome, SeaError> {
        let n_jobs = jobs.len();
        let workers = self.workers;

        // Hand each worker its statically-assigned slice of jobs.
        let mut per_worker: Vec<Vec<(usize, ConcurrentJob)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            per_worker[i % workers].push((i, job));
        }

        let mut slots: Vec<Option<Result<JobResult, SeaError>>> =
            (0..n_jobs).map(|_| None).collect();
        let mut cpu_busy = vec![SimDuration::ZERO; workers];

        // Every domain anchors at the batch's start: reading the clock
        // inside each worker would skew late-spawned domains by however
        // far an early sibling had already published.
        let epoch = self.clock.now();
        std::thread::scope(|scope| -> Result<(), SeaError> {
            let handles: Vec<_> = per_worker
                .into_iter()
                .enumerate()
                .map(|(k, assigned)| {
                    let sea = Arc::clone(&self.sea);
                    let clock = Arc::clone(&self.clock);
                    scope.spawn(move || worker_loop(k, assigned, &sea, &clock, epoch))
                })
                .collect();
            for (k, handle) in handles.into_iter().enumerate() {
                let (results, busy) = handle
                    .join()
                    .map_err(|_| SeaError::EngineFault("worker thread panicked"))?;
                cpu_busy[k] = busy;
                for (i, result) in results {
                    slots[i] = Some(result);
                }
            }
            Ok(())
        })?;

        let mut results = Vec::with_capacity(n_jobs);
        for slot in slots {
            let result = slot.ok_or(SeaError::EngineFault("job result slot left unfilled"))?;
            results.push(result?);
        }
        let wall = cpu_busy.iter().copied().max().unwrap_or(SimDuration::ZERO);
        Ok(ConcurrentOutcome {
            results,
            cpu_busy,
            wall,
        })
    }

    /// Installs (or clears) a deterministic fault plan on the shared
    /// engine. Only [`ConcurrentSea::run_batch_recovered`] sessions are
    /// exposed to it; each job rolls faults against its own batch index,
    /// so serial and parallel runs of the same batch see identical
    /// injections.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.sea
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .set_fault_plan(plan);
    }

    /// Runs a batch under the installed fault plan with `policy`-bounded
    /// recovery: transient faults are retried with virtual-time backoff,
    /// sePCR-bank saturation degrades the job to the legacy slow path,
    /// and exhausted or fatal sessions are torn down via `SKILL` (their
    /// sePCR and pages reclaimed) without aborting the rest of the
    /// batch. With a fault-free plan (or none), every session is
    /// [`SessionResult::Quoted`] with zero retries and the per-job
    /// results match [`ConcurrentSea::run_batch`].
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (lifecycle violations, missing
    /// CPUs, …) surface as `Err`; per-session fault deaths are reported
    /// in-band as [`SessionResult::Killed`].
    pub fn run_batch_recovered(
        &mut self,
        jobs: Vec<ConcurrentJob>,
        policy: RetryPolicy,
    ) -> Result<RecoveredOutcome, SeaError> {
        let n_jobs = jobs.len();
        let workers = self.workers;

        let mut per_worker: Vec<Vec<(usize, ConcurrentJob)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            per_worker[i % workers].push((i, job));
        }

        let mut slots: Vec<Option<Result<SessionResult, SeaError>>> =
            (0..n_jobs).map(|_| None).collect();
        let mut cpu_busy = vec![SimDuration::ZERO; workers];

        // Every domain anchors at the batch's start: reading the clock
        // inside each worker would skew late-spawned domains by however
        // far an early sibling had already published.
        let epoch = self.clock.now();
        std::thread::scope(|scope| -> Result<(), SeaError> {
            let handles: Vec<_> = per_worker
                .into_iter()
                .enumerate()
                .map(|(k, assigned)| {
                    let sea = Arc::clone(&self.sea);
                    let clock = Arc::clone(&self.clock);
                    scope.spawn(move || {
                        let cpu = CpuId(k as u16);
                        let mut domain = sea_hw::CpuClockDomain::at(Arc::clone(&clock), epoch);
                        let mut results = Vec::with_capacity(assigned.len());
                        for (i, mut job) in assigned {
                            let result = run_one_recovered(cpu, i, &mut job, &sea, policy, None);
                            if let Ok(r) = &result {
                                domain.advance(r.cost());
                            }
                            domain.publish();
                            results.push((i, result));
                        }
                        (results, domain.busy())
                    })
                })
                .collect();
            for (k, handle) in handles.into_iter().enumerate() {
                let (results, busy) = handle
                    .join()
                    .map_err(|_| SeaError::EngineFault("worker thread panicked"))?;
                cpu_busy[k] = busy;
                for (i, result) in results {
                    slots[i] = Some(result);
                }
            }
            Ok(())
        })?;

        let mut sessions = Vec::with_capacity(n_jobs);
        for slot in slots {
            let result = slot.ok_or(SeaError::EngineFault("job result slot left unfilled"))?;
            sessions.push(result?);
        }
        let wall = cpu_busy.iter().copied().max().unwrap_or(SimDuration::ZERO);
        Ok(RecoveredOutcome {
            sessions,
            cpu_busy,
            wall,
        })
    }

    /// Runs a batch with `policy`-bounded fault recovery **and**
    /// crash-consistency under the power-loss plan: each terminal
    /// session result is committed to a write-ahead journal, sealed,
    /// and parked in TPM NVRAM before it counts. When `plan` cuts the
    /// power (at a trace-event boundary, a scheduled virtual time, or a
    /// rate roll at a commit gate), every volatile structure evaporates
    /// — live PALs, page protections, sePCR bindings, un-checkpointed
    /// results — and recovery reboots the platform, unseals the
    /// journal, restores committed sessions byte-for-byte, and
    /// relaunches the rest.
    ///
    /// The final per-session results are byte-identical to the
    /// crash-free run of the same batch, at any worker count, because
    /// relaunched sessions re-roll their fault streams from scratch
    /// (fault cursors are volatile) and quotes depend only on the PAL
    /// measurement chain and nonce — never on sePCR handles, pages, or
    /// time. Two caveats bound the contract: PAL logic must be
    /// restartable (a pure function of its input and page-resident
    /// state — closures mutating captured state are outside it), and
    /// jobs must not emit shared-RNG output verbatim (checkpoint seals
    /// consume the TPM RNG stream).
    ///
    /// # Errors
    ///
    /// Infrastructure failures ([`SeaError::EngineFault`], lifecycle
    /// violations) and an unreadable journal
    /// ([`SeaError::JournalCorrupt`]) surface as `Err`; per-session
    /// fault deaths are in-band [`SessionResult::Killed`] values.
    pub fn run_batch_durable(
        &mut self,
        jobs: Vec<ConcurrentJob>,
        policy: RetryPolicy,
        plan: ResetPlan,
    ) -> Result<DurableOutcome, SeaError> {
        let n_jobs = jobs.len();
        let workers = self.workers;

        let journal = Mutex::new(SessionJournal::new());
        let triggers = Mutex::new(ResetTriggers::new(plan));
        let journal_overhead = Mutex::new(SimDuration::ZERO);
        let mut cpu_busy = vec![SimDuration::ZERO; workers];
        let mut final_slots: Vec<Option<SessionResult>> = (0..n_jobs).map(|_| None).collect();
        let mut pending: Vec<(usize, ConcurrentJob)> = jobs.into_iter().enumerate().collect();
        let mut resets = 0u32;
        let mut committed: Vec<u64> = Vec::new();
        let mut relaunched: Vec<u64> = Vec::new();
        let mut recovery_latency = SimDuration::ZERO;

        loop {
            let crashed = AtomicBool::new(false);
            let epoch = self.clock.now();
            let reset_epoch = resets as u64;

            // Jobs keep their original static assignment (job i →
            // worker/CPU i % workers) across relaunch epochs, so a
            // relaunched session lands on the same CPU as crash-free.
            let mut per_worker: Vec<Vec<(usize, ConcurrentJob)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in pending.drain(..) {
                per_worker[i % workers].push((i, job));
            }

            let mut attempts: Vec<Option<DurableAttempt>> = (0..n_jobs).map(|_| None).collect();
            std::thread::scope(|scope| -> Result<(), SeaError> {
                let handles: Vec<_> = per_worker
                    .into_iter()
                    .enumerate()
                    .map(|(k, assigned)| {
                        let sea = Arc::clone(&self.sea);
                        let clock = Arc::clone(&self.clock);
                        let journal = &journal;
                        let triggers = &triggers;
                        let journal_overhead = &journal_overhead;
                        let crashed = &crashed;
                        scope.spawn(move || {
                            durable_worker(
                                k,
                                assigned,
                                &sea,
                                &clock,
                                epoch,
                                reset_epoch,
                                policy,
                                journal,
                                triggers,
                                journal_overhead,
                                crashed,
                            )
                        })
                    })
                    .collect();
                for (k, handle) in handles.into_iter().enumerate() {
                    let (results, busy) = handle
                        .join()
                        .map_err(|_| SeaError::EngineFault("worker thread panicked"))??;
                    cpu_busy[k] += busy;
                    for (i, attempt) in results {
                        attempts[i] = Some(attempt);
                    }
                }
                Ok(())
            })?;

            if !crashed.load(Ordering::SeqCst) {
                // Clean epoch: every surviving attempt is final.
                for (i, attempt) in attempts.into_iter().enumerate() {
                    match attempt {
                        Some(DurableAttempt::Committed(s) | DurableAttempt::Volatile(s, _)) => {
                            final_slots[i] = Some(s)
                        }
                        Some(DurableAttempt::Torn(_)) => {
                            return Err(SeaError::EngineFault("torn session in a clean epoch"))
                        }
                        None => {}
                    }
                }
                break;
            }

            // Power loss. Reboot the platform, then rebuild the world
            // from the sealed journal alone — every in-memory result
            // past the last checkpoint is discarded, exactly as a real
            // crash would lose it.
            resets += 1;
            let mut guard = self.sea.lock().unwrap_or_else(|e| e.into_inner());
            let obs = guard.platform().machine().obs().clone();
            obs.add("journal.resets", 1);
            recovery_latency += guard.power_cycle();
            let recovered = {
                let tpm = guard.platform_mut().tpm_mut().ok_or(SeaError::NoTpm)?;
                match tpm.nvram().read_blob(JOURNAL_NV_INDEX).map(<[u8]>::to_vec) {
                    Some(bytes) => {
                        let blob = SealedBlob::from_bytes(&bytes)?;
                        let opened = tpm.unseal(&blob)?;
                        recovery_latency += opened.elapsed;
                        obs.leaf_on(PLATFORM_TRACK, Layer::Tpm, "journal.unseal", opened.elapsed);
                        SessionJournal::from_bytes(&opened.value)?
                    }
                    None => SessionJournal::new(),
                }
            };
            let restored = recovered.restore()?;
            committed = restored.iter().map(|(key, _)| *key).collect();
            final_slots.fill(None);
            for (key, session) in restored {
                let slot = final_slots
                    .get_mut(key as usize)
                    .ok_or(SeaError::JournalCorrupt("session key out of range"))?;
                *slot = Some(session);
            }
            *journal.lock().unwrap_or_else(|e| e.into_inner()) = recovered;

            // Everything without a checkpointed terminal relaunches.
            relaunched.clear();
            for (i, attempt) in attempts.into_iter().enumerate() {
                let job = match attempt {
                    Some(DurableAttempt::Torn(job) | DurableAttempt::Volatile(_, job)) => job,
                    Some(DurableAttempt::Committed(_)) | None => continue,
                };
                if final_slots[i].is_none() {
                    relaunched.push(i as u64);
                    pending.push((i, job));
                }
            }
            obs.add("journal.relaunches", pending.len() as u64);
            let machine = guard.platform_mut().machine_mut();
            for (i, _) in &pending {
                let now = machine.now();
                machine
                    .trace_mut()
                    .record(now, TraceEvent::SessionRelaunched { session: *i as u64 });
            }
        }

        let journal_overhead = journal_overhead
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        let mut sessions = Vec::with_capacity(n_jobs);
        for slot in final_slots {
            sessions.push(slot.ok_or(SeaError::EngineFault("job result slot left unfilled"))?);
        }
        // Reboots and checkpoint seals serialize against everything, so
        // they extend the batch beyond the busiest CPU's overlap.
        let wall = cpu_busy.iter().copied().max().unwrap_or(SimDuration::ZERO)
            + recovery_latency
            + journal_overhead;
        Ok(DurableOutcome {
            sessions,
            cpu_busy,
            wall,
            resets,
            committed,
            relaunched,
            recovery_latency,
            journal_overhead,
        })
    }

    /// Tears the pool down, returning the shared engine (e.g. to
    /// inspect the platform's final state in tests).
    ///
    /// # Panics
    ///
    /// Panics if worker threads still hold the engine (they cannot:
    /// [`ConcurrentSea::run_batch`] joins them before returning).
    pub fn into_inner(self) -> EnhancedSea {
        Arc::try_unwrap(self.sea)
            .map_err(|_| ())
            .expect("no workers are live outside run_batch")
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

/// Drives one worker's assigned jobs on CPU `k`, locking the shared
/// engine once per operation. Returns per-job results plus the CPU's
/// accumulated virtual busy time.
#[allow(clippy::type_complexity)]
fn worker_loop(
    k: usize,
    assigned: Vec<(usize, ConcurrentJob)>,
    sea: &Mutex<EnhancedSea>,
    clock: &Arc<SharedClock>,
    epoch: SimTime,
) -> (Vec<(usize, Result<JobResult, SeaError>)>, SimDuration) {
    let cpu = CpuId(k as u16);
    let mut domain = sea_hw::CpuClockDomain::at(Arc::clone(clock), epoch);
    let mut results = Vec::with_capacity(assigned.len());
    for (i, job) in assigned {
        let result = run_one(cpu, i, job, sea);
        if let Ok(r) = &result {
            domain.advance(r.total());
        }
        domain.publish();
        results.push((i, result));
    }
    (results, domain.busy())
}

/// What one durable worker produced for one job at its commit gate.
enum DurableAttempt {
    /// Terminal result checkpointed to NVRAM — survives any later crash.
    Committed(SessionResult),
    /// A kill, deliberately not checkpointed (see
    /// [`crate::journal::SessionJournal::commit`]): final only if the
    /// epoch ends cleanly, relaunched — and deterministically re-killed
    /// — otherwise.
    Volatile(SessionResult, ConcurrentJob),
    /// The crash beat the commit: the session must relaunch.
    Torn(ConcurrentJob),
}

/// Driver-side reset state for one durable batch: the plan plus
/// once-only bookkeeping for the event cut and the reset budget.
struct ResetTriggers {
    plan: ResetPlan,
    cut_fired: bool,
    fired: u32,
}

impl ResetTriggers {
    fn new(plan: ResetPlan) -> Self {
        ResetTriggers {
            plan,
            cut_fired: false,
            fired: 0,
        }
    }

    /// Decides, at one commit boundary, whether the power fails there.
    /// `epoch` counts resets already survived, `key` is the committing
    /// session, `recorded` the trace's cumulative event count, `now`
    /// the machine clock. The budget cap guarantees the recovery loop
    /// terminates even under a 100% reset rate.
    fn check(&mut self, epoch: u64, key: u64, recorded: u64, now: SimTime) -> bool {
        if self.fired >= self.plan.max_resets() {
            return false;
        }
        let cut = !self.cut_fired && self.plan.cut_due(recorded);
        if cut {
            self.cut_fired = true;
        }
        let fire = cut || self.plan.take_due(now) > 0 || self.plan.roll_power_loss(epoch, key);
        if fire {
            self.fired += 1;
        }
        fire
    }
}

/// Drives one durable worker's assigned jobs on CPU `k`: run the
/// session with bounded recovery, then pass its commit gate — under the
/// engine lock, decide whether the power fails at this boundary, and if
/// not, checkpoint the journal into NVRAM.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn durable_worker(
    k: usize,
    assigned: Vec<(usize, ConcurrentJob)>,
    sea: &Mutex<EnhancedSea>,
    clock: &Arc<SharedClock>,
    epoch: SimTime,
    reset_epoch: u64,
    policy: RetryPolicy,
    journal: &Mutex<SessionJournal>,
    triggers: &Mutex<ResetTriggers>,
    journal_overhead: &Mutex<SimDuration>,
    crashed: &AtomicBool,
) -> Result<(Vec<(usize, DurableAttempt)>, SimDuration), SeaError> {
    let cpu = CpuId(k as u16);
    let mut domain = sea_hw::CpuClockDomain::at(Arc::clone(clock), epoch);
    let mut results = Vec::with_capacity(assigned.len());
    for (i, mut job) in assigned {
        let key = i as u64;
        if crashed.load(Ordering::SeqCst) {
            // The platform is already dark; this job never started.
            results.push((i, DurableAttempt::Torn(job)));
            continue;
        }
        journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record_intent(key);
        let session = run_one_recovered(cpu, i, &mut job, sea, policy, Some(journal))?;

        // Commit gate. Holding the engine lock makes the read of the
        // trace counter, the reset decision, and the NVRAM checkpoint
        // one atomic boundary — no other worker can slip a commit in
        // between.
        let attempt = {
            let mut guard = sea.lock().unwrap_or_else(|e| e.into_inner());
            if crashed.load(Ordering::SeqCst) {
                DurableAttempt::Torn(job)
            } else {
                let (recorded, now) = {
                    let machine = guard.platform().machine();
                    (machine.trace().recorded(), machine.now())
                };
                let fire = triggers.lock().unwrap_or_else(|e| e.into_inner()).check(
                    reset_epoch,
                    key,
                    recorded,
                    now,
                );
                if fire {
                    // The cord is yanked before this record reaches
                    // NVRAM: the committing session is torn too.
                    crashed.store(true, Ordering::SeqCst);
                    DurableAttempt::Torn(job)
                } else {
                    let mut wal = journal.lock().unwrap_or_else(|e| e.into_inner());
                    wal.commit(key, &session);
                    if session.is_killed() {
                        drop(wal);
                        DurableAttempt::Volatile(session, job)
                    } else {
                        let bytes = wal.to_bytes();
                        drop(wal);
                        let obs = guard.platform().machine().obs().clone();
                        // Seal to the empty PCR selection: the blob
                        // must unseal on the rebooted platform, whose
                        // PCRs have all reset.
                        let tpm = guard.platform_mut().tpm_mut().ok_or(SeaError::NoTpm)?;
                        let sealed = tpm.seal(&bytes, &[])?;
                        tpm.nvram_mut()
                            .store_blob(JOURNAL_NV_INDEX, &sealed.value.to_bytes());
                        // Checkpoint time serializes against the whole
                        // batch, not one session: platform track.
                        obs.leaf_on(PLATFORM_TRACK, Layer::Tpm, "journal.seal", sealed.elapsed);
                        obs.add("journal.commits", 1);
                        *journal_overhead.lock().unwrap_or_else(|e| e.into_inner()) +=
                            sealed.elapsed;
                        DurableAttempt::Committed(session)
                    }
                }
            }
        };
        if let DurableAttempt::Committed(s) | DurableAttempt::Volatile(s, _) = &attempt {
            domain.advance(s.cost());
        }
        domain.publish();
        results.push((i, attempt));
    }
    Ok((results, domain.busy()))
}

/// Runs a single session to completion: `SLAUNCH` → step/resume loop →
/// quote → free, with the lock released between operations.
fn run_one(
    cpu: CpuId,
    index: usize,
    mut job: ConcurrentJob,
    sea: &Mutex<EnhancedSea>,
) -> Result<JobResult, SeaError> {
    fn lock<'a>(sea: &'a Mutex<EnhancedSea>) -> std::sync::MutexGuard<'a, EnhancedSea> {
        sea.lock().unwrap_or_else(|e| e.into_inner())
    }

    let id: PalId = lock(sea).slaunch(&mut *job.logic, &job.input, cpu, None)?;
    let output = loop {
        let step = lock(sea).step(&mut *job.logic, id)?;
        match step {
            PalStep::Yielded => lock(sea).resume(id, cpu)?,
            PalStep::Exited { output } => break output,
        }
    };
    let report = lock(sea).report(id)?;
    // Deterministic per-job nonce: ties the quote to the batch index.
    let nonce = (index as u64).to_le_bytes();
    let quote = lock(sea).quote_and_free(id, &nonce)?;
    Ok(JobResult {
        output,
        report,
        quote_cost: quote.elapsed,
        cpu,
    })
}

/// Deterministic virtual cost of handling one injected fault of the
/// given error class, as charged to the faulted session's CPU. (The
/// fault substrate also advances the shared machine clock; this local
/// accounting is what flows into per-CPU busy time and wall time, and
/// is a pure function of the error — never of the machine clock.)
fn fault_handling_cost(error: &SeaError) -> SimDuration {
    match error {
        SeaError::Tpm(TpmError::TransportFault { .. }) => TRANSPORT_FAULT_COST,
        _ => SimDuration::ZERO,
    }
}

/// Records a [`TraceEvent::SessionRetried`] on the shared engine, plus
/// the retry's backoff as a `recovery.backoff` leaf span on the
/// session's own track (backoff burns CPU-local time, never the shared
/// machine clock, so it is not a [`sea_hw::Machine::charge`]).
fn record_retry(sea: &Mutex<EnhancedSea>, key: u64, attempt: u32, backoff: SimDuration) {
    let mut guard = sea.lock().unwrap_or_else(|e| e.into_inner());
    let obs = guard.platform().machine().obs().clone();
    obs.leaf_on(key, Layer::Core, "recovery.backoff", backoff);
    obs.add("core.retries", 1);
    let machine = guard.platform_mut().machine_mut();
    let now = machine.now();
    machine.trace_mut().record(
        now,
        TraceEvent::SessionRetried {
            session: key,
            attempt,
        },
    );
}

/// Applies the retry policy to one failed attempt. On a retryable error
/// with budget left: consumes a retry, charges the fault-handling cost
/// plus backoff, records the retry, and returns `true` (caller loops).
/// Otherwise charges the handling cost and returns `false` (caller
/// kills the session).
fn try_absorb(
    sea: &Mutex<EnhancedSea>,
    policy: &RetryPolicy,
    key: u64,
    error: &SeaError,
    retries: &mut u32,
    recovery_cost: &mut SimDuration,
) -> bool {
    if policy.is_retryable(error) && *retries < policy.max_retries() {
        *retries += 1;
        let backoff = policy.backoff_for(*retries);
        *recovery_cost += fault_handling_cost(error) + backoff;
        record_retry(sea, key, *retries, backoff);
        true
    } else {
        *recovery_cost += fault_handling_cost(error);
        false
    }
}

/// Runs a single session under the fault plan with bounded recovery:
/// `SLAUNCH` → step/resume loop → quote, retrying transient faults per
/// `policy`, degrading to the legacy slow path on sePCR saturation, and
/// `SKILL`ing the session when the budget runs out.
///
/// The job is borrowed, not consumed, so a durable driver can relaunch
/// it after a platform reset. When `journal` is given, the launch is
/// recorded in it (the durable engine's `launched` write-ahead record).
fn run_one_recovered(
    cpu: CpuId,
    index: usize,
    job: &mut ConcurrentJob,
    sea: &Mutex<EnhancedSea>,
    policy: RetryPolicy,
    journal: Option<&Mutex<SessionJournal>>,
) -> Result<SessionResult, SeaError> {
    fn lock<'a>(sea: &'a Mutex<EnhancedSea>) -> std::sync::MutexGuard<'a, EnhancedSea> {
        sea.lock().unwrap_or_else(|e| e.into_inner())
    }

    let key = index as u64;
    let mut retries: u32 = 0;
    let mut recovery_cost = SimDuration::ZERO;

    // Phase 1: SLAUNCH. A faulted launch has already rolled its pages
    // back to `ALL` (Figure 7's failure path), so retrying is a plain
    // re-launch and exhaustion needs no SKILL.
    let id: PalId = loop {
        let error = match lock(sea).slaunch_keyed(&mut *job.logic, &job.input, cpu, None, key) {
            Ok(id) => break id,
            Err(e) => e,
        };
        if RetryPolicy::is_saturation(&error) {
            // Graceful degradation: the sePCR bank is full, not faulty.
            // The fallback is not a keyed engine op, so pin the track
            // and lifecycle frame here, under the same engine lock.
            let done = {
                let mut guard = lock(sea);
                let obs = guard.platform().machine().obs().clone();
                obs.set_track(key);
                obs.open(Layer::Core, "session.fallback");
                let done = guard.run_legacy_fallback(&mut *job.logic, &job.input, cpu);
                obs.close();
                obs.add("core.degraded", 1);
                done?
            };
            return Ok(SessionResult::Degraded {
                job: index,
                output: done.output,
                report: done.report,
            });
        }
        if try_absorb(sea, &policy, key, &error, &mut retries, &mut recovery_cost) {
            continue;
        }
        // No SKILL to issue — the faulted launch rolled its pages back —
        // but the death is still a recovery decision, so the trace pairs
        // the injected fault with a kill like every other path.
        {
            let mut guard = lock(sea);
            let machine = guard.platform_mut().machine_mut();
            let now = machine.now();
            machine
                .trace_mut()
                .record(now, TraceEvent::SessionKilled { session: key });
        }
        return Ok(SessionResult::Killed {
            job: index,
            attempts: retries + 1,
            error,
            wasted: recovery_cost,
        });
    };
    if let Some(journal) = journal {
        journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record_launched(key);
    }

    // Phase 2: step/resume loop. Injected timer expiries surface as
    // extra `Yielded` steps; injected resume denials retry in place
    // (the SECB stays `Suspend`). Each engine call is bound to a local
    // first so its lock guard drops before recovery takes the lock
    // again.
    let output = loop {
        let step = lock(sea).step_keyed(&mut *job.logic, id, key);
        match step {
            Ok(PalStep::Exited { output }) => break output,
            Ok(PalStep::Yielded) => loop {
                let resumed = lock(sea).resume_keyed(id, cpu, key);
                match resumed {
                    Ok(()) => break,
                    Err(error) => {
                        if try_absorb(sea, &policy, key, &error, &mut retries, &mut recovery_cost) {
                            continue;
                        }
                        lock(sea).kill_session(id, key)?;
                        return Ok(SessionResult::Killed {
                            job: index,
                            attempts: retries + 1,
                            error,
                            wasted: recovery_cost,
                        });
                    }
                }
            },
            Err(error) => {
                if try_absorb(sea, &policy, key, &error, &mut retries, &mut recovery_cost) {
                    continue;
                }
                lock(sea).kill_session(id, key)?;
                return Ok(SessionResult::Killed {
                    job: index,
                    attempts: retries + 1,
                    error,
                    wasted: recovery_cost,
                });
            }
        }
    };

    let report = lock(sea).report(id)?;
    let nonce = (index as u64).to_le_bytes();
    // Phase 3: quote. A faulted quote leaves the sePCR in the Quote
    // state, so it can be retried; on exhaustion the kill path frees
    // the slot without an attestation.
    let quote = loop {
        let attempt = lock(sea).quote_and_free_keyed(id, &nonce, key);
        match attempt {
            Ok(q) => break q,
            Err(error) => {
                if try_absorb(sea, &policy, key, &error, &mut retries, &mut recovery_cost) {
                    continue;
                }
                lock(sea).kill_session(id, key)?;
                return Ok(SessionResult::Killed {
                    job: index,
                    attempts: retries + 1,
                    error,
                    wasted: recovery_cost,
                });
            }
        }
    };
    Ok(SessionResult::Quoted {
        result: JobResult {
            output,
            report,
            quote_cost: quote.elapsed,
            cpu,
        },
        quote: quote.value,
        retries,
        recovery_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pal::{FnPal, PalOutcome};
    use sea_hw::Platform;
    use sea_tpm::KeyStrength;

    fn platform(n_cpus: u16) -> SecurePlatform {
        SecurePlatform::new(
            Platform::recommended(n_cpus),
            KeyStrength::Demo512,
            b"concurrent test",
        )
    }

    fn jobs(n: usize, work_us: u64) -> Vec<ConcurrentJob> {
        (0..n)
            .map(|i| {
                ConcurrentJob::new(
                    Box::new(FnPal::new(&format!("job-{i}"), move |ctx| {
                        ctx.work(SimDuration::from_us(work_us));
                        Ok(PalOutcome::Exit(vec![i as u8]))
                    })),
                    (i as u32).to_le_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn rejects_more_workers_than_cpus() {
        assert!(matches!(
            ConcurrentSea::new(platform(2), 3),
            Err(SeaError::NotEnoughCpus {
                requested: 3,
                available: 2
            })
        ));
        assert!(ConcurrentSea::new(platform(2), 0).is_err());
    }

    #[test]
    fn outputs_arrive_in_job_index_order() {
        let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
        let outcome = pool.run_batch(jobs(13, 5)).unwrap();
        assert_eq!(outcome.results.len(), 13);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.output, vec![i as u8]);
            assert_eq!(r.cpu, CpuId((i % 4) as u16));
        }
    }

    #[test]
    fn batch_results_match_single_worker_byte_for_byte() {
        // The determinism contract: 1-worker and 4-worker runs of the
        // same batch produce identical outputs and identical per-job
        // virtual costs.
        let run = |workers: usize| {
            let mut pool = ConcurrentSea::new(platform(4), workers).unwrap();
            pool.run_batch(jobs(12, 40)).unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.results.len(), parallel.results.len());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.output, p.output);
            assert_eq!(s.report, p.report);
            assert_eq!(s.quote_cost, p.quote_cost);
        }
        assert_eq!(serial.aggregate(), parallel.aggregate());
    }

    #[test]
    fn parallel_wall_time_beats_serial() {
        let mut serial = ConcurrentSea::new(platform(4), 1).unwrap();
        let mut parallel = ConcurrentSea::new(platform(4), 4).unwrap();
        let s = serial.run_batch(jobs(8, 100)).unwrap();
        let p = parallel.run_batch(jobs(8, 100)).unwrap();
        // Same total virtual work...
        assert_eq!(s.aggregate(), p.aggregate());
        // ...but 4 CPUs overlap it: 8 equal jobs → 2 per CPU → 4×.
        assert_eq!(s.wall, s.aggregate());
        assert_eq!(p.wall, p.aggregate() / 4);
        assert!((p.speedup() - 4.0).abs() < 1e-9);
        assert!(p.throughput_per_sec() > s.throughput_per_sec());
    }

    #[test]
    fn engine_state_is_clean_after_batch() {
        let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
        pool.run_batch(jobs(9, 10)).unwrap();
        let sea = pool.into_inner();
        // Every sePCR came back to Free and every page back to ALL.
        let tpm = sea.platform().tpm().expect("tpm");
        assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
        let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
        assert_eq!((cpus_pages, none_pages), (0, 0));
    }

    #[test]
    fn fault_free_recovered_batch_matches_plain_batch() {
        let mut plain = ConcurrentSea::new(platform(4), 4).unwrap();
        let p = plain.run_batch(jobs(8, 20)).unwrap();

        let mut recovered = ConcurrentSea::new(platform(4), 4).unwrap();
        recovered.set_fault_plan(Some(FaultPlan::fault_free()));
        let r = recovered
            .run_batch_recovered(jobs(8, 20), RetryPolicy::default())
            .unwrap();

        assert_eq!(r.quoted(), 8);
        assert_eq!(r.killed(), 0);
        for (jr, s) in p.results.iter().zip(&r.sessions) {
            match s {
                SessionResult::Quoted {
                    result,
                    retries,
                    recovery_cost,
                    ..
                } => {
                    assert_eq!(result, jr);
                    assert_eq!(*retries, 0);
                    assert_eq!(*recovery_cost, SimDuration::ZERO);
                }
                other => panic!("expected Quoted, got {other:?}"),
            }
        }
        assert_eq!(p.wall, r.wall);
        assert_eq!(p.cpu_busy, r.cpu_busy);
    }

    #[test]
    fn transient_faults_are_retried_and_nothing_leaks() {
        let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
        pool.set_fault_plan(Some(
            FaultPlan::new(7)
                .with_tpm_rate(6000)
                .with_mem_rate(6000)
                .with_timer_rate(6000)
                .with_fatal_ratio(0),
        ));
        let out = pool
            .run_batch_recovered(jobs(16, 10), RetryPolicy::default())
            .unwrap();
        assert_eq!(out.sessions.len(), 16);
        // Every retryable fault was absorbed: with fatal_ratio 0 and a
        // 4-retry budget, this seed completes the whole batch.
        assert_eq!(out.killed(), 0);
        assert_eq!(out.quoted(), 16);
        let total_retries: u32 = out
            .sessions
            .iter()
            .map(|s| match s {
                SessionResult::Quoted { retries, .. } => *retries,
                _ => 0,
            })
            .sum();
        assert!(total_retries > 0, "seed 7 at ~9% rates must inject");

        // Recovery reclaimed everything: sePCRs all Free, pages all ALL.
        let sea = pool.into_inner();
        let tpm = sea.platform().tpm().expect("tpm");
        assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
        let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
        assert_eq!((cpus_pages, none_pages), (0, 0));
    }

    #[test]
    fn fatal_faults_kill_cleanly_without_leaking() {
        let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
        pool.set_fault_plan(Some(
            FaultPlan::new(42)
                .with_tpm_rate(20_000)
                .with_fatal_ratio(sea_hw::RATE_DENOM),
        ));
        let out = pool
            .run_batch_recovered(jobs(16, 10), RetryPolicy::default())
            .unwrap();
        assert!(out.killed() > 0, "seed 42 at ~30% fatal rate must kill");
        assert_eq!(out.killed() + out.quoted(), 16);
        for s in &out.sessions {
            match s {
                SessionResult::Killed {
                    error, attempts, ..
                } => {
                    // Fatal transport faults are not retried.
                    assert_eq!(*attempts, 1);
                    assert!(matches!(
                        error,
                        SeaError::Tpm(TpmError::TransportFault { retryable: false })
                    ));
                }
                SessionResult::Quoted { retries, .. } => assert_eq!(*retries, 0),
                other => panic!("unexpected outcome {other:?}"),
            }
        }

        let sea = pool.into_inner();
        let tpm = sea.platform().tpm().expect("tpm");
        assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
        let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
        assert_eq!((cpus_pages, none_pages), (0, 0));
        // Kills left their mark in the hardware trace.
        assert!(sea
            .platform()
            .machine()
            .trace()
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::SessionKilled { .. })));
    }

    #[test]
    fn durable_batch_without_resets_matches_recovered_and_checkpoints() {
        let mut plain = ConcurrentSea::new(platform(4), 4).unwrap();
        plain.set_fault_plan(Some(FaultPlan::fault_free()));
        let r = plain
            .run_batch_recovered(jobs(8, 20), RetryPolicy::default())
            .unwrap();

        let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
        pool.set_fault_plan(Some(FaultPlan::fault_free()));
        let d = pool
            .run_batch_durable(jobs(8, 20), RetryPolicy::default(), ResetPlan::reset_free())
            .unwrap();

        assert_eq!(d.resets, 0);
        assert!(d.committed.is_empty() && d.relaunched.is_empty());
        assert_eq!(d.recovery_latency, SimDuration::ZERO);
        assert_eq!(d.sessions, r.sessions);
        assert_eq!(d.cpu_busy, r.cpu_busy);
        // Checkpointing is the only wall-time delta.
        assert!(d.journal_overhead > SimDuration::ZERO);
        assert_eq!(d.wall, r.wall + d.journal_overhead);

        // The final checkpoint sits in NVRAM and replays every session.
        let sea = pool.into_inner();
        let tpm = sea.platform().tpm().expect("tpm");
        let blob = tpm.nvram().read_blob(JOURNAL_NV_INDEX).expect("checkpoint");
        let blob = SealedBlob::from_bytes(blob).unwrap();
        let mut sea = sea;
        let bytes = sea
            .platform_mut()
            .tpm_mut()
            .unwrap()
            .unseal(&blob)
            .unwrap()
            .value;
        let journal = SessionJournal::from_bytes(&bytes).unwrap();
        assert_eq!(journal.restore().unwrap().len(), 8);
        assert!(journal.torn().is_empty());
    }

    #[test]
    fn durable_batch_survives_an_event_cut() {
        let reference = {
            let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
            pool.set_fault_plan(Some(FaultPlan::fault_free()));
            pool.run_batch_recovered(jobs(8, 20), RetryPolicy::default())
                .unwrap()
                .sessions
        };

        let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
        pool.set_fault_plan(Some(FaultPlan::fault_free()));
        // A fault-free batch records no trace events, so cut at 0: the
        // cord is yanked at the very first commit gate, before anything
        // reaches NVRAM — the whole batch must relaunch.
        let d = pool
            .run_batch_durable(
                jobs(8, 20),
                RetryPolicy::default(),
                ResetPlan::reset_free().with_cut_after_events(0),
            )
            .unwrap();

        assert_eq!(d.resets, 1);
        assert!(d.committed.is_empty());
        assert_eq!(d.relaunched.len(), 8);
        assert!(d.recovery_latency >= sea_hw::RESET_REBOOT_COST);
        // The recovered batch is byte-identical to the crash-free run.
        assert_eq!(d.sessions, reference);

        // Nothing leaked across the reset, and the trace tells the story.
        let sea = pool.into_inner();
        let tpm = sea.platform().tpm().expect("tpm");
        assert_eq!(tpm.sepcrs().free_count(), tpm.sepcrs().count());
        let (_, cpus_pages, none_pages) = sea.platform().machine().controller().state_census();
        assert_eq!((cpus_pages, none_pages), (0, 0));
        let trace = sea.platform().machine().trace();
        assert!(trace
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::PlatformReset)));
        assert!(trace
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::SessionRelaunched { .. })));
    }

    #[test]
    fn durable_batch_with_rate_resets_terminates_within_budget() {
        let mut pool = ConcurrentSea::new(platform(4), 4).unwrap();
        pool.set_fault_plan(Some(FaultPlan::fault_free()));
        let d = pool
            .run_batch_durable(
                jobs(12, 10),
                RetryPolicy::default(),
                ResetPlan::new(9)
                    .with_reset_rate(sea_hw::RATE_DENOM / 3)
                    .with_max_resets(3),
            )
            .unwrap();
        assert!(d.resets >= 1, "one-in-three rate over 12 gates must fire");
        assert!(d.resets <= 3, "budget caps the reset count");
        assert_eq!(d.quoted() + d.degraded() + d.killed(), 12);
        assert_eq!(d.quoted(), 12);
        for (i, s) in d.sessions.iter().enumerate() {
            match s {
                SessionResult::Quoted { result, .. } => {
                    assert_eq!(result.output, vec![i as u8]);
                    assert_eq!(result.cpu, CpuId((i % 4) as u16));
                }
                other => panic!("expected Quoted, got {other:?}"),
            }
        }
    }

    #[test]
    fn shared_clock_reflects_batch_wall_time() {
        let mut pool = ConcurrentSea::new(platform(2), 2).unwrap();
        let outcome = pool.run_batch(jobs(4, 50)).unwrap();
        // Every domain published busy-so-far at each job boundary; the
        // final shared reading is the busiest CPU's timeline.
        assert_eq!(pool.clock().now().as_ns(), outcome.wall.as_ns());
    }
}
