//! The batch data model, plus the retired concurrent-engine facade.
//!
//! The executor itself lives in [`crate::engine`]: one generic
//! [`SessionEngine`] whose behavior is composed from a
//! [`BatchPolicy`]. This module keeps what batches are *made of* —
//! [`ConcurrentJob`], [`JobResult`], [`SessionResult`] — and the
//! historical [`ConcurrentSea`] facade with its three outcome structs,
//! as thin deprecated shims over the unified engine so the
//! equivalence tests can prove old-vs-new byte-identity.

use sea_hw::{CpuId, FaultPlan, ResetPlan, SimDuration};
use sea_tpm::Quote;

use crate::engine::{rate_per_sec, speedup, BatchPolicy, SessionEngine, SessionTally, Slaunch};
use crate::error::SeaError;
use crate::pal::PalLogic;
use crate::platform::SecurePlatform;
use crate::recovery::RetryPolicy;
use crate::report::SessionReport;

/// One unit of work for the pool: a PAL plus its input.
pub struct ConcurrentJob {
    pub(crate) logic: Box<dyn PalLogic + Send>,
    pub(crate) input: Vec<u8>,
}

impl ConcurrentJob {
    /// Packages a PAL and its input for submission.
    pub fn new(logic: Box<dyn PalLogic + Send>, input: impl Into<Vec<u8>>) -> Self {
        ConcurrentJob {
            logic,
            input: input.into(),
        }
    }
}

/// Result of one job in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The PAL's output.
    pub output: Vec<u8>,
    /// The session's cost breakdown (virtual time).
    pub report: SessionReport,
    /// Virtual cost of the post-exit `TPM_Quote` + `TPM_SEPCR_Free`.
    pub quote_cost: SimDuration,
    /// The CPU (= worker) the session ran on.
    pub cpu: CpuId,
}

impl JobResult {
    /// The job's full virtual cost: session plus attestation.
    pub fn total(&self) -> SimDuration {
        self.report.total() + self.quote_cost
    }
}

/// Aggregate outcome of one [`ConcurrentSea::run_batch`], retired in
/// favor of [`crate::engine::BatchOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentOutcome {
    /// Per-job results, in job-index order.
    pub results: Vec<JobResult>,
    /// Virtual busy time accumulated by each worker/CPU.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch: the busiest CPU's total (the
    /// other CPUs' work overlaps it).
    pub wall: SimDuration,
}

impl ConcurrentOutcome {
    /// Sum of all jobs' virtual costs (the serial-execution wall time).
    pub fn aggregate(&self) -> SimDuration {
        self.results.iter().map(JobResult::total).sum()
    }

    /// Sessions completed per virtual second of batch wall time.
    pub fn throughput_per_sec(&self) -> f64 {
        rate_per_sec(self.results.len(), self.wall)
    }

    /// Parallel speedup over running the same batch on one CPU.
    pub fn speedup(&self) -> f64 {
        speedup(self.aggregate(), self.wall)
    }
}

/// Outcome of one job driven by the recovery layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionResult {
    /// The session completed (possibly after retries) and was quoted.
    Quoted {
        /// The session's output, report, quote cost, and CPU.
        result: JobResult,
        /// The attestation over the session's sePCR.
        quote: Quote,
        /// How many injected faults were retried along the way.
        retries: u32,
        /// Virtual time spent on fault handling and backoff.
        recovery_cost: SimDuration,
    },
    /// The sePCR bank was saturated at launch; the session ran to
    /// completion on the legacy (late-launch) slow path instead,
    /// without a sePCR-bound quote.
    Degraded {
        /// The job's index in the batch.
        job: usize,
        /// The PAL's output.
        output: Vec<u8>,
        /// The legacy session's cost breakdown.
        report: SessionReport,
    },
    /// The retry budget was exhausted (or the fault was fatal); the
    /// session was torn down via `SKILL` and its sePCR reclaimed.
    Killed {
        /// The job's index in the batch.
        job: usize,
        /// Attempts made (1 initial + retries) before giving up.
        attempts: u32,
        /// The error that ended the session.
        error: SeaError,
        /// Virtual time wasted on the failed attempts.
        wasted: SimDuration,
    },
}

impl SessionResult {
    /// The job's virtual cost as charged to its worker CPU.
    pub fn cost(&self) -> SimDuration {
        match self {
            SessionResult::Quoted {
                result,
                recovery_cost,
                ..
            } => result.total() + *recovery_cost,
            SessionResult::Degraded { report, .. } => report.total(),
            SessionResult::Killed { wasted, .. } => *wasted,
        }
    }

    /// Whether the session completed and was quoted.
    pub fn is_quoted(&self) -> bool {
        matches!(self, SessionResult::Quoted { .. })
    }

    /// Whether the session was killed.
    pub fn is_killed(&self) -> bool {
        matches!(self, SessionResult::Killed { .. })
    }
}

/// Aggregate outcome of one [`ConcurrentSea::run_batch_recovered`],
/// retired in favor of [`crate::engine::BatchOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredOutcome {
    /// Per-job outcomes, in job-index order.
    pub sessions: Vec<SessionResult>,
    /// Virtual busy time accumulated by each worker/CPU.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch (busiest CPU's total).
    pub wall: SimDuration,
}

impl RecoveredOutcome {
    /// Number of sessions that completed with a quote.
    pub fn quoted(&self) -> usize {
        SessionTally::of(&self.sessions).quoted
    }

    /// Number of sessions killed after exhausting their retry budget.
    pub fn killed(&self) -> usize {
        SessionTally::of(&self.sessions).killed
    }

    /// Completed (quoted or degraded) sessions per virtual second of
    /// batch wall time.
    pub fn goodput_per_sec(&self) -> f64 {
        rate_per_sec(SessionTally::of(&self.sessions).completed(), self.wall)
    }
}

/// Aggregate outcome of one [`ConcurrentSea::run_batch_durable`],
/// retired in favor of [`crate::engine::BatchOutcome`]: a recovered
/// batch plus its crash history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableOutcome {
    /// Per-job outcomes, in job-index order.
    pub sessions: Vec<SessionResult>,
    /// Virtual busy time accumulated by each worker/CPU, including work
    /// torn by crashes and redone after recovery.
    pub cpu_busy: Vec<SimDuration>,
    /// Virtual wall time of the batch: the busiest CPU's total plus the
    /// serial recovery and journal-checkpoint overheads.
    pub wall: SimDuration,
    /// Platform resets the batch survived.
    pub resets: u32,
    /// Session keys restored from the journal at the *last* recovery
    /// (empty when no reset fired).
    pub committed: Vec<u64>,
    /// Session keys relaunched at the *last* recovery (empty when no
    /// reset fired). With `resets > 0`,
    /// `committed.len() + relaunched.len()` equals the batch size.
    pub relaunched: Vec<u64>,
    /// Virtual time spent on reboots and journal unsealing across all
    /// recoveries.
    pub recovery_latency: SimDuration,
    /// Virtual time spent sealing journal checkpoints into NVRAM.
    pub journal_overhead: SimDuration,
}

impl DurableOutcome {
    /// Number of sessions that completed with a quote.
    pub fn quoted(&self) -> usize {
        SessionTally::of(&self.sessions).quoted
    }

    /// Number of sessions that completed on the degraded slow path.
    pub fn degraded(&self) -> usize {
        SessionTally::of(&self.sessions).degraded
    }

    /// Number of sessions killed after exhausting their retry budget.
    pub fn killed(&self) -> usize {
        SessionTally::of(&self.sessions).killed
    }

    /// Completed (quoted or degraded) sessions per virtual second of
    /// batch wall time — the crash sweep's goodput axis.
    pub fn goodput_per_sec(&self) -> f64 {
        rate_per_sec(SessionTally::of(&self.sessions).completed(), self.wall)
    }
}

/// The retired multi-core engine facade: a thin wrapper over
/// [`SessionEngine<Slaunch>`], kept so the equivalence tests can prove
/// the unified executor reproduces the historical entry points byte
/// for byte. New code should hold a [`SessionEngine`] directly and
/// compose a [`BatchPolicy`].
pub struct ConcurrentSea {
    engine: SessionEngine<Slaunch>,
}

impl ConcurrentSea {
    /// Builds a pool of `workers` worker threads (worker *k* drives CPU
    /// *k*) over a fresh [`crate::EnhancedSea`] on `platform`.
    ///
    /// # Errors
    ///
    /// As for [`SessionEngine::new`].
    pub fn new(platform: SecurePlatform, workers: usize) -> Result<Self, SeaError> {
        Ok(ConcurrentSea {
            engine: SessionEngine::new(platform, workers)?,
        })
    }

    /// Installs (or clears) a deterministic fault plan on the shared
    /// engine.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.engine.set_fault_plan(plan);
    }

    /// Runs a plain batch. Retired: compose
    /// [`SessionEngine::run`] with [`BatchPolicy::plain`] instead.
    ///
    /// # Errors
    ///
    /// As for [`SessionEngine::run`] on the plain path.
    #[deprecated(note = "use SessionEngine::run with BatchPolicy::plain()")]
    pub fn run_batch(&mut self, jobs: Vec<ConcurrentJob>) -> Result<ConcurrentOutcome, SeaError> {
        let out = self.engine.run(jobs, &BatchPolicy::plain())?;
        let mut results = Vec::with_capacity(out.sessions.len());
        for session in out.sessions {
            match session {
                SessionResult::Quoted { result, .. } => results.push(result),
                _ => {
                    return Err(SeaError::EngineFault(
                        "plain batch yielded a non-quoted session",
                    ))
                }
            }
        }
        Ok(ConcurrentOutcome {
            results,
            cpu_busy: out.cpu_busy,
            wall: out.wall,
        })
    }

    /// Runs a batch with `policy`-bounded fault recovery. Retired:
    /// compose [`SessionEngine::run`] with
    /// [`BatchPolicy::with_retry`] instead.
    ///
    /// # Errors
    ///
    /// As for [`SessionEngine::run`] under a retry policy.
    #[deprecated(note = "use SessionEngine::run with BatchPolicy::plain().with_retry(..)")]
    pub fn run_batch_recovered(
        &mut self,
        jobs: Vec<ConcurrentJob>,
        policy: RetryPolicy,
    ) -> Result<RecoveredOutcome, SeaError> {
        let out = self
            .engine
            .run(jobs, &BatchPolicy::plain().with_retry(policy))?;
        Ok(RecoveredOutcome {
            sessions: out.sessions,
            cpu_busy: out.cpu_busy,
            wall: out.wall,
        })
    }

    /// Runs a batch with fault recovery **and** crash-consistency.
    /// Retired: compose [`SessionEngine::run`] with
    /// [`BatchPolicy::with_retry`] + [`BatchPolicy::with_durability`]
    /// instead.
    ///
    /// # Errors
    ///
    /// As for [`SessionEngine::run`] under a durability policy.
    #[deprecated(
        note = "use SessionEngine::run with BatchPolicy::plain().with_retry(..).with_durability(..)"
    )]
    pub fn run_batch_durable(
        &mut self,
        jobs: Vec<ConcurrentJob>,
        policy: RetryPolicy,
        plan: ResetPlan,
    ) -> Result<DurableOutcome, SeaError> {
        let out = self.engine.run(
            jobs,
            &BatchPolicy::plain()
                .with_retry(policy)
                .with_durability(plan),
        )?;
        Ok(DurableOutcome {
            sessions: out.sessions,
            cpu_busy: out.cpu_busy,
            wall: out.wall,
            resets: out.resets,
            committed: out.committed,
            relaunched: out.relaunched,
            recovery_latency: out.recovery_latency,
            journal_overhead: out.journal_overhead,
        })
    }
}
