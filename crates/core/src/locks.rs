//! The engine's lock hierarchy: ranked mutexes with debug-build
//! ordering enforcement.
//!
//! The batch engine used to funnel everything through one
//! `Mutex<EnhancedSea>`. Decomposing it leaves four distinct pieces of
//! shared state, each behind its own short-hold leaf lock, and the only
//! thing that keeps fine-grained locking honest is a *total order* on
//! acquisition. [`OrderedLock`] encodes that order in the type: every
//! lock is built with a [`LockRank`], and debug builds maintain a
//! thread-local stack of held ranks, panicking the moment any thread
//! acquires a lock whose rank is not strictly greater than everything
//! it already holds. Release builds compile the bookkeeping away — an
//! [`OrderedLock`] is then exactly a `std::sync::Mutex`.
//!
//! # The hierarchy
//!
//! | rank | lock | guards |
//! |------|------|--------|
//! | [`LockRank::Runtime`] (0)    | the architecture runtime | machine, TPM, trace — every architecture operation |
//! | [`LockRank::Triggers`] (1)   | [`crate::engine::BatchPolicy`] reset triggers | the power-loss decision state |
//! | [`LockRank::Journal`] (2)    | the write-ahead [`crate::SessionJournal`] | intents and terminal commits |
//! | [`LockRank::Accounting`] (3) | pure accumulators | journal-seal overhead |
//!
//! The order matches the commit gate's nesting (runtime → triggers →
//! journal → accounting) and the recovery path (runtime → journal); a
//! leaf lock is never held across an acquisition of a lower rank, so
//! the hierarchy is deadlock-free by construction. Same-rank nesting is
//! also rejected — with `std::sync::Mutex` it would self-deadlock.
//!
//! scripts/ci.sh greps `crates/core/src` for stray `Mutex<` uses: this
//! module is the only place in the crate allowed to name the raw type,
//! so every future piece of shared state must declare its rank here.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard};

/// Position of one lock in the engine's total acquisition order.
/// Within any one thread, ranks must strictly increase from acquisition
/// to nested acquisition (enforced in debug builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockRank {
    /// The shared architecture runtime (machine, TPM, trace). Taken
    /// first: every architecture operation starts here.
    Runtime = 0,
    /// The durable batch's power-loss trigger state, consulted at each
    /// commit boundary while the runtime lock pins the trace counter.
    Triggers = 1,
    /// The write-ahead session journal (intents and terminal commits).
    Journal = 2,
    /// Pure accounting accumulators (journal-seal overhead); leaves of
    /// the hierarchy, never held across any other acquisition.
    Accounting = 3,
}

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks currently held by this thread, in acquisition order.
    static HELD_RANKS: std::cell::RefCell<Vec<LockRank>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A mutex pinned to one [`LockRank`]. Debug builds assert the
/// engine-wide acquisition order on every [`OrderedLock::lock`];
/// release builds are plain mutexes. Poisoning is ridden through
/// everywhere — a panicked worker must not wedge the batch driver.
pub struct OrderedLock<T> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedLock<T> {
    /// Wraps `value` in a lock at `rank`.
    pub fn new(rank: LockRank, value: T) -> Self {
        OrderedLock {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// The lock's position in the acquisition order.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires the lock, riding through poison.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this thread already holds a lock of
    /// equal or greater rank (an acquisition-order violation).
    pub fn lock(&self) -> Held<'_, T> {
        #[cfg(debug_assertions)]
        HELD_RANKS.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&top) = held.iter().max() {
                assert!(
                    self.rank > top,
                    "lock order violation: acquiring {:?} while holding {:?}",
                    self.rank,
                    top,
                );
            }
            held.push(self.rank);
        });
        Held {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            #[cfg(debug_assertions)]
            rank: self.rank,
        }
    }

    /// Consumes the lock, returning the value (riding through poison).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Locks an [`OrderedLock`] — the crate-wide call-site idiom,
/// predating the hierarchy (`lock(rt)` reads better than
/// `rt.lock()` at ~50 sites).
pub(crate) fn lock<T>(l: &OrderedLock<T>) -> Held<'_, T> {
    l.lock()
}

/// An acquired [`OrderedLock`]: derefs to the value; dropping releases
/// the lock and (in debug builds) retires its rank from the thread's
/// held-rank stack.
pub struct Held<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl<T> Deref for Held<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for Held<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for Held<'_, T> {
    fn drop(&mut self) {
        HELD_RANKS.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|r| *r == self.rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_rides_through_poison() {
        let l = OrderedLock::new(LockRank::Runtime, 7u32);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = l.lock();
            panic!("poison the lock");
        }));
        assert!(poisoned.is_err());
        assert_eq!(*l.lock(), 7);
    }

    #[test]
    fn ascending_ranks_nest() {
        let rt = OrderedLock::new(LockRank::Runtime, ());
        let journal = OrderedLock::new(LockRank::Journal, 1u8);
        let acct = OrderedLock::new(LockRank::Accounting, 2u8);
        let _a = rt.lock();
        let b = journal.lock();
        let c = acct.lock();
        assert_eq!(*b + *c, 3);
    }

    #[test]
    fn ranks_release_in_any_order() {
        let rt = OrderedLock::new(LockRank::Runtime, ());
        let journal = OrderedLock::new(LockRank::Journal, ());
        let a = rt.lock();
        let b = journal.lock();
        // Out-of-LIFO release must retire the right rank, so a fresh
        // ascending acquisition still passes the debug assertion.
        drop(a);
        drop(b);
        let _a = rt.lock();
        let _b = journal.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock order violation")]
    fn descending_ranks_panic_in_debug() {
        let rt = OrderedLock::new(LockRank::Runtime, ());
        let journal = OrderedLock::new(LockRank::Journal, ());
        let _b = journal.lock();
        let _a = rt.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock order violation")]
    fn same_rank_nesting_panics_in_debug() {
        let a = OrderedLock::new(LockRank::Journal, ());
        let b = OrderedLock::new(LockRank::Journal, ());
        let _a = a.lock();
        let _b = b.lock();
    }

    #[test]
    fn into_inner_returns_the_value() {
        let l = OrderedLock::new(LockRank::Accounting, vec![1, 2, 3]);
        assert_eq!(l.rank(), LockRank::Accounting);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
