//! Retry and recovery policy for faulted sessions.
//!
//! The fault-injection substrate ([`sea_hw::FaultPlan`]) makes the
//! hardware stack misbehave in controlled, reproducible ways; this
//! module decides what the *software* does about it. A [`RetryPolicy`]
//! bounds how often a transient fault may be retried and how long the
//! OS backs off (in virtual time) between attempts. When the budget is
//! exhausted — or the fault is fatal to begin with — the recovery layer
//! tears the session down via `SKILL`, reclaiming its pages and sePCR
//! so the rest of the batch is unaffected (§5.5: "the ability to
//! terminate a misbehaving PAL without losing the work of every other
//! PAL on the platform").

use sea_hw::{HwError, SimDuration};
use sea_tpm::TpmError;

use crate::error::SeaError;

/// Bounded-retry policy with linear virtual-time backoff.
///
/// # Example
///
/// ```
/// use sea_core::RetryPolicy;
/// use sea_hw::SimDuration;
///
/// let policy = RetryPolicy::default();
/// assert_eq!(policy.max_retries(), 4);
/// // Backoff grows linearly with the attempt number.
/// assert_eq!(policy.backoff_for(2), policy.backoff_for(1) * 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_retries: u32,
    backoff: SimDuration,
}

impl Default for RetryPolicy {
    /// Four retries with a 50 µs base backoff — generous next to the
    /// ~1 µs context switch, negligible next to the ~9 ms launch.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff: SimDuration::from_us(50),
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries with `backoff` base
    /// delay (attempt *n* waits *n* × `backoff`).
    pub fn new(max_retries: u32, backoff: SimDuration) -> Self {
        RetryPolicy {
            max_retries,
            backoff,
        }
    }

    /// A policy that never retries: every fault is terminal.
    pub fn none() -> Self {
        RetryPolicy::new(0, SimDuration::ZERO)
    }

    /// Maximum number of retries after the initial attempt.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Base backoff duration.
    pub fn backoff(&self) -> SimDuration {
        self.backoff
    }

    /// Virtual-time backoff before retry number `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        self.backoff * attempt as u64
    }

    /// Whether `error` is worth retrying under this policy: transient
    /// TPM transport glitches, the TPM lock being momentarily held, and
    /// spurious memory-controller denials all clear on their own.
    /// Everything else — fatal transport faults, lifecycle violations,
    /// exhausted sePCR banks — is not retryable (saturation is handled
    /// by *degradation*, not retry).
    pub fn is_retryable(&self, error: &SeaError) -> bool {
        match error {
            SeaError::Tpm(e) => e.is_retryable(),
            SeaError::Hw(HwError::AccessDenied { .. }) => true,
            _ => false,
        }
    }

    /// Whether the sePCR bank is saturated — the signal to degrade to
    /// the legacy slow path rather than retry or kill.
    pub fn is_saturation(error: &SeaError) -> bool {
        matches!(error, SeaError::Tpm(TpmError::NoFreeSePcr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secb::PalLifecycle;
    use sea_hw::{CpuId, PageIndex, Requester};

    #[test]
    fn default_policy_bounds() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries(), 4);
        assert_eq!(p.backoff(), SimDuration::from_us(50));
        assert_eq!(p.backoff_for(1), SimDuration::from_us(50));
        assert_eq!(p.backoff_for(3), SimDuration::from_us(150));
    }

    #[test]
    fn none_policy_never_waits() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries(), 0);
        assert_eq!(p.backoff_for(1), SimDuration::ZERO);
    }

    #[test]
    fn retryability_classification() {
        let p = RetryPolicy::default();
        assert!(p.is_retryable(&SeaError::Tpm(TpmError::TransportFault { retryable: true })));
        assert!(p.is_retryable(&SeaError::Tpm(TpmError::LockHeld { holder: CpuId(1) })));
        assert!(p.is_retryable(&SeaError::Hw(HwError::AccessDenied {
            requester: Requester::Cpu(CpuId(0)),
            page: PageIndex(64),
        })));
        assert!(!p.is_retryable(&SeaError::Tpm(TpmError::TransportFault {
            retryable: false
        })));
        assert!(!p.is_retryable(&SeaError::Tpm(TpmError::NoFreeSePcr)));
        assert!(!p.is_retryable(&SeaError::WrongLifecycle {
            actual: PalLifecycle::Done,
            operation: "resume",
        }));
    }

    #[test]
    fn saturation_is_distinguished_from_faults() {
        assert!(RetryPolicy::is_saturation(&SeaError::Tpm(
            TpmError::NoFreeSePcr
        )));
        assert!(!RetryPolicy::is_saturation(&SeaError::Tpm(
            TpmError::TransportFault { retryable: true }
        )));
    }
}
