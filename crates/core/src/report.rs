//! Session cost breakdowns — the quantities Figure 2 plots.

use std::fmt;

use sea_hw::SimDuration;

/// Cost breakdown of one PAL session, mirroring the stacked components of
/// Figure 2 (`SKINIT`, `Seal`, `Unseal`, `Quote`) plus application work.
///
/// # Example
///
/// ```
/// use sea_core::SessionReport;
/// use sea_hw::SimDuration;
///
/// let mut r = SessionReport::default();
/// r.late_launch = SimDuration::from_ms(177);
/// r.seal = SimDuration::from_ms(20);
/// assert_eq!(r.overhead(), SimDuration::from_ms(197));
/// assert_eq!(r.total(), r.overhead()); // no app work recorded
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// Late launch (`SKINIT`/`SENTER`) or `SLAUNCH` measurement cost.
    pub late_launch: SimDuration,
    /// Time in `TPM_Seal`.
    pub seal: SimDuration,
    /// Time in `TPM_Unseal`.
    pub unseal: SimDuration,
    /// Time in `TPM_Quote`.
    pub quote: SimDuration,
    /// Other TPM commands (extends, random) issued by the PAL.
    pub tpm_other: SimDuration,
    /// Context-switch costs (suspend/resume; VM-entry scale on proposed
    /// hardware, §5.7).
    pub context_switch: SimDuration,
    /// Application-specific work — *not* overhead ("these numbers
    /// represent pure overhead — the time necessary for
    /// application-specific work would be added on top", §4.2).
    pub pal_work: SimDuration,
}

impl SessionReport {
    /// Total architectural overhead (everything except PAL work).
    pub fn overhead(&self) -> SimDuration {
        self.late_launch
            + self.seal
            + self.unseal
            + self.quote
            + self.tpm_other
            + self.context_switch
    }

    /// End-to-end session time including application work.
    pub fn total(&self) -> SimDuration {
        self.overhead() + self.pal_work
    }

    /// Component-wise sum of two reports.
    pub fn merged(&self, other: &SessionReport) -> SessionReport {
        SessionReport {
            late_launch: self.late_launch + other.late_launch,
            seal: self.seal + other.seal,
            unseal: self.unseal + other.unseal,
            quote: self.quote + other.quote,
            tpm_other: self.tpm_other + other.tpm_other,
            context_switch: self.context_switch + other.context_switch,
            pal_work: self.pal_work + other.pal_work,
        }
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "late-launch {} | seal {} | unseal {} | quote {} | tpm-other {} | ctx-switch {} | work {} || total {}",
            self.late_launch,
            self.seal,
            self.unseal,
            self.quote,
            self.tpm_other,
            self.context_switch,
            self.pal_work,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_excludes_pal_work() {
        let r = SessionReport {
            late_launch: SimDuration::from_ms(177),
            seal: SimDuration::from_ms(20),
            unseal: SimDuration::from_ms(905),
            quote: SimDuration::from_ms(880),
            tpm_other: SimDuration::from_ms(1),
            context_switch: SimDuration::from_us(1),
            pal_work: SimDuration::from_ms(50),
        };
        assert_eq!(
            r.overhead(),
            SimDuration::from_ms(1983) + SimDuration::from_us(1)
        );
        assert_eq!(r.total(), r.overhead() + SimDuration::from_ms(50));
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = SessionReport {
            seal: SimDuration::from_ms(1),
            pal_work: SimDuration::from_ms(2),
            ..SessionReport::default()
        };
        let b = SessionReport {
            seal: SimDuration::from_ms(3),
            quote: SimDuration::from_ms(4),
            ..SessionReport::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.seal, SimDuration::from_ms(4));
        assert_eq!(m.quote, SimDuration::from_ms(4));
        assert_eq!(m.pal_work, SimDuration::from_ms(2));
    }

    #[test]
    fn display_mentions_all_components() {
        let s = SessionReport::default().to_string();
        for key in [
            "late-launch",
            "seal",
            "unseal",
            "quote",
            "ctx-switch",
            "total",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
