//! The thread-pool executor: one OS thread per simulated CPU.
//!
//! This is the engine's original backend, now one of two
//! [`crate::engine::Executor`] choices: worker *k* plays CPU *k*,
//! drives its statically-assigned jobs ([`SessionDriver`] run to
//! terminal in a tight loop), and determinism is *enforced* — per-job
//! costs are intrinsic, per-CPU busy time folds into the shared
//! timeline via an atomic max, the TPM serializes on lock contention —
//! rather than structural as in [`crate::des`].
//!
//! This module is the only place in `sea-core` allowed to spawn OS
//! threads (scripts/ci.sh greps for strays).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use sea_hw::{CpuClockDomain, CpuId, Obs, SharedClock, SimDuration, SimTime};

use crate::concurrent::ConcurrentJob;
use crate::driver::SessionDriver;
use crate::engine::{Architecture, Attempt, WorkerMode};
use crate::error::SeaError;
use crate::locks::{lock, OrderedLock};

/// Drives one worker's statically-assigned jobs on CPU `k` under the
/// epoch's mode. Returns per-job attempts plus the CPU's accumulated
/// virtual busy time.
#[allow(clippy::type_complexity)]
fn batch_worker<A: Architecture>(
    k: usize,
    assigned: Vec<(usize, ConcurrentJob)>,
    rt: &OrderedLock<A::Runtime>,
    obs: &Obs,
    clock: &Arc<SharedClock>,
    epoch: SimTime,
    mode: WorkerMode<'_>,
) -> Result<(Vec<(usize, Attempt)>, SimDuration), SeaError> {
    let cpu = CpuId(k as u16);
    let mut domain = CpuClockDomain::at(Arc::clone(clock), epoch);
    let mut results = Vec::with_capacity(assigned.len());
    for (i, job) in assigned {
        match mode {
            WorkerMode::Plain => {
                let mut driver = SessionDriver::<A>::new(i, cpu, job, None, false);
                let result = driver.run_to_terminal(rt, obs, None);
                if let Ok(r) = &result {
                    domain.advance(r.cost());
                }
                domain.publish();
                results.push((i, Attempt::Done(result)));
            }
            WorkerMode::Recovered { retry } => {
                let mut driver = SessionDriver::<A>::new(i, cpu, job, Some(retry), false);
                let result = driver.run_to_terminal(rt, obs, None);
                if let Ok(r) = &result {
                    domain.advance(r.cost());
                }
                domain.publish();
                results.push((i, Attempt::Done(result)));
            }
            WorkerMode::Durable(ctx) => {
                let key = i as u64;
                if ctx.crashed.load(Ordering::SeqCst) {
                    // The platform is already dark; this job never
                    // started.
                    results.push((i, Attempt::Torn(job)));
                    continue;
                }
                lock(ctx.journal).record_intent(key);
                let mut driver = SessionDriver::<A>::new(i, cpu, job, Some(ctx.retry), true);
                let session = driver.run_to_terminal(rt, obs, Some(ctx.journal))?;
                let attempt = ctx.commit_gate::<A>(rt, obs, key, session, driver.into_job())?;
                if let Attempt::Committed(s) | Attempt::Volatile(s, _) = &attempt {
                    domain.advance(s.cost());
                }
                domain.publish();
                results.push((i, attempt));
            }
        }
    }
    Ok((results, domain.busy()))
}

/// Runs one epoch of the batch across `workers` scoped OS threads.
/// Returns the per-job attempts (indexed by job) and each CPU's busy
/// time for the epoch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_epoch<A: Architecture>(
    workers: usize,
    n_jobs: usize,
    pending: Vec<(usize, ConcurrentJob)>,
    rt: &Arc<OrderedLock<A::Runtime>>,
    obs: &Obs,
    clock: &Arc<SharedClock>,
    epoch: SimTime,
    mode: WorkerMode<'_>,
) -> Result<(Vec<Option<Attempt>>, Vec<SimDuration>), SeaError> {
    // Jobs keep their static assignment (job i → worker/CPU
    // i % workers) in every epoch.
    let mut per_worker: Vec<Vec<(usize, ConcurrentJob)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in pending {
        per_worker[i % workers].push((i, job));
    }

    let mut attempts: Vec<Option<Attempt>> = (0..n_jobs).map(|_| None).collect();
    let mut busy = vec![SimDuration::ZERO; workers];
    std::thread::scope(|scope| -> Result<(), SeaError> {
        let handles: Vec<_> = per_worker
            .into_iter()
            .enumerate()
            .map(|(k, assigned)| {
                let rt = Arc::clone(rt);
                let clock = Arc::clone(clock);
                scope.spawn(move || batch_worker::<A>(k, assigned, &rt, obs, &clock, epoch, mode))
            })
            .collect();
        for (k, handle) in handles.into_iter().enumerate() {
            let (results, worker_busy) = handle
                .join()
                .map_err(|_| SeaError::EngineFault("worker thread panicked"))??;
            busy[k] += worker_busy;
            for (i, attempt) in results {
                attempts[i] = Some(attempt);
            }
        }
        Ok(())
    })?;
    Ok((attempts, busy))
}
