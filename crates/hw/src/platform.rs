//! Platform presets for every machine the paper measures, plus the
//! paper's recommended hardware.
//!
//! Calibration sources (all from the paper):
//!
//! * **Table 1** — `SKINIT`/`SENTER` latency vs PAL size on the
//!   HP dc5750 (AMD + Broadcom TPM), Tyan n3600R (AMD, no TPM) and the
//!   MPC ClientPro "TEP" (Intel + Atmel TPM). The fitted constants are:
//!   dc5750 ≈ 2708.7 ns/B (TPM long-wait dominated), Tyan ≈ 134.6 ns/B
//!   (bare LPC), TEP = 26.39 ms fixed ACMod cost + 121.45 ns/B of
//!   CPU-side SHA-1.
//! * **Table 2** — VM entry/exit: AMD 0.5580/0.5193 µs,
//!   Intel 0.4457/0.4491 µs.
//! * **§4.3** — machine inventory: 2.2 GHz Athlon64 X2 (dc5750), dual
//!   1.8 GHz dual-core Opterons (Tyan), 2.66 GHz Core 2 Duo (TEP).

use crate::time::SimDuration;
use crate::types::CpuId;

/// CPU vendor, selecting the late-launch flavour and VM-switch costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuVendor {
    /// AMD: `SKINIT`, Secure Virtual Machine (SVM), DEV protection.
    Amd,
    /// Intel: `SENTER` (GETSEC leaf), TXT, ACMod + MPT protection.
    Intel,
}

/// Which discrete TPM chip (if any) is soldered to the platform.
///
/// The actual per-command timing model lives in `sea-tpm`; this enum is
/// the platform-level name binding the two crates together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpmKind {
    /// Broadcom v1.2 TPM in the HP dc5750 (the paper's primary machine).
    Broadcom,
    /// Atmel v1.2 TPM in the Lenovo T60 laptop.
    AtmelT60,
    /// Atmel v1.2 TPM in the Intel TEP (different model than the T60's).
    AtmelTep,
    /// Infineon v1.2 TPM in an AMD workstation (best average performer).
    Infineon,
    /// A hypothetical future TPM operating at full LPC bus speed with a
    /// hardware-pipelined engine — used by the §5.7 speed-up ablation.
    FutureFast,
    /// No TPM installed (the Tyan n3600R configuration).
    None,
}

impl TpmKind {
    /// Whether a TPM chip is actually present.
    pub fn is_present(self) -> bool {
        self != TpmKind::None
    }
}

/// How this platform performs a late launch, with calibrated costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LateLaunchModel {
    /// AMD `SKINIT`: the CPU sends the whole SLB to the TPM, which hashes
    /// it (costs are therefore TPM-rate dominated; see `sea-tpm`).
    AmdSkinit {
        /// Time to put the CPU into the trusted state with protections
        /// enabled ("less than 10 µs", §4.3.1).
        cpu_init: SimDuration,
    },
    /// Intel `SENTER`: the chipset ships the ~10 KB ACMod to the TPM and
    /// verifies its signature (a fixed cost), then the ACMod hashes the
    /// PAL *on the main CPU* and extends only the 20-byte digest.
    IntelSenter {
        /// Fixed cost: ACMod transfer + TPM hashing + signature
        /// verification (26.39 ms measured for a 0 KB PAL).
        acmod_cost: SimDuration,
        /// CPU-side SHA-1 rate over the PAL (fitted 121.45 ns/B).
        cpu_hash_ns_per_byte: f64,
    },
}

/// VM entry/exit micro-costs (Table 2), used both as a baseline reference
/// and as the cost of the proposed `SLAUNCH` resume path (§5.7 argues the
/// proposed context switch should cost about a VM entry/exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtTiming {
    /// Cost of VM entry (`VMRUN` / `VMRESUME`).
    pub vm_enter: SimDuration,
    /// Cost of VM exit.
    pub vm_exit: SimDuration,
}

impl VirtTiming {
    /// Table 2 row for AMD SVM (Tyan n3600R, 1.8 GHz Opteron).
    pub fn amd() -> Self {
        VirtTiming {
            vm_enter: SimDuration::from_ns(558),
            vm_exit: SimDuration::from_ns(519),
        }
    }

    /// Table 2 row for Intel TXT (MPC ClientPro 385, 2.66 GHz Core 2 Duo).
    pub fn intel() -> Self {
        VirtTiming {
            vm_enter: SimDuration::from_ns(446),
            vm_exit: SimDuration::from_ns(449),
        }
    }

    /// The timing natural for `vendor`.
    pub fn for_vendor(vendor: CpuVendor) -> Self {
        match vendor {
            CpuVendor::Amd => VirtTiming::amd(),
            CpuVendor::Intel => VirtTiming::intel(),
        }
    }
}

/// A complete hardware platform description.
///
/// This is a passive configuration record (all fields public); the
/// [`crate::Machine`] instantiates live state from it.
///
/// # Example
///
/// ```
/// use sea_hw::{CpuVendor, Platform};
///
/// let p = Platform::hp_dc5750();
/// assert_eq!(p.vendor, CpuVendor::Amd);
/// assert_eq!(p.n_cpus, 2);
/// assert!(!p.supports_slaunch);
///
/// let rec = Platform::recommended(8);
/// assert!(rec.supports_slaunch);
/// assert_eq!(rec.n_cpus, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable platform name, as used in the paper's tables.
    pub name: String,
    /// CPU vendor.
    pub vendor: CpuVendor,
    /// Core clock in GHz.
    pub cpu_ghz: f64,
    /// Number of CPU cores.
    pub n_cpus: u16,
    /// Installed memory in pages.
    pub mem_pages: u32,
    /// Which TPM chip is installed.
    pub tpm_kind: TpmKind,
    /// Effective LPC transfer cost with no TPM wait states (ns/byte).
    pub lpc_ns_per_byte: f64,
    /// Late-launch flavour and calibrated costs.
    pub late_launch: LateLaunchModel,
    /// VM entry/exit costs (Table 2).
    pub virt: VirtTiming,
    /// Whether this platform implements the paper's proposed `SLAUNCH`,
    /// access-control table, and sePCR extensions (§5).
    pub supports_slaunch: bool,
    /// Number of secure-execution PCRs, bounding concurrent PALs (§5.4).
    /// Zero on baseline hardware.
    pub sepcr_count: u16,
}

/// Effective LPC rate measured on the Tyan n3600R (8.82 ms / 64 KB).
pub(crate) const LPC_MEASURED_NS_PER_BYTE: f64 = 134.58;

/// Default installed memory: 16 Ki pages = 64 MiB (ample for PALs).
const DEFAULT_MEM_PAGES: u32 = 16 * 1024;

impl Platform {
    /// The paper's primary test machine: HP dc5750, 2.2 GHz AMD Athlon64
    /// X2 Dual Core 4200+, Broadcom v1.2 TPM.
    pub fn hp_dc5750() -> Self {
        Platform {
            name: "HP dc5750".to_owned(),
            vendor: CpuVendor::Amd,
            cpu_ghz: 2.2,
            n_cpus: 2,
            mem_pages: DEFAULT_MEM_PAGES,
            tpm_kind: TpmKind::Broadcom,
            lpc_ns_per_byte: LPC_MEASURED_NS_PER_BYTE,
            late_launch: LateLaunchModel::AmdSkinit {
                cpu_init: SimDuration::from_us(3),
            },
            virt: VirtTiming::amd(),
            supports_slaunch: false,
            sepcr_count: 0,
        }
    }

    /// Tyan n3600R server board, two 1.8 GHz dual-core Opterons, **no
    /// TPM** — isolates raw `SKINIT` cost from TPM wait states.
    pub fn tyan_n3600r() -> Self {
        Platform {
            name: "Tyan n3600R".to_owned(),
            vendor: CpuVendor::Amd,
            cpu_ghz: 1.8,
            n_cpus: 4,
            mem_pages: DEFAULT_MEM_PAGES,
            tpm_kind: TpmKind::None,
            lpc_ns_per_byte: LPC_MEASURED_NS_PER_BYTE,
            late_launch: LateLaunchModel::AmdSkinit {
                cpu_init: SimDuration::from_us(8),
            },
            virt: VirtTiming::amd(),
            supports_slaunch: false,
            sepcr_count: 0,
        }
    }

    /// MPC ClientPro Advantage 385 TXT Technology Enabling Platform:
    /// 2.66 GHz Core 2 Duo, Atmel v1.2 TPM, DQ965CO board.
    pub fn intel_tep() -> Self {
        Platform {
            name: "Intel TEP".to_owned(),
            vendor: CpuVendor::Intel,
            cpu_ghz: 2.66,
            n_cpus: 2,
            mem_pages: DEFAULT_MEM_PAGES,
            tpm_kind: TpmKind::AtmelTep,
            lpc_ns_per_byte: LPC_MEASURED_NS_PER_BYTE,
            late_launch: LateLaunchModel::IntelSenter {
                acmod_cost: SimDuration::from_ns(26_390_000),
                cpu_hash_ns_per_byte: 121.45,
            },
            virt: VirtTiming::intel(),
            supports_slaunch: false,
            sepcr_count: 0,
        }
    }

    /// Lenovo T60 laptop with an Atmel v1.2 TPM (TPM microbenchmarks
    /// only; Figure 3).
    pub fn lenovo_t60() -> Self {
        Platform {
            name: "Lenovo T60".to_owned(),
            vendor: CpuVendor::Intel,
            cpu_ghz: 2.0,
            n_cpus: 2,
            mem_pages: DEFAULT_MEM_PAGES,
            tpm_kind: TpmKind::AtmelT60,
            lpc_ns_per_byte: LPC_MEASURED_NS_PER_BYTE,
            late_launch: LateLaunchModel::IntelSenter {
                acmod_cost: SimDuration::from_ns(26_390_000),
                cpu_hash_ns_per_byte: 121.45,
            },
            virt: VirtTiming::intel(),
            supports_slaunch: false,
            sepcr_count: 0,
        }
    }

    /// AMD workstation with an Infineon v1.2 TPM (the best average
    /// performer in Figure 3).
    pub fn amd_infineon_ws() -> Self {
        Platform {
            name: "AMD/Infineon workstation".to_owned(),
            vendor: CpuVendor::Amd,
            cpu_ghz: 2.2,
            n_cpus: 2,
            mem_pages: DEFAULT_MEM_PAGES,
            tpm_kind: TpmKind::Infineon,
            lpc_ns_per_byte: LPC_MEASURED_NS_PER_BYTE,
            late_launch: LateLaunchModel::AmdSkinit {
                cpu_init: SimDuration::from_us(3),
            },
            virt: VirtTiming::amd(),
            supports_slaunch: false,
            sepcr_count: 0,
        }
    }

    /// The paper's *recommended* hardware (§5): `SLAUNCH`/`SYIELD`/
    /// `SFREE`/`SKILL`, a per-page × per-CPU access-control table,
    /// preemption timers, and a TPM with `sepcr_count` = 2 × cores
    /// secure-execution PCRs.
    pub fn recommended(n_cpus: u16) -> Self {
        assert!(n_cpus > 0, "a platform needs at least one CPU");
        Platform {
            name: format!("Recommended ({n_cpus}-core)"),
            vendor: CpuVendor::Amd,
            cpu_ghz: 2.2,
            n_cpus,
            mem_pages: DEFAULT_MEM_PAGES,
            tpm_kind: TpmKind::FutureFast,
            lpc_ns_per_byte: LPC_MEASURED_NS_PER_BYTE,
            late_launch: LateLaunchModel::AmdSkinit {
                cpu_init: SimDuration::from_us(3),
            },
            virt: VirtTiming::amd(),
            supports_slaunch: true,
            sepcr_count: n_cpus * 2,
        }
    }

    /// All CPU identifiers on this platform.
    pub fn cpu_ids(&self) -> impl Iterator<Item = CpuId> {
        (0..self.n_cpus).map(CpuId)
    }

    /// Overrides the installed memory size (builder-style).
    pub fn with_mem_pages(mut self, pages: u32) -> Self {
        self.mem_pages = pages;
        self
    }

    /// Overrides the number of sePCRs (builder-style); implies `SLAUNCH`
    /// support when nonzero.
    pub fn with_sepcr_count(mut self, count: u16) -> Self {
        self.sepcr_count = count;
        if count > 0 {
            self.supports_slaunch = true;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_inventory() {
        let dc = Platform::hp_dc5750();
        assert_eq!(dc.vendor, CpuVendor::Amd);
        assert!((dc.cpu_ghz - 2.2).abs() < 1e-9);
        assert_eq!(dc.tpm_kind, TpmKind::Broadcom);

        let tyan = Platform::tyan_n3600r();
        assert_eq!(tyan.tpm_kind, TpmKind::None);
        assert_eq!(tyan.n_cpus, 4);

        let tep = Platform::intel_tep();
        assert_eq!(tep.vendor, CpuVendor::Intel);
        assert!(matches!(
            tep.late_launch,
            LateLaunchModel::IntelSenter { .. }
        ));
    }

    #[test]
    fn baseline_platforms_lack_slaunch() {
        for p in [
            Platform::hp_dc5750(),
            Platform::tyan_n3600r(),
            Platform::intel_tep(),
            Platform::lenovo_t60(),
            Platform::amd_infineon_ws(),
        ] {
            assert!(!p.supports_slaunch, "{}", p.name);
            assert_eq!(p.sepcr_count, 0, "{}", p.name);
        }
    }

    #[test]
    fn recommended_platform_has_proposed_hardware() {
        let p = Platform::recommended(4);
        assert!(p.supports_slaunch);
        assert_eq!(p.sepcr_count, 8);
        assert_eq!(p.cpu_ids().count(), 4);
    }

    #[test]
    fn virt_timing_matches_table2() {
        let amd = VirtTiming::amd();
        assert_eq!(amd.vm_enter, SimDuration::from_ns(558));
        assert_eq!(amd.vm_exit, SimDuration::from_ns(519));
        let intel = VirtTiming::intel();
        assert_eq!(intel.vm_enter, SimDuration::from_ns(446));
        assert_eq!(intel.vm_exit, SimDuration::from_ns(449));
        assert_eq!(VirtTiming::for_vendor(CpuVendor::Amd), amd);
        assert_eq!(VirtTiming::for_vendor(CpuVendor::Intel), intel);
    }

    #[test]
    fn builder_overrides() {
        let p = Platform::hp_dc5750()
            .with_mem_pages(100)
            .with_sepcr_count(3);
        assert_eq!(p.mem_pages, 100);
        assert_eq!(p.sepcr_count, 3);
        assert!(p.supports_slaunch);
    }

    #[test]
    fn tpm_presence() {
        assert!(TpmKind::Broadcom.is_present());
        assert!(!TpmKind::None.is_present());
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn recommended_zero_cpus_panics() {
        let _ = Platform::recommended(0);
    }
}
