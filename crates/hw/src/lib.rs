//! # sea-hw
//!
//! Hardware substrate for the minimal-TCB reproduction of McCune et al.,
//! *"How Low Can You Go?"* (ASPLOS 2008).
//!
//! The paper's minimal TCB is "the CPU, the memory, and the interface
//! between them" (the north bridge / memory controller), plus the TPM for
//! practical reasons (Figure 1). This crate models exactly those
//! components, plus the LPC bus that connects the TPM, with a deterministic
//! *virtual-time* cost model calibrated to the paper's measurements:
//!
//! * [`SimClock`] / [`SimTime`] / [`SimDuration`] — nanosecond-resolution
//!   virtual time. Nothing in the simulator consults wall-clock time.
//! * [`Memory`] — page-granular physical memory.
//! * [`MemoryController`] — both the *baseline* DMA protection (AMD's
//!   Device Exclusion Vector / Intel's Memory Protection Table, §2.2) and
//!   the paper's *proposed* per-page × per-CPU access-control table with
//!   the `ALL → CPUᵢ → NONE` state machine of Figure 5(b).
//! * [`Cpu`] — per-core state including the proposed PAL preemption timer,
//!   with VM-entry/exit microcosts (Table 2).
//! * [`LpcBus`] — the low-pin-count bus (16.67 MB/s peak) whose long wait
//!   cycles dominate `SKINIT` latency (Table 1).
//! * [`Platform`] — presets for every machine the paper measures
//!   (HP dc5750, Tyan n3600R, Intel TEP, Lenovo T60, AMD/Infineon
//!   workstation) and for the paper's *recommended* hardware.
//! * [`Machine`] — the assembled platform with checked memory access paths
//!   for CPUs and DMA devices.
//!
//! # Example
//!
//! ```
//! use sea_hw::{Machine, Platform, CpuId, Requester, PhysAddr};
//!
//! let mut machine = Machine::new(Platform::hp_dc5750());
//! let cpu0 = Requester::Cpu(CpuId(0));
//! machine
//!     .write(cpu0, PhysAddr(0x1000), b"hello")
//!     .expect("unprotected memory is writable by any CPU");
//! let data = machine.read(cpu0, PhysAddr(0x1000), 5).unwrap();
//! assert_eq!(data, b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod cpu;
mod error;
mod event;
mod fault;
mod lpc;
mod machine;
mod memory;
mod net;
pub mod obs;
mod platform;
mod reset;
mod time;
mod trace;
mod types;

pub use controller::{MemoryController, PageAccess};
pub use cpu::{Cpu, CpuExecState};
pub use error::HwError;
pub use event::{Event, EventQueue};
pub use fault::{FaultKind, FaultPlan, RATE_DENOM, TRANSPORT_FAULT_COST};
pub use lpc::LpcBus;
pub use machine::{Device, Machine, MachineBuilder};
pub use memory::Memory;
pub use net::{NetFault, NetPlan, NET_DELAY_SPREAD, NET_DUPLICATE_GAP, NET_REORDER_WINDOW};
pub use obs::{
    check_well_nested, Layer, LayerHistogram, LockStats, NullSink, Obs, ObsSnapshot, RecordingSink,
    Sink, SpanKind, SpanRecord, HISTOGRAM_BUCKETS, PLATFORM_TRACK,
};
pub use platform::{CpuVendor, LateLaunchModel, Platform, TpmKind, VirtTiming};
pub use reset::{ResetPlan, RESET_REBOOT_COST};
pub use time::{CpuClockDomain, SharedClock, SimClock, SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
pub use types::{
    AccessKind, CpuId, CpuMask, DeviceId, PageIndex, PageRange, PhysAddr, Requester, MAX_CPUS,
    PAGE_SIZE,
};
