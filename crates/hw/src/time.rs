//! Virtual time: the simulator's only notion of time.
//!
//! Every latency in the reproduction — `SKINIT` transfer costs, TPM RSA
//! operations, VM entries — is accounted in nanoseconds of *virtual* time
//! advanced on a [`SimClock`]. This makes every experiment deterministic
//! and lets the benchmark harness report the same quantities the paper's
//! tables report without depending on host hardware.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A duration of virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use sea_hw::SimDuration;
///
/// let d = SimDuration::from_ms(177); // the paper's 64 KB SKINIT cost
/// assert_eq!(d.as_ns(), 177_000_000);
/// assert!((d.as_ms_f64() - 177.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from a fractional count of milliseconds (saturating at
    /// zero for negative inputs).
    pub fn from_ms_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Constructs from a fractional count of nanoseconds (saturating at
    /// zero for negative inputs).
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration(ns.max(0.0).round() as u64)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The duration in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2} ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2} µs", self.as_us_f64())
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on underflow; use [`SimDuration::saturating_sub`] otherwise.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// An instant of virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds since simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_ns())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_ns();
    }
}

/// The simulation's monotonic clock.
///
/// # Example
///
/// ```
/// use sea_hw::{SimClock, SimDuration};
///
/// let mut clock = SimClock::new();
/// let start = clock.now();
/// clock.advance(SimDuration::from_us(3));
/// assert_eq!(clock.now().duration_since(start), SimDuration::from_us(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances virtual time by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged. Returns the (possibly unchanged) current time.
    ///
    /// Used by the multi-core scheduler where independent per-CPU
    /// completion times join back into the global timeline.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

/// A thread-safe monotonic virtual clock, shared across worker threads
/// of the concurrent session engine.
///
/// Two operations mirror [`SimClock`]'s: [`SharedClock::advance`]
/// (atomic add — total advancement is the *sum* of all contributions,
/// so it commutes and the final reading is independent of thread
/// interleaving) and [`SharedClock::advance_to`] (atomic max — joins an
/// independent per-CPU timeline back into the global one).
///
/// # Example
///
/// ```
/// use sea_hw::{SharedClock, SimDuration};
/// use std::sync::Arc;
///
/// let clock = Arc::new(SharedClock::new());
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let c = Arc::clone(&clock);
///         std::thread::spawn(move || c.advance(SimDuration::from_us(10)))
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// // Sum-commutativity: 4 × 10 µs regardless of interleaving.
/// assert_eq!(clock.now().as_ns(), 40_000);
/// ```
#[derive(Debug, Default)]
pub struct SharedClock {
    now_ns: AtomicU64,
}

impl SharedClock {
    /// Creates a shared clock at the simulation epoch.
    pub fn new() -> Self {
        SharedClock {
            now_ns: AtomicU64::new(0),
        }
    }

    /// Creates a shared clock already advanced to `t` (e.g. resuming
    /// from a serial [`SimClock`]'s reading).
    pub fn at(t: SimTime) -> Self {
        SharedClock {
            now_ns: AtomicU64::new(t.as_ns()),
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.now_ns.load(Ordering::SeqCst))
    }

    /// Atomically advances virtual time by `d`, returning the instant
    /// *after* the advance.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let prev = self.now_ns.fetch_add(d.as_ns(), Ordering::SeqCst);
        SimTime::from_ns(prev + d.as_ns())
    }

    /// Atomically advances the clock to `t` if `t` is in the future
    /// (atomic max); a reading earlier than the current time is a
    /// no-op. Returns the clock's time after the join.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let prev = self.now_ns.fetch_max(t.as_ns(), Ordering::SeqCst);
        SimTime::from_ns(prev.max(t.as_ns()))
    }
}

/// A per-CPU clock domain over a [`SharedClock`].
///
/// Worker threads accumulate their CPU's busy time *locally* (no atomic
/// traffic per operation) and fold the domain's timeline into the
/// shared clock only at join points, exactly like the serial
/// scheduler's `advance_to` joins. The domain's own reading is
/// `start + local`, so a domain is deterministic given its sequence of
/// [`CpuClockDomain::advance`] calls regardless of what other domains
/// are doing.
#[derive(Debug)]
pub struct CpuClockDomain {
    shared: Arc<SharedClock>,
    start: SimTime,
    local: SimDuration,
}

impl CpuClockDomain {
    /// Opens a domain starting at the shared clock's current instant.
    ///
    /// Note that sibling worker threads must NOT each call this: the
    /// shared clock may already have been advanced by a faster sibling's
    /// publish, skewing this domain's epoch by however far that sibling
    /// got. Batch drivers should read the clock once and open every
    /// domain with [`CpuClockDomain::at`].
    pub fn new(shared: Arc<SharedClock>) -> Self {
        let start = shared.now();
        CpuClockDomain {
            shared,
            start,
            local: SimDuration::ZERO,
        }
    }

    /// Opens a domain anchored at a fixed instant `start` — typically a
    /// batch's start time, read from the shared clock *before* spawning
    /// workers — so sibling domains share an epoch regardless of thread
    /// scheduling.
    pub fn at(shared: Arc<SharedClock>, start: SimTime) -> Self {
        CpuClockDomain {
            shared,
            start,
            local: SimDuration::ZERO,
        }
    }

    /// Advances this domain's local timeline by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.local += d;
    }

    /// The domain's current instant (`start + local busy time`).
    pub fn now(&self) -> SimTime {
        self.start + self.local
    }

    /// Busy time accumulated since the domain was opened.
    pub fn busy(&self) -> SimDuration {
        self.local
    }

    /// Folds this domain's timeline into the shared clock (atomic max)
    /// and returns the shared clock's time after the join.
    pub fn publish(&self) -> SimTime {
        self.shared.advance_to(self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_us(1), SimDuration::from_ns(1_000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_ms(1_000));
        assert_eq!(SimDuration::from_ms_f64(1.5), SimDuration::from_us(1_500));
        assert_eq!(SimDuration::from_ns_f64(2.4), SimDuration::from_ns(2));
        assert_eq!(SimDuration::from_ns_f64(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_ms(2);
        let b = SimDuration::from_ms(3);
        assert_eq!(a + b, SimDuration::from_ms(5));
        assert_eq!(b - a, SimDuration::from_ms(1));
        assert_eq!(a * 4, SimDuration::from_ms(8));
        assert_eq!(b / 3, SimDuration::from_ms(1));
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total, SimDuration::from_ms(7));
    }

    #[test]
    #[should_panic(expected = "SimDuration underflow")]
    fn sub_underflow_panics() {
        let _ = SimDuration::from_ms(1) - SimDuration::from_ms(2);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ns(17).to_string(), "17 ns");
        assert_eq!(SimDuration::from_us(2).to_string(), "2.00 µs");
        assert_eq!(SimDuration::from_ms(15).to_string(), "15.00 ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000 s");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_ms(5));
        let t5 = c.now();
        c.advance_to(SimTime::from_ns(1)); // in the past: no-op
        assert_eq!(c.now(), t5);
        c.advance_to(SimTime::from_ns(10_000_000));
        assert_eq!(c.now(), SimTime::from_ns(10_000_000));
    }

    #[test]
    fn time_duration_roundtrip() {
        let t0 = SimTime::from_ns(100);
        let t1 = t0 + SimDuration::from_ns(50);
        assert_eq!(t1.duration_since(t0), SimDuration::from_ns(50));
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_backwards_panics() {
        let _ = SimTime::from_ns(1).duration_since(SimTime::from_ns(2));
    }

    #[test]
    fn shared_clock_advance_is_sum_commutative() {
        let clock = Arc::new(SharedClock::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&clock);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.advance(SimDuration::from_ns(i + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // sum(1..=8) * 100 — independent of interleaving.
        assert_eq!(clock.now().as_ns(), 3600);
    }

    #[test]
    fn shared_clock_advance_to_is_max() {
        let clock = SharedClock::at(SimTime::from_ns(50));
        assert_eq!(clock.advance_to(SimTime::from_ns(20)).as_ns(), 50);
        assert_eq!(clock.advance_to(SimTime::from_ns(80)).as_ns(), 80);
        assert_eq!(clock.now().as_ns(), 80);
    }

    #[test]
    fn clock_domain_folds_in_at_publish() {
        let shared = Arc::new(SharedClock::at(SimTime::from_ns(100)));
        let mut a = CpuClockDomain::new(Arc::clone(&shared));
        let mut b = CpuClockDomain::new(Arc::clone(&shared));
        a.advance(SimDuration::from_ns(30));
        b.advance(SimDuration::from_ns(70));
        assert_eq!(a.now().as_ns(), 130);
        assert_eq!(a.busy(), SimDuration::from_ns(30));
        // Publishing in either order lands on max(130, 170).
        a.publish();
        assert_eq!(shared.now().as_ns(), 130);
        b.publish();
        assert_eq!(shared.now().as_ns(), 170);
        // Re-publishing the earlier domain is a no-op.
        a.publish();
        assert_eq!(shared.now().as_ns(), 170);
    }

    #[test]
    fn anchored_domain_ignores_sibling_publishes() {
        let shared = Arc::new(SharedClock::at(SimTime::from_ns(100)));
        let epoch = shared.now();
        let mut a = CpuClockDomain::at(Arc::clone(&shared), epoch);
        a.advance(SimDuration::from_ns(40));
        a.publish();
        assert_eq!(shared.now().as_ns(), 140);
        // A sibling opened *after* a's publish still anchors at the
        // batch epoch, not at a's advanced reading — so its final
        // publish is epoch + its own busy time, never skewed by how far
        // a happened to have gotten first.
        let mut b = CpuClockDomain::at(Arc::clone(&shared), epoch);
        b.advance(SimDuration::from_ns(25));
        assert_eq!(b.now().as_ns(), 125);
        b.publish();
        assert_eq!(shared.now().as_ns(), 140);
    }

    #[test]
    fn shared_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedClock>();
        assert_send_sync::<CpuClockDomain>();
        assert_send_sync::<SimClock>();
    }
}
