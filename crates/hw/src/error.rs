//! Hardware-level error type.

use std::error::Error;
use std::fmt;

use crate::types::{CpuId, PageIndex, PhysAddr, Requester};

/// Errors raised by the hardware model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// The memory controller denied a request: the page is protected
    /// against this requester by the access-control table or the DEV.
    AccessDenied {
        /// Who issued the request.
        requester: Requester,
        /// The page that was protected.
        page: PageIndex,
    },
    /// A physical address (or address + length) fell outside installed
    /// memory.
    AddressOutOfRange {
        /// The offending address.
        addr: PhysAddr,
    },
    /// `SLAUNCH`-style protection failed because a page is already in use
    /// by another protected execution (its table entry is not `ALL`).
    PageConflict {
        /// The already-protected page.
        page: PageIndex,
    },
    /// A page-state transition was attempted from the wrong state (e.g.
    /// resuming pages that are not `NONE`, or suspending pages not owned
    /// by the requesting CPU).
    InvalidPageTransition {
        /// The page whose transition was rejected.
        page: PageIndex,
    },
    /// A CPU index does not exist on this platform.
    NoSuchCpu(CpuId),
    /// The requested operation needs a late-launch-capable CPU and this
    /// platform does not provide one (or does not provide `SLAUNCH`).
    UnsupportedOnPlatform {
        /// Human-readable name of the missing capability.
        capability: &'static str,
    },
    /// The CPU is in a state that forbids the requested operation (e.g.
    /// `SLAUNCH` on a CPU already executing a PAL).
    CpuBusy(CpuId),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::AccessDenied { requester, page } => {
                write!(f, "memory controller denied {requester} access to {page}")
            }
            HwError::AddressOutOfRange { addr } => {
                write!(f, "address {addr} is outside installed memory")
            }
            HwError::PageConflict { page } => {
                write!(f, "{page} is already protected for another PAL")
            }
            HwError::InvalidPageTransition { page } => {
                write!(f, "invalid access-table state transition for {page}")
            }
            HwError::NoSuchCpu(c) => write!(f, "no such CPU: {c}"),
            HwError::UnsupportedOnPlatform { capability } => {
                write!(f, "platform does not support {capability}")
            }
            HwError::CpuBusy(c) => write!(f, "{c} is busy with a protected execution"),
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DeviceId;

    #[test]
    fn display_covers_all_variants() {
        let cases = [
            HwError::AccessDenied {
                requester: Requester::Device(DeviceId(0)),
                page: PageIndex(7),
            },
            HwError::AddressOutOfRange {
                addr: PhysAddr(0xffff_ffff),
            },
            HwError::PageConflict { page: PageIndex(1) },
            HwError::InvalidPageTransition { page: PageIndex(2) },
            HwError::NoSuchCpu(CpuId(9)),
            HwError::UnsupportedOnPlatform {
                capability: "SLAUNCH",
            },
            HwError::CpuBusy(CpuId(1)),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
