//! Page-granular physical memory.
//!
//! [`Memory`] stores raw bytes only; *who may touch them* is decided by
//! the [`crate::MemoryController`]. The [`crate::Machine`] composes the
//! two so every read/write is permission-checked, exactly like requests
//! flowing through the north bridge in Figure 1 of the paper.

use crate::error::HwError;
use crate::types::{PageIndex, PhysAddr, PAGE_SIZE};

/// Physical memory as an array of pages.
#[derive(Clone)]
pub struct Memory {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages.len())
            .field("bytes", &(self.pages.len() * PAGE_SIZE))
            .finish()
    }
}

impl Memory {
    /// Allocates `num_pages` zeroed pages.
    pub fn new(num_pages: u32) -> Self {
        Memory {
            pages: (0..num_pages).map(|_| Box::new([0u8; PAGE_SIZE])).collect(),
        }
    }

    /// Number of installed pages.
    pub fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Total installed bytes.
    pub fn byte_len(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE as u64
    }

    fn check_range(&self, addr: PhysAddr, len: usize) -> Result<(), HwError> {
        let end = addr.0.checked_add(len as u64);
        match end {
            Some(end) if end <= self.byte_len() => Ok(()),
            _ => Err(HwError::AddressOutOfRange { addr }),
        }
    }

    /// Reads `len` bytes starting at `addr` (no permission check — use
    /// [`crate::Machine::read`] for the checked path).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::AddressOutOfRange`] if the range exceeds
    /// installed memory.
    pub fn read_raw(&self, addr: PhysAddr, len: usize) -> Result<Vec<u8>, HwError> {
        self.check_range(addr, len)?;
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = &self.pages[cur.page().0 as usize];
            let off = cur.page_offset();
            let take = remaining.min(PAGE_SIZE - off);
            out.extend_from_slice(&page[off..off + take]);
            cur = cur.offset(take as u64);
            remaining -= take;
        }
        Ok(out)
    }

    /// Writes `data` starting at `addr` (no permission check — use
    /// [`crate::Machine::write`] for the checked path).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::AddressOutOfRange`] if the range exceeds
    /// installed memory.
    pub fn write_raw(&mut self, addr: PhysAddr, data: &[u8]) -> Result<(), HwError> {
        self.check_range(addr, data.len())?;
        let mut cur = addr;
        let mut src = data;
        while !src.is_empty() {
            let page = &mut self.pages[cur.page().0 as usize];
            let off = cur.page_offset();
            let take = src.len().min(PAGE_SIZE - off);
            page[off..off + take].copy_from_slice(&src[..take]);
            cur = cur.offset(take as u64);
            src = &src[take..];
        }
        Ok(())
    }

    /// Zeroes an entire page. Used by `SKILL` ("erase all memory pages
    /// associated with the PAL", §5.5) and by PAL application-level state
    /// clears.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::AddressOutOfRange`] for a non-installed page.
    pub fn zero_page(&mut self, page: PageIndex) -> Result<(), HwError> {
        let idx = page.0 as usize;
        if idx >= self.pages.len() {
            return Err(HwError::AddressOutOfRange {
                addr: page.base_addr(),
            });
        }
        self.pages[idx].fill(0);
        Ok(())
    }

    /// Pages touched by the byte range `[addr, addr+len)`.
    pub fn pages_spanned(addr: PhysAddr, len: usize) -> impl Iterator<Item = PageIndex> {
        let first = addr.page().0;
        let last = if len == 0 {
            first
        } else {
            addr.offset(len as u64 - 1).page().0
        };
        (first..=last).map(PageIndex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_within_page() {
        let mut m = Memory::new(4);
        m.write_raw(PhysAddr(100), b"hello").unwrap();
        assert_eq!(m.read_raw(PhysAddr(100), 5).unwrap(), b"hello");
    }

    #[test]
    fn read_write_spanning_pages() {
        let mut m = Memory::new(4);
        let addr = PhysAddr(PAGE_SIZE as u64 - 2);
        m.write_raw(addr, b"abcdef").unwrap();
        assert_eq!(m.read_raw(addr, 6).unwrap(), b"abcdef");
        // The tail landed on page 1.
        assert_eq!(m.read_raw(PhysAddr(PAGE_SIZE as u64), 4).unwrap(), b"cdef");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = Memory::new(1);
        let end = PhysAddr(PAGE_SIZE as u64);
        assert!(matches!(
            m.read_raw(end, 1),
            Err(HwError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            m.write_raw(PhysAddr(PAGE_SIZE as u64 - 1), b"ab"),
            Err(HwError::AddressOutOfRange { .. })
        ));
        // Reading zero bytes at the very end is fine.
        assert_eq!(m.read_raw(end, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overflowing_range_rejected() {
        let m = Memory::new(1);
        assert!(matches!(
            m.read_raw(PhysAddr(u64::MAX), 2),
            Err(HwError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_page_erases() {
        let mut m = Memory::new(2);
        m.write_raw(PhysAddr(PAGE_SIZE as u64 + 10), b"secret")
            .unwrap();
        m.zero_page(PageIndex(1)).unwrap();
        assert_eq!(
            m.read_raw(PhysAddr(PAGE_SIZE as u64 + 10), 6).unwrap(),
            vec![0u8; 6]
        );
        assert!(m.zero_page(PageIndex(2)).is_err());
    }

    #[test]
    fn pages_spanned_math() {
        let pages: Vec<u32> = Memory::pages_spanned(PhysAddr(0), PAGE_SIZE + 1)
            .map(|p| p.0)
            .collect();
        assert_eq!(pages, vec![0, 1]);
        let pages: Vec<u32> = Memory::pages_spanned(PhysAddr(10), 0)
            .map(|p| p.0)
            .collect();
        assert_eq!(pages, vec![0]);
        let pages: Vec<u32> = Memory::pages_spanned(PhysAddr(PAGE_SIZE as u64 - 1), 2)
            .map(|p| p.0)
            .collect();
        assert_eq!(pages, vec![0, 1]);
    }
}
