//! Hardware event tracing.
//!
//! The experiments and security tests want to *observe* what the
//! hardware did — which accesses the memory controller denied, when
//! protections changed, when late launches ran — without printf
//! archaeology. [`Trace`] is a bounded, virtual-time-stamped event log
//! the [`crate::Machine`] records into; tests assert on event sequences
//! and the bench harness can dump them for debugging.

use std::collections::VecDeque;
use std::fmt;

use crate::fault::FaultKind;
use crate::types::{CpuId, DeviceId, PageRange, PhysAddr, Requester};
use crate::SimTime;

/// A hardware event worth recording.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// The memory controller denied an access.
    AccessDenied {
        /// Who was denied.
        requester: Requester,
        /// The address the request targeted.
        addr: PhysAddr,
    },
    /// A page range was protected for a CPU (`SLAUNCH` launch path).
    RangeProtected {
        /// The protected range.
        range: PageRange,
        /// The owning CPU.
        cpu: CpuId,
    },
    /// A page range was suspended to `NONE`.
    RangeSuspended {
        /// The suspended range.
        range: PageRange,
    },
    /// A page range was returned to `ALL`.
    RangeReleased {
        /// The released range.
        range: PageRange,
    },
    /// DEV/MPT DMA protection toggled over a range.
    DevChanged {
        /// The affected range.
        range: PageRange,
        /// New blocked state.
        blocked: bool,
    },
    /// A CPU entered secure execution.
    SecureEnter {
        /// The CPU.
        cpu: CpuId,
        /// Base of the protected region it executes.
        region: PhysAddr,
    },
    /// A CPU left secure execution.
    SecureLeave {
        /// The CPU.
        cpu: CpuId,
    },
    /// A device performed DMA (successfully).
    DmaAccess {
        /// The device.
        device: DeviceId,
        /// The address accessed.
        addr: PhysAddr,
    },
    /// A [`FaultKind`] was injected into a session by a fault plan.
    FaultInjected {
        /// What was injected.
        kind: FaultKind,
        /// The session key the injection was rolled against.
        session: u64,
    },
    /// The recovery layer retried a session operation after a
    /// transient fault.
    SessionRetried {
        /// The session key.
        session: u64,
        /// Which attempt this retry is (1-based).
        attempt: u32,
    },
    /// The recovery layer gave up on a session and tore it down via
    /// `SKILL`, reclaiming its sePCR and pages.
    SessionKilled {
        /// The session key.
        session: u64,
    },
    /// A hardware mechanism blocked an adversary action.
    AttackBlocked {
        /// The mechanism that stopped it (e.g. "access-control table").
        mechanism: String,
    },
    /// An injected preemption-timer expiry forced a session off its CPU
    /// (the session resumes on its next turn; no retry is consumed).
    SessionPreempted {
        /// The session key.
        session: u64,
    },
    /// The platform lost power and reset: CPUs, the access-control
    /// table, and all in-flight sessions vanished; NVRAM-resident TPM
    /// state survived.
    PlatformReset,
    /// A torn session was relaunched from the journal after a platform
    /// reset.
    SessionRelaunched {
        /// The session key.
        session: u64,
    },
    /// Free-form annotation from higher layers.
    Note(String),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::AccessDenied { requester, addr } => {
                write!(f, "DENY {requester} @ {addr}")
            }
            TraceEvent::RangeProtected { range, cpu } => {
                write!(f, "PROTECT {range} -> {cpu}")
            }
            TraceEvent::RangeSuspended { range } => write!(f, "SUSPEND {range}"),
            TraceEvent::RangeReleased { range } => write!(f, "RELEASE {range}"),
            TraceEvent::DevChanged { range, blocked } => {
                write!(f, "DEV {range} blocked={blocked}")
            }
            TraceEvent::SecureEnter { cpu, region } => {
                write!(f, "SECURE-ENTER {cpu} @ {region}")
            }
            TraceEvent::SecureLeave { cpu } => write!(f, "SECURE-LEAVE {cpu}"),
            TraceEvent::DmaAccess { device, addr } => {
                write!(f, "DMA {device} @ {addr}")
            }
            TraceEvent::FaultInjected { kind, session } => {
                write!(f, "FAULT {kind} session={session}")
            }
            TraceEvent::SessionRetried { session, attempt } => {
                write!(f, "RETRY session={session} attempt={attempt}")
            }
            TraceEvent::SessionKilled { session } => write!(f, "SKILL session={session}"),
            TraceEvent::AttackBlocked { mechanism } => write!(f, "BLOCKED by {mechanism}"),
            TraceEvent::SessionPreempted { session } => {
                write!(f, "PREEMPT session={session}")
            }
            TraceEvent::PlatformReset => write!(f, "RESET platform"),
            TraceEvent::SessionRelaunched { session } => {
                write!(f, "RELAUNCH session={session}")
            }
            TraceEvent::Note(s) => write!(f, "NOTE {s}"),
        }
    }
}

/// Default capacity of the bounded event buffer.
const DEFAULT_CAPACITY: usize = 4096;

/// A bounded, timestamped hardware event log.
///
/// # Example
///
/// ```
/// use sea_hw::{SimTime, Trace, TraceEvent};
///
/// let mut trace = Trace::new();
/// trace.record(SimTime::ZERO, TraceEvent::Note("boot".into()));
/// assert_eq!(trace.len(), 1);
/// assert!(trace.iter().any(|(_, e)| matches!(e, TraceEvent::Note(_))));
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
    recorded: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Creates an enabled trace with the default capacity.
    pub fn new() -> Self {
        Trace::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an enabled trace holding at most `capacity` events; older
    /// events are dropped (and counted) once full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enabled: true,
            dropped: 0,
            recorded: 0,
        }
    }

    /// Enables or disables recording (disabled recording is free).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at virtual time `at`.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
        self.recorded += 1;
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded. This is the monotone counter reset
    /// plans cut against: it never rewinds, even when the bounded
    /// buffer evicts or [`Trace::clear`] runs.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Iterates over retained events in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events.iter()
    }

    /// Retained events matching `pred`, in order.
    pub fn filtered<'a>(
        &'a self,
        pred: impl Fn(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (SimTime, TraceEvent)> {
        self.events.iter().filter(move |(_, e)| pred(e))
    }

    /// Clears all retained events (the drop counter persists).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.events {
            writeln!(f, "[{t}] {e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "({} earlier events dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageIndex;

    fn note(s: &str) -> TraceEvent {
        TraceEvent::Note(s.to_owned())
    }

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.record(SimTime::from_ns(1), note("a"));
        t.record(SimTime::from_ns(2), note("b"));
        let seq: Vec<&TraceEvent> = t.iter().map(|(_, e)| e).collect();
        assert_eq!(seq, vec![&note("a"), &note("b")]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn bounded_with_drop_accounting() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(SimTime::from_ns(i), note(&i.to_string()));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // Oldest survivors are the last two.
        let kept: Vec<String> = t.iter().map(|(_, e)| e.to_string()).collect();
        assert_eq!(kept, vec!["NOTE 3", "NOTE 4"]);
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let mut t = Trace::new();
        t.set_enabled(false);
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, note("ignored"));
        assert!(t.is_empty());
    }

    #[test]
    fn filtering_and_display() {
        let mut t = Trace::new();
        t.record(
            SimTime::ZERO,
            TraceEvent::RangeProtected {
                range: PageRange::new(PageIndex(4), 2),
                cpu: CpuId(1),
            },
        );
        t.record(SimTime::from_ns(5), note("x"));
        let protects: Vec<_> = t
            .filtered(|e| matches!(e, TraceEvent::RangeProtected { .. }))
            .collect();
        assert_eq!(protects.len(), 1);
        let rendered = t.to_string();
        assert!(rendered.contains("PROTECT pages[4..6) -> cpu1"));
        assert!(rendered.contains("NOTE x"));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn event_display_covers_variants() {
        let events = [
            TraceEvent::AccessDenied {
                requester: Requester::Device(DeviceId(0)),
                addr: PhysAddr(0x1000),
            },
            TraceEvent::RangeSuspended {
                range: PageRange::new(PageIndex(1), 1),
            },
            TraceEvent::RangeReleased {
                range: PageRange::new(PageIndex(1), 1),
            },
            TraceEvent::DevChanged {
                range: PageRange::new(PageIndex(1), 1),
                blocked: true,
            },
            TraceEvent::SecureEnter {
                cpu: CpuId(0),
                region: PhysAddr(0),
            },
            TraceEvent::SecureLeave { cpu: CpuId(0) },
            TraceEvent::DmaAccess {
                device: DeviceId(2),
                addr: PhysAddr(8),
            },
            TraceEvent::FaultInjected {
                kind: FaultKind::MemDenial,
                session: 3,
            },
            TraceEvent::SessionRetried {
                session: 3,
                attempt: 1,
            },
            TraceEvent::SessionKilled { session: 3 },
            TraceEvent::AttackBlocked {
                mechanism: "access-control table".into(),
            },
            TraceEvent::SessionPreempted { session: 3 },
            TraceEvent::PlatformReset,
            TraceEvent::SessionRelaunched { session: 3 },
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn reset_events_render() {
        assert_eq!(TraceEvent::PlatformReset.to_string(), "RESET platform");
        assert_eq!(
            TraceEvent::SessionRelaunched { session: 7 }.to_string(),
            "RELAUNCH session=7"
        );
        assert_eq!(
            TraceEvent::SessionPreempted { session: 2 }.to_string(),
            "PREEMPT session=2"
        );
    }

    #[test]
    fn recorded_counter_is_monotone() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(SimTime::from_ns(i), note(&i.to_string()));
        }
        assert_eq!(t.recorded(), 5);
        t.clear();
        assert_eq!(t.recorded(), 5, "clear() must not rewind the counter");
        t.record(SimTime::from_ns(9), note("post"));
        assert_eq!(t.recorded(), 6);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Trace::with_capacity(0);
    }
}
