//! The Low Pin Count (LPC) bus connecting the TPM to the south bridge.
//!
//! Table 1 of the paper shows that `SKINIT` latency is dominated by
//! pushing the PAL across this bus to the TPM: the bus peaks at
//! 16.67 MB/s, and the TPM may additionally stretch every
//! `TPM_HASH_DATA` transfer (1–4 bytes each) to the *long wait cycle*
//! of the LPC control-flow mechanism. The paper measures ≈8.82 ms for a
//! 64 KB transfer with no TPM attached (≈134.6 ns/B — close to but below
//! peak bandwidth) and ≈177.52 ms with the Broadcom TPM attached
//! (≈2.71 µs/B) — a ~20× slowdown caused entirely by TPM wait states.

use crate::time::SimDuration;

/// Theoretical peak LPC bandwidth (bytes per second), from the Intel LPC
/// interface specification cited by the paper (reference \[9\]).
pub const LPC_PEAK_BYTES_PER_SEC: u64 = 16_670_000;

/// A model of the LPC bus with a fixed effective per-byte cost.
///
/// # Example
///
/// ```
/// use sea_hw::LpcBus;
///
/// // The Tyan n3600R's measured effective rate (no TPM wait states).
/// let bus = LpcBus::new(134.6);
/// let t = bus.transfer_time(64 * 1024);
/// assert!((t.as_ms_f64() - 8.82).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpcBus {
    ns_per_byte: f64,
}

impl LpcBus {
    /// Creates a bus with the given effective transfer cost in
    /// nanoseconds per byte.
    ///
    /// # Panics
    ///
    /// Panics if `ns_per_byte` is not finite and positive.
    pub fn new(ns_per_byte: f64) -> Self {
        assert!(
            ns_per_byte.is_finite() && ns_per_byte > 0.0,
            "ns_per_byte must be positive and finite"
        );
        LpcBus { ns_per_byte }
    }

    /// A bus running at the theoretical 16.67 MB/s peak (~60 ns/B).
    pub fn at_peak_bandwidth() -> Self {
        LpcBus::new(1e9 / LPC_PEAK_BYTES_PER_SEC as f64)
    }

    /// Effective cost in nanoseconds per byte.
    pub fn ns_per_byte(&self) -> f64 {
        self.ns_per_byte
    }

    /// Time to move `bytes` bytes across the bus.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_ns_f64(bytes as f64 * self.ns_per_byte)
    }

    /// A bus `factor`× faster than this one (used by the §5.7 "just speed
    /// up the TPM and bus" ablation).
    pub fn sped_up(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "speed-up factor must be positive");
        LpcBus::new(self.ns_per_byte / factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidth_matches_paper_prediction() {
        // "the fastest possible transfer of 64 KB is 3.8 ms"
        let t = LpcBus::at_peak_bandwidth().transfer_time(64 * 1024);
        assert!((t.as_ms_f64() - 3.93).abs() < 0.15, "got {}", t);
    }

    #[test]
    fn transfer_scales_linearly() {
        let bus = LpcBus::new(100.0);
        assert_eq!(bus.transfer_time(0), SimDuration::ZERO);
        assert_eq!(
            bus.transfer_time(2000).as_ns(),
            2 * bus.transfer_time(1000).as_ns()
        );
    }

    #[test]
    fn sped_up_divides_cost() {
        let bus = LpcBus::new(100.0);
        let fast = bus.sped_up(10.0);
        assert!((fast.ns_per_byte() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        let _ = LpcBus::new(0.0);
    }
}
