//! Fundamental newtypes shared across the hardware model.

use std::fmt;

/// Size of a physical memory page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a CPU core.
///
/// The paper's proposed access-control table is indexed by physical page
/// and CPU; memory requests carry the originating CPU's identity ("agent
/// ID" in Intel front-side-bus terms, §5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u16);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Highest representable CPU id plus one — the [`CpuMask`] width.
pub const MAX_CPUS: u16 = 1024;

const MASK_WORDS: usize = (MAX_CPUS as usize) / 64;

/// A set of CPU cores, represented as a bitmask (up to [`MAX_CPUS`]
/// cores, so discrete-event platforms can model fleets far past
/// physical core counts).
///
/// The proposed access-control table binds pages to the CPU executing a
/// PAL (§5.2); the §6 *Multicore PALs* extension adds a `join` operation
/// that admits further CPUs, so a table entry is a set, not a single id.
///
/// # Example
///
/// ```
/// use sea_hw::{CpuId, CpuMask};
///
/// let mut mask = CpuMask::single(CpuId(0));
/// assert!(mask.contains(CpuId(0)));
/// assert!(!mask.contains(CpuId(1)));
/// mask.insert(CpuId(1));
/// mask.insert(CpuId(512));
/// assert_eq!(mask.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CpuMask([u64; MASK_WORDS]);

impl CpuMask {
    /// The empty set.
    pub const EMPTY: CpuMask = CpuMask([0; MASK_WORDS]);

    /// A set containing exactly `cpu`.
    ///
    /// # Panics
    ///
    /// Panics for CPU ids ≥ [`MAX_CPUS`] (the mask width).
    pub fn single(cpu: CpuId) -> Self {
        let mut m = CpuMask::EMPTY;
        m.insert(cpu);
        m
    }

    /// Whether `cpu` is in the set.
    pub fn contains(self, cpu: CpuId) -> bool {
        cpu.0 < MAX_CPUS && self.0[cpu.0 as usize / 64] & (1u64 << (cpu.0 % 64)) != 0
    }

    /// Adds `cpu` to the set.
    ///
    /// # Panics
    ///
    /// Panics for CPU ids ≥ [`MAX_CPUS`].
    pub fn insert(&mut self, cpu: CpuId) {
        assert!(
            cpu.0 < MAX_CPUS,
            "CpuMask supports CPU ids below {MAX_CPUS}"
        );
        self.0[cpu.0 as usize / 64] |= 1u64 << (cpu.0 % 64);
    }

    /// Removes `cpu` from the set.
    pub fn remove(&mut self, cpu: CpuId) {
        if cpu.0 < MAX_CPUS {
            self.0[cpu.0 as usize / 64] &= !(1u64 << (cpu.0 % 64));
        }
    }

    /// Number of CPUs in the set.
    pub fn len(self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == [0; MASK_WORDS]
    }

    /// Iterates over the member CPU ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = CpuId> {
        (0..MAX_CPUS)
            .filter(move |&i| self.0[i as usize / 64] & (1u64 << (i % 64)) != 0)
            .map(CpuId)
    }
}

impl fmt::Display for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for cpu in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{cpu}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl From<CpuId> for CpuMask {
    fn from(cpu: CpuId) -> Self {
        CpuMask::single(cpu)
    }
}

/// Identifier of a DMA-capable peripheral device (e.g. a PCI NIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Index of a physical memory page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageIndex(pub u32);

impl PageIndex {
    /// The physical address of the first byte of this page.
    pub fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 as u64 * PAGE_SIZE as u64)
    }
}

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

/// A physical memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The page containing this address.
    pub fn page(self) -> PageIndex {
        PageIndex((self.0 / PAGE_SIZE as u64) as u32)
    }

    /// Byte offset within the containing page.
    pub fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// The address `bytes` bytes past this one.
    pub fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A contiguous, inclusive-exclusive range of physical pages.
///
/// The paper requires a PAL and its SECB to be contiguous in memory "to
/// facilitate memory isolation mechanisms" (§5.1.1); this type is the
/// allocation unit the OS hands to a PAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page in the range.
    pub start: PageIndex,
    /// Number of pages.
    pub count: u32,
}

impl PageRange {
    /// Creates a range of `count` pages starting at `start`.
    pub fn new(start: PageIndex, count: u32) -> Self {
        PageRange { start, count }
    }

    /// Iterates over the pages in the range.
    pub fn iter(&self) -> impl Iterator<Item = PageIndex> + '_ {
        (self.start.0..self.start.0 + self.count).map(PageIndex)
    }

    /// Total size of the range in bytes.
    pub fn byte_len(&self) -> usize {
        self.count as usize * PAGE_SIZE
    }

    /// Physical address of the first byte.
    pub fn base_addr(&self) -> PhysAddr {
        self.start.base_addr()
    }

    /// Whether `page` falls inside this range.
    pub fn contains(&self, page: PageIndex) -> bool {
        page.0 >= self.start.0 && page.0 < self.start.0 + self.count
    }

    /// Whether the two ranges share any page.
    pub fn overlaps(&self, other: &PageRange) -> bool {
        self.start.0 < other.start.0 + other.count && other.start.0 < self.start.0 + self.count
    }
}

impl fmt::Display for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pages[{}..{})", self.start.0, self.start.0 + self.count)
    }
}

/// The originator of a memory request, as seen by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requester {
    /// A CPU core (front-side-bus agent).
    Cpu(CpuId),
    /// A DMA-capable device behind the south bridge / PCI bus.
    Device(DeviceId),
}

impl fmt::Display for Requester {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Requester::Cpu(c) => write!(f, "{c}"),
            Requester::Device(d) => write!(f, "{d}"),
        }
    }
}

/// Whether a memory request reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_math() {
        let a = PhysAddr(0x3_0010);
        assert_eq!(a.page(), PageIndex(0x30));
        assert_eq!(a.page_offset(), 0x10);
        assert_eq!(PageIndex(0x30).base_addr(), PhysAddr(0x3_0000));
        assert_eq!(a.offset(0x10), PhysAddr(0x3_0020));
    }

    #[test]
    fn page_range_iteration_and_contains() {
        let r = PageRange::new(PageIndex(4), 3);
        let pages: Vec<u32> = r.iter().map(|p| p.0).collect();
        assert_eq!(pages, vec![4, 5, 6]);
        assert!(r.contains(PageIndex(4)));
        assert!(r.contains(PageIndex(6)));
        assert!(!r.contains(PageIndex(7)));
        assert!(!r.contains(PageIndex(3)));
        assert_eq!(r.byte_len(), 3 * PAGE_SIZE);
    }

    #[test]
    fn page_range_overlap() {
        let a = PageRange::new(PageIndex(0), 4);
        let b = PageRange::new(PageIndex(3), 2);
        let c = PageRange::new(PageIndex(4), 2);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn cpu_mask_set_operations() {
        let mut m = CpuMask::EMPTY;
        assert!(m.is_empty());
        m.insert(CpuId(0));
        m.insert(CpuId(5));
        assert_eq!(m.len(), 2);
        assert!(m.contains(CpuId(0)));
        assert!(m.contains(CpuId(5)));
        assert!(!m.contains(CpuId(1)));
        assert!(!m.contains(CpuId(64)));
        assert!(!m.contains(CpuId(MAX_CPUS)));
        m.insert(CpuId(999));
        assert!(m.contains(CpuId(999)));
        m.remove(CpuId(999));
        m.remove(CpuId(0));
        assert!(!m.contains(CpuId(0)));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![CpuId(5)]);
        assert_eq!(CpuMask::single(CpuId(3)), CpuMask::from(CpuId(3)));
        assert_eq!(CpuMask::single(CpuId(3)).to_string(), "{cpu3}");
    }

    #[test]
    #[should_panic(expected = "below 1024")]
    fn cpu_mask_rejects_wide_ids() {
        let mut m = CpuMask::EMPTY;
        m.insert(CpuId(MAX_CPUS));
    }

    #[test]
    fn display_formats() {
        assert_eq!(CpuId(2).to_string(), "cpu2");
        assert_eq!(DeviceId(1).to_string(), "dev1");
        assert_eq!(PhysAddr(0x1000).to_string(), "0x1000");
        assert_eq!(PageRange::new(PageIndex(1), 2).to_string(), "pages[1..3)");
        assert_eq!(Requester::Cpu(CpuId(0)).to_string(), "cpu0");
        assert_eq!(Requester::Device(DeviceId(3)).to_string(), "dev3");
    }
}
