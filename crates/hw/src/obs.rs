//! The structured observability layer: virtual-time spans, counters,
//! and fixed-bucket histograms shared by every crate in the workspace.
//!
//! The paper's whole contribution is a *measurement* argument — Tables
//! 1–2 and Figures 2–3 stand or fall on careful latency accounting — so
//! every layer of this reproduction emits into one instrumentation
//! pipeline instead of keeping private tallies. The design follows the
//! SoK observation that TEE designs are only comparable through
//! uniform, layer-attributed cost breakdowns:
//!
//! * **Leaf spans** are emitted at the exact call sites where virtual
//!   time is charged to the machine clock (see `Machine::charge` in
//!   this crate, and the engine layers above). A leaf span advances its
//!   *track cursor* by the charged [`SimDuration`] and feeds the
//!   per-layer histograms, so "sum of leaf spans" and "total charged
//!   time" agree *by construction*.
//! * **Interior spans** (session lifecycle frames such as
//!   `session.step`) open at the current cursor and close at the cursor
//!   reached after their children — they group leaves without adding
//!   time, which makes the span tree well-nested by construction.
//! * **Tracks** keep concurrent emitters deterministic: each session is
//!   charged on the track of its stable session *key*, and platform-wide
//!   work (resets, journal checkpoints) lands on [`PLATFORM_TRACK`].
//!   Span offsets are *track-relative*, never absolute machine time, so
//!   a 4-worker batch records byte-identical tracks to a 1-worker run
//!   even though the shared clock interleaves differently.
//!
//! Everything is integer nanoseconds; no floats, no wall-clock reads,
//! no allocation on the null path. Sinks are `Send + Sync`, so
//! `SessionEngine` workers emit through the same handle they already
//! serialize on (the engine lock).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::time::SimDuration;

/// Track used for platform-scoped charges that belong to no single
/// session: power-loss reboots, journal checkpoints, recovery unseals.
pub const PLATFORM_TRACK: u64 = u64::MAX;

/// Number of logarithmic histogram buckets. Bucket `i` counts leaf
/// durations `d` with `i == bit_length(d.as_ns())` (bucket 0 holds
/// zero-length charges); the last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The layer a span or histogram sample is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Hardware substrate: CPU init, VM entry/exit, LPC transfers,
    /// interrupt routing, platform resets.
    Hw,
    /// TPM commands: seals, unseals, quotes, measurements, transport
    /// faults.
    Tpm,
    /// Session engine: PAL work, recovery backoff.
    Core,
    /// Scheduler/OS bookkeeping.
    Os,
}

impl Layer {
    /// Every layer, in canonical (serialization) order.
    pub const ALL: [Layer; 4] = [Layer::Hw, Layer::Tpm, Layer::Core, Layer::Os];

    /// Stable lower-case name used in artifacts and `BENCH_suite.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Hw => "hw",
            Layer::Tpm => "tpm",
            Layer::Core => "core",
            Layer::Os => "os",
        }
    }

    fn index(self) -> usize {
        match self {
            Layer::Hw => 0,
            Layer::Tpm => 1,
            Layer::Core => 2,
            Layer::Os => 3,
        }
    }
}

/// Whether a span carries charged time (leaf) or only groups children
/// (interior lifecycle frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Emitted by a charge site; advances the track cursor by
    /// `end - start` and feeds the layer histogram.
    Leaf,
    /// A lifecycle frame opened/closed around child spans; adds no time
    /// of its own.
    Interior,
}

/// One recorded span. `start`/`end` are offsets on the span's track
/// (cursor positions), not absolute machine time — that is what keeps
/// multi-worker runs byte-identical to serial ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The track (session key, or [`PLATFORM_TRACK`]) charged.
    pub track: u64,
    /// Emission order within the track (pre-order over the span tree).
    pub seq: u64,
    /// Nesting depth at emission (0 = top level).
    pub depth: u16,
    /// Layer attribution.
    pub layer: Layer,
    /// Operation name (`"tpm.seal"`, `"session.step"`, ...).
    pub op: &'static str,
    /// Track-relative start offset.
    pub start: SimDuration,
    /// Track-relative end offset.
    pub end: SimDuration,
    /// Leaf or interior.
    pub kind: SpanKind,
}

impl SpanRecord {
    /// The span's extent (`end - start`).
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_ns(self.end.as_ns() - self.start.as_ns())
    }
}

/// Deterministic fixed-bucket histogram of one layer's leaf durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerHistogram {
    /// Number of leaf spans recorded.
    pub count: u64,
    /// Sum of all recorded leaf durations.
    pub total: SimDuration,
    /// Log₂ buckets: bucket `i` counts durations whose nanosecond value
    /// has bit-length `i` (0 ⇒ zero-length), saturating at the top.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LayerHistogram {
    fn default() -> Self {
        LayerHistogram {
            count: 0,
            total: SimDuration::ZERO,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl LayerHistogram {
    /// The bucket index a duration falls into.
    pub fn bucket_of(d: SimDuration) -> usize {
        let bits = (u64::BITS - d.as_ns().leading_zeros()) as usize;
        bits.min(HISTOGRAM_BUCKETS - 1)
    }

    fn record(&mut self, d: SimDuration) {
        self.count += 1;
        self.total += d;
        self.buckets[Self::bucket_of(d)] += 1;
    }
}

/// Accumulated contention statistics for one lock (or gate) class.
///
/// Lock events ride a side channel next to the span stream: they attribute
/// *waiting* (virtual time queued behind another holder) separately from
/// *holding* (virtual time the resource was occupied doing charged work).
/// They deliberately do not appear in [`ObsSnapshot`] — hold times are
/// already charged to layers through the ordinary leaf stream, so folding
/// them into `layers` would double-count; read them through
/// [`RecordingSink::lock_stats`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockStats {
    /// The layer this lock class belongs to (e.g. the TPM command gate
    /// charges to [`Layer::Tpm`]).
    pub layer: Layer,
    /// Number of acquisitions recorded.
    pub acquisitions: u64,
    /// Total virtual time spent queued before the grant.
    pub wait: SimDuration,
    /// Total virtual time the resource stayed occupied after the grant.
    pub hold: SimDuration,
    /// Log₂ histogram of individual wait durations (same bucketing as
    /// [`LayerHistogram`]).
    pub wait_hist: LayerHistogram,
}

impl LockStats {
    fn new(layer: Layer) -> Self {
        LockStats {
            layer,
            acquisitions: 0,
            wait: SimDuration::ZERO,
            hold: SimDuration::ZERO,
            wait_hist: LayerHistogram::default(),
        }
    }
}

/// A point-in-time copy of everything a recording sink has gathered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSnapshot {
    /// All spans, ordered by `(track, seq)`.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters, ordered by name.
    pub counters: Vec<(String, u64)>,
    /// Per-layer leaf histograms, indexed by `Layer::index` order
    /// (i.e. [`Layer::ALL`]).
    pub layers: [LayerHistogram; 4],
}

impl ObsSnapshot {
    /// Total charged time attributed to `layer`.
    pub fn layer_total(&self, layer: Layer) -> SimDuration {
        self.layers[layer.index()].total
    }

    /// Total charged time across every layer — the snapshot's notion of
    /// "total virtual time observed".
    pub fn total(&self) -> SimDuration {
        Layer::ALL.iter().map(|&l| self.layer_total(l)).sum()
    }

    /// The value of a counter, `0` if never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Leaf spans only (the ones that carried charged time).
    pub fn leaves(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.kind == SpanKind::Leaf)
    }
}

/// Where spans, counters, and histogram samples go. Implementations
/// must be cheap when disabled and safe to share across threads.
pub trait Sink: Send + Sync {
    /// Whether this sink records anything (lets hot paths skip work).
    fn enabled(&self) -> bool;
    /// Selects the track subsequent ambient emissions charge to.
    fn set_track(&self, track: u64);
    /// Opens an interior span on the current track.
    fn open(&self, layer: Layer, op: &'static str);
    /// Closes the innermost open interior span on the current track.
    fn close(&self);
    /// Records a leaf span of `d` on the current track.
    fn leaf(&self, layer: Layer, op: &'static str, d: SimDuration);
    /// Records a leaf span of `d` on an explicit track, leaving the
    /// current track untouched (used for [`PLATFORM_TRACK`] charges).
    fn leaf_on(&self, track: u64, layer: Layer, op: &'static str, d: SimDuration);
    /// Bumps a named counter.
    fn add(&self, counter: &'static str, n: u64);
    /// Records one acquisition of lock class `class`: `wait` virtual time
    /// queued before the grant, `hold` virtual time occupied after it.
    /// Defaults to dropping the event so span-only sinks need no change.
    fn lock_event(&self, class: &'static str, layer: Layer, wait: SimDuration, hold: SimDuration) {
        let _ = (class, layer, wait, hold);
    }
}

/// A sink that drops everything (the default wiring).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn set_track(&self, _track: u64) {}
    fn open(&self, _layer: Layer, _op: &'static str) {}
    fn close(&self) {}
    fn leaf(&self, _layer: Layer, _op: &'static str, _d: SimDuration) {}
    fn leaf_on(&self, _track: u64, _layer: Layer, _op: &'static str, _d: SimDuration) {}
    fn add(&self, _counter: &'static str, _n: u64) {}
}

/// Per-track recording state: the cursor, the open-frame stack, and the
/// spans emitted so far.
#[derive(Debug, Default)]
struct TrackState {
    cursor: SimDuration,
    seq: u64,
    /// Indices into `spans` of the currently-open interior frames.
    open: Vec<usize>,
    spans: Vec<SpanRecord>,
}

impl TrackState {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

#[derive(Debug, Default)]
struct RecordingInner {
    current: u64,
    tracks: BTreeMap<u64, TrackState>,
    counters: BTreeMap<&'static str, u64>,
    layers: [LayerHistogram; 4],
    locks: BTreeMap<&'static str, LockStats>,
}

impl RecordingInner {
    fn leaf_on_track(&mut self, track: u64, layer: Layer, op: &'static str, d: SimDuration) {
        self.layers[layer.index()].record(d);
        let t = self.tracks.entry(track).or_default();
        let seq = t.next_seq();
        let start = t.cursor;
        let end = start + d;
        t.cursor = end;
        let depth = t.open.len() as u16;
        t.spans.push(SpanRecord {
            track,
            seq,
            depth,
            layer,
            op,
            start,
            end,
            kind: SpanKind::Leaf,
        });
    }
}

/// The recording sink: deterministic, integer-only, lock-per-emission.
///
/// Emission order within one track is the program order of that
/// session's operations (each engine operation runs under the engine
/// lock), so per-track contents are independent of worker interleaving.
#[derive(Debug, Default)]
pub struct RecordingSink {
    inner: Mutex<RecordingInner>,
}

impl RecordingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Copies out everything recorded so far, spans ordered by
    /// `(track, seq)`. Open interior frames are closed at the current
    /// cursor in the copy (the live state is unaffected).
    pub fn snapshot(&self) -> ObsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans = Vec::new();
        for t in inner.tracks.values() {
            let mut track_spans = t.spans.clone();
            for &i in &t.open {
                track_spans[i].end = t.cursor;
            }
            spans.extend(track_spans);
        }
        ObsSnapshot {
            spans,
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            layers: inner.layers.clone(),
        }
    }

    /// Copies out the per-class lock statistics, ordered by class name.
    ///
    /// Kept out of [`ObsSnapshot`] on purpose: hold time is already
    /// attributed through the leaf stream, so these are a parallel view
    /// for contention analysis, not part of the charged-time identity the
    /// snapshot equality tests pin.
    pub fn lock_stats(&self) -> Vec<(String, LockStats)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .locks
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect()
    }
}

impl Sink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn set_track(&self, track: u64) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).current = track;
    }

    fn open(&self, layer: Layer, op: &'static str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let track = inner.current;
        let t = inner.tracks.entry(track).or_default();
        let seq = t.next_seq();
        let start = t.cursor;
        let depth = t.open.len() as u16;
        let index = t.spans.len();
        t.spans.push(SpanRecord {
            track,
            seq,
            depth,
            layer,
            op,
            start,
            end: start,
            kind: SpanKind::Interior,
        });
        t.open.push(index);
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let track = inner.current;
        let Some(t) = inner.tracks.get_mut(&track) else {
            return;
        };
        if let Some(index) = t.open.pop() {
            t.spans[index].end = t.cursor;
        }
    }

    fn leaf(&self, layer: Layer, op: &'static str, d: SimDuration) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let track = inner.current;
        inner.leaf_on_track(track, layer, op, d);
    }

    fn leaf_on(&self, track: u64, layer: Layer, op: &'static str, d: SimDuration) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.leaf_on_track(track, layer, op, d);
    }

    fn add(&self, counter: &'static str, n: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner.counters.entry(counter).or_insert(0) += n;
    }

    fn lock_event(&self, class: &'static str, layer: Layer, wait: SimDuration, hold: SimDuration) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let stats = inner
            .locks
            .entry(class)
            .or_insert_with(|| LockStats::new(layer));
        stats.acquisitions += 1;
        stats.wait += wait;
        stats.hold += hold;
        stats.wait_hist.record(wait);
    }
}

/// A cheap, cloneable handle to a [`Sink`], embedded in [`crate::Machine`]
/// and the TPM. Defaults to the null sink.
#[derive(Clone)]
pub struct Obs(Arc<dyn Sink>);

impl Default for Obs {
    fn default() -> Self {
        Obs::null()
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.0.enabled())
            .finish()
    }
}

impl Obs {
    /// The no-op handle.
    pub fn null() -> Self {
        Obs(Arc::new(NullSink))
    }

    /// A handle over a caller-supplied sink.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Obs(sink)
    }

    /// A fresh recording sink plus the handle that feeds it.
    pub fn recording() -> (Obs, Arc<RecordingSink>) {
        let sink = Arc::new(RecordingSink::new());
        (Obs(sink.clone()), sink)
    }

    /// Whether emissions are recorded.
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Selects the ambient track (usually a session key).
    pub fn set_track(&self, track: u64) {
        self.0.set_track(track);
    }

    /// Opens an interior span on the ambient track.
    pub fn open(&self, layer: Layer, op: &'static str) {
        self.0.open(layer, op);
    }

    /// Closes the innermost open interior span on the ambient track.
    pub fn close(&self) {
        self.0.close();
    }

    /// Records a charged leaf span on the ambient track.
    pub fn leaf(&self, layer: Layer, op: &'static str, d: SimDuration) {
        self.0.leaf(layer, op, d);
    }

    /// Records a charged leaf span on an explicit track.
    pub fn leaf_on(&self, track: u64, layer: Layer, op: &'static str, d: SimDuration) {
        self.0.leaf_on(track, layer, op, d);
    }

    /// Bumps a named counter.
    pub fn add(&self, counter: &'static str, n: u64) {
        self.0.add(counter, n);
    }

    /// Records one lock acquisition on class `class` (see
    /// [`Sink::lock_event`]).
    pub fn lock_event(
        &self,
        class: &'static str,
        layer: Layer,
        wait: SimDuration,
        hold: SimDuration,
    ) {
        self.0.lock_event(class, layer, wait, hold);
    }
}

/// Checks that `spans` (one snapshot's worth, ordered `(track, seq)`)
/// form a well-nested forest per track: every span lies inside its
/// enclosing interior frame and does not overlap a sibling. Returns the
/// first violation as a human-readable message.
///
/// This is the invariant the observability property tests assert; it
/// holds by construction because leaves advance the cursor and interior
/// frames only bracket it.
pub fn check_well_nested(spans: &[SpanRecord]) -> Result<(), String> {
    let mut by_track: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_track.entry(s.track).or_default().push(s);
    }
    for (track, track_spans) in by_track {
        // (depth, start, end) of currently-open ancestors plus the most
        // recently closed span per depth (for sibling-overlap checks).
        let mut stack: Vec<(u16, SimDuration, SimDuration)> = Vec::new();
        for s in track_spans {
            if s.end < s.start {
                return Err(format!("track {track}: span {} ends before start", s.op));
            }
            while let Some(&(d, _, _)) = stack.last() {
                if d >= s.depth {
                    stack.pop();
                } else {
                    break;
                }
            }
            if s.depth as usize != stack.len() {
                return Err(format!(
                    "track {track}: span {} at depth {} but {} ancestors open",
                    s.op,
                    s.depth,
                    stack.len()
                ));
            }
            if let Some(&(_, pstart, pend)) = stack.last() {
                if s.start < pstart || s.end > pend {
                    return Err(format!(
                        "track {track}: span {} [{}, {}] escapes its parent [{pstart}, {pend}]",
                        s.op, s.start, s.end
                    ));
                }
            }
            stack.push((s.depth, s.start, s.end));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        obs.open(Layer::Core, "x");
        obs.leaf(Layer::Tpm, "y", SimDuration::from_us(1));
        obs.close();
        obs.add("c", 3);
    }

    #[test]
    fn leaves_advance_the_cursor_and_feed_histograms() {
        let (obs, sink) = Obs::recording();
        obs.leaf(Layer::Tpm, "tpm.seal", SimDuration::from_ms(20));
        obs.leaf(Layer::Hw, "hw.vm_exit", SimDuration::from_ns(490));
        let snap = sink.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].start, SimDuration::ZERO);
        assert_eq!(snap.spans[0].end, SimDuration::from_ms(20));
        assert_eq!(snap.spans[1].start, SimDuration::from_ms(20));
        assert_eq!(snap.layer_total(Layer::Tpm), SimDuration::from_ms(20));
        assert_eq!(snap.layer_total(Layer::Hw), SimDuration::from_ns(490));
        assert_eq!(
            snap.total(),
            SimDuration::from_ms(20) + SimDuration::from_ns(490)
        );
        assert_eq!(snap.layers[Layer::Tpm.index()].count, 1);
    }

    #[test]
    fn interior_frames_bracket_their_children() {
        let (obs, sink) = Obs::recording();
        obs.open(Layer::Core, "session.step");
        obs.leaf(Layer::Tpm, "tpm.seal", SimDuration::from_ms(1));
        obs.leaf(Layer::Core, "core.pal_work", SimDuration::from_ms(2));
        obs.close();
        obs.leaf(Layer::Hw, "hw.vm_exit", SimDuration::from_us(1));
        let snap = sink.snapshot();
        let frame = &snap.spans[0];
        assert_eq!(frame.kind, SpanKind::Interior);
        assert_eq!(frame.start, SimDuration::ZERO);
        assert_eq!(frame.end, SimDuration::from_ms(3));
        assert_eq!(snap.spans[1].depth, 1);
        check_well_nested(&snap.spans).unwrap();
        // Interior frames add no charged time.
        assert_eq!(
            snap.total(),
            SimDuration::from_ms(3) + SimDuration::from_us(1)
        );
    }

    #[test]
    fn tracks_are_independent_and_sorted() {
        let (obs, sink) = Obs::recording();
        obs.set_track(7);
        obs.leaf(Layer::Core, "a", SimDuration::from_us(5));
        obs.set_track(3);
        obs.leaf(Layer::Core, "b", SimDuration::from_us(9));
        obs.leaf_on(
            PLATFORM_TRACK,
            Layer::Hw,
            "hw.reset",
            SimDuration::from_ms(1),
        );
        obs.set_track(7);
        obs.leaf(Layer::Core, "c", SimDuration::from_us(1));
        let snap = sink.snapshot();
        let tracks: Vec<u64> = snap.spans.iter().map(|s| s.track).collect();
        assert_eq!(tracks, vec![3, 7, 7, PLATFORM_TRACK]);
        // Each track's cursor starts at zero and is private to it.
        assert_eq!(snap.spans[0].start, SimDuration::ZERO);
        assert_eq!(snap.spans[1].start, SimDuration::ZERO);
        assert_eq!(snap.spans[2].start, SimDuration::from_us(5));
        check_well_nested(&snap.spans).unwrap();
    }

    #[test]
    fn counters_accumulate_sorted_by_name() {
        let (obs, sink) = Obs::recording();
        obs.add("os.steps", 2);
        obs.add("os.enqueued", 1);
        obs.add("os.steps", 3);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("os.steps"), 5);
        assert_eq!(snap.counter("os.enqueued"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.counters[0].0, "os.enqueued");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LayerHistogram::bucket_of(SimDuration::ZERO), 0);
        assert_eq!(LayerHistogram::bucket_of(SimDuration::from_ns(1)), 1);
        assert_eq!(LayerHistogram::bucket_of(SimDuration::from_ns(2)), 2);
        assert_eq!(LayerHistogram::bucket_of(SimDuration::from_ns(3)), 2);
        assert_eq!(
            LayerHistogram::bucket_of(SimDuration::from_ms(10_000_000)),
            HISTOGRAM_BUCKETS - 1
        );
    }

    #[test]
    fn check_well_nested_catches_escapes() {
        let bad = vec![
            SpanRecord {
                track: 0,
                seq: 0,
                depth: 0,
                layer: Layer::Core,
                op: "parent",
                start: SimDuration::ZERO,
                end: SimDuration::from_us(1),
                kind: SpanKind::Interior,
            },
            SpanRecord {
                track: 0,
                seq: 1,
                depth: 1,
                layer: Layer::Tpm,
                op: "child",
                start: SimDuration::ZERO,
                end: SimDuration::from_us(2),
                kind: SpanKind::Leaf,
            },
        ];
        assert!(check_well_nested(&bad).is_err());
    }

    #[test]
    fn lock_events_accumulate_per_class_and_stay_out_of_snapshots() {
        let (obs, sink) = Obs::recording();
        obs.lock_event(
            "tpm.gate",
            Layer::Tpm,
            SimDuration::from_us(3),
            SimDuration::from_us(7),
        );
        obs.lock_event(
            "tpm.gate",
            Layer::Tpm,
            SimDuration::ZERO,
            SimDuration::from_us(5),
        );
        obs.lock_event(
            "core.runtime",
            Layer::Core,
            SimDuration::ZERO,
            SimDuration::from_us(1),
        );

        let stats = sink.lock_stats();
        assert_eq!(stats.len(), 2);
        // BTreeMap order: class names sorted.
        assert_eq!(stats[0].0, "core.runtime");
        assert_eq!(stats[1].0, "tpm.gate");
        let gate = &stats[1].1;
        assert_eq!(gate.layer, Layer::Tpm);
        assert_eq!(gate.acquisitions, 2);
        assert_eq!(gate.wait, SimDuration::from_us(3));
        assert_eq!(gate.hold, SimDuration::from_us(12));
        assert_eq!(gate.wait_hist.count, 2);
        assert_eq!(gate.wait_hist.total, SimDuration::from_us(3));

        // The side channel must not perturb the span/counter snapshot.
        let snap = sink.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert_eq!(snap.total(), SimDuration::ZERO);
    }

    #[test]
    fn null_sink_drops_lock_events() {
        let obs = Obs::null();
        obs.lock_event(
            "tpm.gate",
            Layer::Tpm,
            SimDuration::from_us(1),
            SimDuration::from_us(1),
        );
    }

    #[test]
    fn obs_handle_is_send_sync_and_debug() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
        assert_send_sync::<RecordingSink>();
        let (obs, _sink) = Obs::recording();
        assert!(format!("{obs:?}").contains("enabled"));
    }
}
