//! The CPU core model.
//!
//! Each [`Cpu`] tracks the execution state relevant to the paper's
//! protocols: whether it is running untrusted code, executing inside a
//! protected PAL session, or idled (on baseline hardware, a late launch
//! "requires all but one of the processors to be in a special idle
//! state", §4.2). It also carries the *proposed* PAL preemption timer
//! (§5.3.1) that lets the untrusted OS bound a PAL's execution time.

use crate::time::{SimDuration, SimTime};
use crate::types::{CpuId, PhysAddr};

/// What a CPU core is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpuExecState {
    /// Running untrusted legacy code (OS / applications).
    #[default]
    Normal,
    /// Executing a protected PAL session whose SECB/SLB lives at the
    /// given physical address.
    SecureExec {
        /// Physical address of the SLB (baseline) or SECB (proposed).
        region_base: PhysAddr,
    },
    /// Parked in the special idle state baseline late launch requires of
    /// all other cores.
    ForcedIdle,
}

/// A single CPU core.
///
/// # Example
///
/// ```
/// use sea_hw::{Cpu, CpuId, PhysAddr};
///
/// let mut cpu = Cpu::new(CpuId(0), 2.2);
/// cpu.enter_secure(PhysAddr(0x10000));
/// assert!(cpu.in_secure_exec());
/// assert!(!cpu.interrupts_enabled());
/// cpu.leave_secure();
/// assert!(!cpu.in_secure_exec());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cpu {
    id: CpuId,
    ghz: f64,
    state: CpuExecState,
    interrupts_enabled: bool,
    /// Proposed hardware: OS-configured bound on PAL execution (§5.3.1).
    preemption_timer: Option<SimDuration>,
    /// Scheduler bookkeeping: this core is occupied until this instant.
    busy_until: SimTime,
}

impl Cpu {
    /// Creates an idle core with the given clock rate in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive and finite.
    pub fn new(id: CpuId, ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "clock rate must be positive");
        Cpu {
            id,
            ghz,
            state: CpuExecState::Normal,
            interrupts_enabled: true,
            preemption_timer: None,
            busy_until: SimTime::ZERO,
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> CpuId {
        self.id
    }

    /// Clock rate in GHz.
    pub fn ghz(&self) -> f64 {
        self.ghz
    }

    /// Current execution state.
    pub fn state(&self) -> CpuExecState {
        self.state
    }

    /// Whether the core is inside a protected PAL session.
    pub fn in_secure_exec(&self) -> bool {
        matches!(self.state, CpuExecState::SecureExec { .. })
    }

    /// Whether maskable interrupts are delivered to this core.
    pub fn interrupts_enabled(&self) -> bool {
        self.interrupts_enabled
    }

    /// The OS-configured PAL preemption bound, if any.
    pub fn preemption_timer(&self) -> Option<SimDuration> {
        self.preemption_timer
    }

    /// Configures the PAL preemption timer (proposed hardware, §5.3.1).
    /// `None` disables preemption (legacy behaviour).
    pub fn set_preemption_timer(&mut self, limit: Option<SimDuration>) {
        self.preemption_timer = limit;
    }

    /// The instant until which the scheduler considers this core busy.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Marks the core busy until `t` (monotonic: never moves backwards).
    pub fn occupy_until(&mut self, t: SimTime) {
        if t > self.busy_until {
            self.busy_until = t;
        }
    }

    /// Enters protected execution: models the CPU-state reinitialization
    /// performed by `SKINIT`/`SENTER`/`SLAUNCH` — "reinitializes the CPU
    /// ... to a well-known trusted state" and "disables interrupts to
    /// prevent previously executing code from regaining control" (§2.2.1,
    /// §5.1.1).
    pub fn enter_secure(&mut self, region_base: PhysAddr) {
        self.state = CpuExecState::SecureExec { region_base };
        self.interrupts_enabled = false;
    }

    /// Leaves protected execution and re-enables interrupts, modelling
    /// the secure state clear on PAL yield/exit ("any microarchitectural
    /// state that may persist long enough to leak the secrets of a PAL
    /// must be cleared", §5.3.1).
    pub fn leave_secure(&mut self) {
        self.state = CpuExecState::Normal;
        self.interrupts_enabled = true;
    }

    /// Parks the core in the baseline forced-idle state.
    pub fn force_idle(&mut self) {
        self.state = CpuExecState::ForcedIdle;
    }

    /// Returns the core from forced idle to normal execution.
    pub fn wake(&mut self) {
        if self.state == CpuExecState::ForcedIdle {
            self.state = CpuExecState::Normal;
        }
    }

    /// Virtual time to execute `cycles` CPU cycles at this core's clock.
    pub fn cycles_to_duration(&self, cycles: u64) -> SimDuration {
        SimDuration::from_ns_f64(cycles as f64 / self.ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_core_is_normal_with_interrupts() {
        let cpu = Cpu::new(CpuId(3), 1.8);
        assert_eq!(cpu.id(), CpuId(3));
        assert_eq!(cpu.state(), CpuExecState::Normal);
        assert!(cpu.interrupts_enabled());
        assert!(cpu.preemption_timer().is_none());
    }

    #[test]
    fn secure_entry_disables_interrupts() {
        let mut cpu = Cpu::new(CpuId(0), 2.2);
        cpu.enter_secure(PhysAddr(0x1000));
        assert_eq!(
            cpu.state(),
            CpuExecState::SecureExec {
                region_base: PhysAddr(0x1000)
            }
        );
        assert!(!cpu.interrupts_enabled());
        cpu.leave_secure();
        assert!(cpu.interrupts_enabled());
        assert_eq!(cpu.state(), CpuExecState::Normal);
    }

    #[test]
    fn forced_idle_and_wake() {
        let mut cpu = Cpu::new(CpuId(1), 2.2);
        cpu.force_idle();
        assert_eq!(cpu.state(), CpuExecState::ForcedIdle);
        cpu.wake();
        assert_eq!(cpu.state(), CpuExecState::Normal);
        // Wake is a no-op in secure state.
        cpu.enter_secure(PhysAddr(0));
        cpu.wake();
        assert!(cpu.in_secure_exec());
    }

    #[test]
    fn busy_until_is_monotonic() {
        let mut cpu = Cpu::new(CpuId(0), 2.2);
        cpu.occupy_until(SimTime::from_ns(100));
        cpu.occupy_until(SimTime::from_ns(50));
        assert_eq!(cpu.busy_until(), SimTime::from_ns(100));
    }

    #[test]
    fn cycle_accounting_uses_clock_rate() {
        let cpu = Cpu::new(CpuId(0), 2.0);
        assert_eq!(cpu.cycles_to_duration(2_000_000), SimDuration::from_ms(1));
    }

    #[test]
    fn preemption_timer_roundtrip() {
        let mut cpu = Cpu::new(CpuId(0), 2.2);
        cpu.set_preemption_timer(Some(SimDuration::from_ms(10)));
        assert_eq!(cpu.preemption_timer(), Some(SimDuration::from_ms(10)));
        cpu.set_preemption_timer(None);
        assert!(cpu.preemption_timer().is_none());
    }

    #[test]
    #[should_panic(expected = "clock rate must be positive")]
    fn zero_clock_panics() {
        let _ = Cpu::new(CpuId(0), 0.0);
    }
}
