//! The assembled machine: CPUs + memory + memory controller + LPC bus.
//!
//! [`Machine`] is the composition root of the hardware substrate. Every
//! memory access flows through [`Machine::read`] / [`Machine::write`],
//! which consult the [`MemoryController`] exactly as requests flow
//! through the north bridge in Figure 1 of the paper — this is what makes
//! the isolation experiments real rather than asserted.

use crate::controller::MemoryController;
use crate::cpu::Cpu;
use crate::error::HwError;
use crate::lpc::LpcBus;
use crate::memory::Memory;
use crate::obs::{Layer, Obs, PLATFORM_TRACK};
use crate::platform::Platform;
use crate::reset::RESET_REBOOT_COST;
use crate::time::{SimClock, SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use crate::types::{AccessKind, CpuId, DeviceId, PhysAddr, Requester};

/// A DMA-capable peripheral (e.g. the "DMA-capable Ethernet card with
/// access to the PCI bus" of the paper's threat model, §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    id: DeviceId,
    name: String,
}

impl Device {
    /// The device's identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A live hardware platform.
///
/// # Example
///
/// ```
/// use sea_hw::{Machine, Platform, CpuId, PageRange, PageIndex, Requester, PhysAddr};
///
/// let mut m = Machine::new(Platform::recommended(2));
/// let range = PageRange::new(PageIndex(8), 2);
/// m.controller_mut().protect_for_cpu(range, CpuId(0)).unwrap();
///
/// // The owning CPU can write; the other CPU is denied by the
/// // access-control table.
/// let base = range.base_addr();
/// assert!(m.write(Requester::Cpu(CpuId(0)), base, b"secret").is_ok());
/// assert!(m.read(Requester::Cpu(CpuId(1)), base, 6).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    // -- persistent half: survives a platform reset ------------------
    // The platform description and buses are the hardware itself; DRAM
    // contents are deliberately not modelled as cleared (§3.2 considers
    // memory-remanence attacks out of scope); the clock is the outside
    // observer's timeline and only ever moves forward; the trace is the
    // experimenter's log, not machine state.
    platform: Platform,
    clock: SimClock,
    memory: Memory,
    lpc: LpcBus,
    devices: Vec<Device>,
    trace: Trace,
    obs: Obs,
    // -- volatile half: rebuilt from scratch by [`Machine::reset`] ---
    volatile: VolatileState,
}

/// The half of the machine a power loss vaporises: per-CPU execution
/// state (secure-execution mode, preemption timers) and the memory
/// controller's access-control table, which the north bridge rebuilds
/// to its power-on default (every page `ALL`) at reset.
#[derive(Debug, Clone)]
struct VolatileState {
    cpus: Vec<Cpu>,
    controller: MemoryController,
}

impl VolatileState {
    fn fresh(platform: &Platform) -> Self {
        VolatileState {
            cpus: platform
                .cpu_ids()
                .map(|id| Cpu::new(id, platform.cpu_ghz))
                .collect(),
            controller: MemoryController::new(platform.mem_pages),
        }
    }
}

impl Machine {
    /// Instantiates a machine from a platform description.
    pub fn new(platform: Platform) -> Self {
        MachineBuilder::new(platform).build()
    }

    /// Starts a builder for customized construction.
    pub fn builder(platform: Platform) -> MachineBuilder {
        MachineBuilder::new(platform)
    }

    /// The platform description this machine was built from.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances virtual time.
    pub fn advance(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Advances virtual time by `d` *and* records an attributed leaf
    /// span on the observability sink. This is the instrumented twin of
    /// [`Machine::advance`]: the sum of charges always equals the clock
    /// movement, so per-layer attribution and total virtual time agree
    /// by construction.
    pub fn charge(&mut self, layer: Layer, op: &'static str, d: SimDuration) {
        self.obs.leaf(layer, op, d);
        self.clock.advance(d);
    }

    /// Installs the observability handle charges emit through. The
    /// default is the null sink.
    pub fn install_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The machine's observability handle (cheap to clone).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Advances virtual time to `t` if in the future.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        self.clock.advance_to(t)
    }

    /// The CPU with identifier `id`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::NoSuchCpu`] for an invalid identifier.
    pub fn cpu(&self, id: CpuId) -> Result<&Cpu, HwError> {
        self.volatile
            .cpus
            .get(id.0 as usize)
            .ok_or(HwError::NoSuchCpu(id))
    }

    /// Mutable access to the CPU with identifier `id`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::NoSuchCpu`] for an invalid identifier.
    pub fn cpu_mut(&mut self, id: CpuId) -> Result<&mut Cpu, HwError> {
        self.volatile
            .cpus
            .get_mut(id.0 as usize)
            .ok_or(HwError::NoSuchCpu(id))
    }

    /// All CPUs.
    pub fn cpus(&self) -> &[Cpu] {
        &self.volatile.cpus
    }

    /// Mutable access to all CPUs.
    pub fn cpus_mut(&mut self) -> &mut [Cpu] {
        &mut self.volatile.cpus
    }

    /// The memory controller (north bridge).
    pub fn controller(&self) -> &MemoryController {
        &self.volatile.controller
    }

    /// Mutable access to the memory controller. In real hardware only
    /// privileged instructions reach these knobs; the secure-execution
    /// protocols in `sea-core` are the intended callers.
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.volatile.controller
    }

    /// Platform reset: power is lost and restored. The volatile half —
    /// every CPU's execution state and the whole access-control table —
    /// is rebuilt to its power-on default; memory contents, the buses,
    /// and the trace persist, and the clock moves monotonically forward
    /// by [`RESET_REBOOT_COST`] (a reboot costs time, it never rewinds
    /// it). Records [`TraceEvent::PlatformReset`] at the instant of the
    /// power loss and returns the reboot cost charged.
    pub fn reset(&mut self) -> SimDuration {
        let at = self.clock.now();
        self.trace.record(at, TraceEvent::PlatformReset);
        self.volatile = VolatileState::fresh(&self.platform);
        // A reboot belongs to no session: charge it on the platform
        // track so per-session span streams stay interleaving-free.
        self.obs
            .leaf_on(PLATFORM_TRACK, Layer::Hw, "hw.reset", RESET_REBOOT_COST);
        self.clock.advance(RESET_REBOOT_COST);
        RESET_REBOOT_COST
    }

    /// Raw physical memory (unchecked path — prefer [`Machine::read`]).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable raw physical memory (unchecked path — prefer
    /// [`Machine::write`]).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The LPC bus.
    pub fn lpc(&self) -> &LpcBus {
        &self.lpc
    }

    /// Replaces the LPC bus model (used by the bus speed-up ablation).
    pub fn set_lpc(&mut self, bus: LpcBus) {
        self.lpc = bus;
    }

    /// The installed DMA-capable devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Permission-checked memory read on behalf of `requester`.
    ///
    /// # Errors
    ///
    /// [`HwError::AccessDenied`] if the memory controller blocks any page
    /// in the range; [`HwError::AddressOutOfRange`] past installed memory.
    pub fn read(
        &self,
        requester: Requester,
        addr: PhysAddr,
        len: usize,
    ) -> Result<Vec<u8>, HwError> {
        for page in Memory::pages_spanned(addr, len) {
            self.volatile
                .controller
                .check(requester, AccessKind::Read, page)?;
        }
        self.memory.read_raw(addr, len)
    }

    /// The hardware event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace — higher layers record protocol
    /// events ([`TraceEvent::Note`], secure enter/leave) here.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Permission-checked read that *records* denials in the trace.
    /// Functionally identical to [`Machine::read`]; this variant needs
    /// `&mut self` for the trace.
    ///
    /// # Errors
    ///
    /// As for [`Machine::read`].
    pub fn read_traced(
        &mut self,
        requester: Requester,
        addr: PhysAddr,
        len: usize,
    ) -> Result<Vec<u8>, HwError> {
        let result = self.read(requester, addr, len);
        match &result {
            Err(HwError::AccessDenied { .. }) => {
                let at = self.clock.now();
                self.trace
                    .record(at, TraceEvent::AccessDenied { requester, addr });
            }
            Ok(_) => {
                if let Requester::Device(device) = requester {
                    let at = self.clock.now();
                    self.trace
                        .record(at, TraceEvent::DmaAccess { device, addr });
                }
            }
            Err(_) => {}
        }
        result
    }

    /// Permission-checked memory write on behalf of `requester`.
    ///
    /// # Errors
    ///
    /// [`HwError::AccessDenied`] if the memory controller blocks any page
    /// in the range; [`HwError::AddressOutOfRange`] past installed memory.
    pub fn write(
        &mut self,
        requester: Requester,
        addr: PhysAddr,
        data: &[u8],
    ) -> Result<(), HwError> {
        for page in Memory::pages_spanned(addr, data.len()) {
            self.volatile
                .controller
                .check(requester, AccessKind::Write, page)?;
        }
        self.memory.write_raw(addr, data)
    }

    /// Permission-checked write that *records* denials in the trace,
    /// mirroring [`Machine::read_traced`].
    ///
    /// # Errors
    ///
    /// As for [`Machine::write`].
    pub fn write_traced(
        &mut self,
        requester: Requester,
        addr: PhysAddr,
        data: &[u8],
    ) -> Result<(), HwError> {
        let result = self.write(requester, addr, data);
        match &result {
            Err(HwError::AccessDenied { .. }) => {
                let at = self.clock.now();
                self.trace
                    .record(at, TraceEvent::AccessDenied { requester, addr });
            }
            Ok(()) => {
                if let Requester::Device(device) = requester {
                    let at = self.clock.now();
                    self.trace
                        .record(at, TraceEvent::DmaAccess { device, addr });
                }
            }
            Err(_) => {}
        }
        result
    }

    /// DMA read issued by device `dev` (convenience wrapper).
    ///
    /// # Errors
    ///
    /// As for [`Machine::read`].
    pub fn dma_read(&self, dev: DeviceId, addr: PhysAddr, len: usize) -> Result<Vec<u8>, HwError> {
        self.read(Requester::Device(dev), addr, len)
    }

    /// DMA write issued by device `dev` (convenience wrapper).
    ///
    /// # Errors
    ///
    /// As for [`Machine::write`].
    pub fn dma_write(&mut self, dev: DeviceId, addr: PhysAddr, data: &[u8]) -> Result<(), HwError> {
        self.write(Requester::Device(dev), addr, data)
    }
}

/// Builder for [`Machine`] with optional customization.
#[derive(Debug)]
pub struct MachineBuilder {
    platform: Platform,
    devices: Vec<String>,
}

impl MachineBuilder {
    /// Starts building a machine for `platform`.
    pub fn new(platform: Platform) -> Self {
        MachineBuilder {
            platform,
            devices: Vec::new(),
        }
    }

    /// Adds a DMA-capable device by name (e.g. `"e1000 NIC"`).
    pub fn device(mut self, name: &str) -> Self {
        self.devices.push(name.to_owned());
        self
    }

    /// Finalizes construction.
    pub fn build(self) -> Machine {
        let devices = self
            .devices
            .into_iter()
            .enumerate()
            .map(|(i, name)| Device {
                id: DeviceId(i as u16),
                name,
            })
            .collect();
        Machine {
            memory: Memory::new(self.platform.mem_pages),
            volatile: VolatileState::fresh(&self.platform),
            lpc: LpcBus::new(self.platform.lpc_ns_per_byte),
            clock: SimClock::new(),
            devices,
            platform: self.platform,
            trace: Trace::new(),
            obs: Obs::null(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PageIndex, PageRange};

    fn machine() -> Machine {
        Machine::builder(Platform::recommended(2).with_mem_pages(32))
            .device("test NIC")
            .build()
    }

    #[test]
    fn construction_matches_platform() {
        let m = machine();
        assert_eq!(m.cpus().len(), 2);
        assert_eq!(m.memory().num_pages(), 32);
        assert_eq!(m.controller().num_pages(), 32);
        assert_eq!(m.devices().len(), 1);
        assert_eq!(m.devices()[0].name(), "test NIC");
        assert_eq!(m.now(), SimTime::ZERO);
    }

    #[test]
    fn cpu_lookup() {
        let mut m = machine();
        assert!(m.cpu(CpuId(0)).is_ok());
        assert!(m.cpu(CpuId(1)).is_ok());
        assert_eq!(m.cpu(CpuId(2)), Err(HwError::NoSuchCpu(CpuId(2))));
        assert!(m.cpu_mut(CpuId(9)).is_err());
    }

    #[test]
    fn unprotected_memory_open_to_all() {
        let mut m = machine();
        m.write(Requester::Cpu(CpuId(0)), PhysAddr(0), b"data")
            .unwrap();
        assert_eq!(
            m.read(Requester::Cpu(CpuId(1)), PhysAddr(0), 4).unwrap(),
            b"data"
        );
        assert_eq!(m.dma_read(DeviceId(0), PhysAddr(0), 4).unwrap(), b"data");
    }

    #[test]
    fn protected_memory_blocks_dma_and_other_cpus() {
        let mut m = machine();
        let range = PageRange::new(PageIndex(4), 1);
        m.controller_mut().protect_for_cpu(range, CpuId(0)).unwrap();
        let base = range.base_addr();
        assert!(m.write(Requester::Cpu(CpuId(0)), base, b"x").is_ok());
        assert!(matches!(
            m.read(Requester::Cpu(CpuId(1)), base, 1),
            Err(HwError::AccessDenied { .. })
        ));
        assert!(matches!(
            m.dma_write(DeviceId(0), base, b"evil"),
            Err(HwError::AccessDenied { .. })
        ));
    }

    #[test]
    fn cross_page_access_checks_every_page() {
        let mut m = machine();
        // Protect page 5 only; a write spanning 4..6 must fail.
        m.controller_mut()
            .protect_for_cpu(PageRange::new(PageIndex(5), 1), CpuId(0))
            .unwrap();
        let addr = PhysAddr(5 * crate::types::PAGE_SIZE as u64 - 2);
        assert!(m.write(Requester::Cpu(CpuId(1)), addr, &[0u8; 8]).is_err());
        // And the first page was not partially written (check-then-write).
        assert_eq!(
            m.read(Requester::Cpu(CpuId(1)), addr, 2).unwrap(),
            vec![0, 0]
        );
    }

    #[test]
    fn traced_reads_record_denials_and_dma() {
        let mut m = machine();
        let range = PageRange::new(PageIndex(4), 1);
        m.controller_mut().protect_for_cpu(range, CpuId(0)).unwrap();
        let base = range.base_addr();
        // Denied CPU read recorded.
        assert!(m.read_traced(Requester::Cpu(CpuId(1)), base, 4).is_err());
        // Successful DMA elsewhere recorded.
        assert!(m
            .read_traced(Requester::Device(DeviceId(0)), PhysAddr(0), 4)
            .is_ok());
        // Writes mirror the behaviour.
        assert!(m
            .write_traced(Requester::Cpu(CpuId(1)), base, b"x")
            .is_err());
        assert!(m
            .write_traced(Requester::Device(DeviceId(0)), PhysAddr(64), b"y")
            .is_ok());
        let denials = m
            .trace()
            .filtered(|e| matches!(e, crate::TraceEvent::AccessDenied { .. }))
            .count();
        let dma = m
            .trace()
            .filtered(|e| matches!(e, crate::TraceEvent::DmaAccess { .. }))
            .count();
        assert_eq!(denials, 2);
        assert_eq!(dma, 2);
    }

    #[test]
    fn clock_plumbing() {
        let mut m = machine();
        m.advance(SimDuration::from_ms(2));
        assert_eq!(m.now(), SimTime::from_ns(2_000_000));
        m.advance_to(SimTime::from_ns(1)); // past: no-op
        assert_eq!(m.now(), SimTime::from_ns(2_000_000));
    }

    #[test]
    fn lpc_replaceable() {
        let mut m = machine();
        let orig = m.lpc().ns_per_byte();
        m.set_lpc(m.lpc().sped_up(2.0));
        assert!((m.lpc().ns_per_byte() - orig / 2.0).abs() < 1e-9);
    }
    #[test]
    fn reset_rebuilds_volatile_half_only() {
        let mut m = machine();
        // Dirty the volatile half: protect a page and park CPU 1 in a
        // distinguishable state via the preemption timer.
        let range = PageRange::new(PageIndex(4), 1);
        m.controller_mut().protect_for_cpu(range, CpuId(0)).unwrap();
        // Dirty the persistent half: memory contents and some time.
        m.write(Requester::Cpu(CpuId(0)), PhysAddr(0), b"sticky")
            .unwrap();
        m.advance(SimDuration::from_ms(3));
        let before = m.now();

        let cost = m.reset();

        // Volatile: the access table is back at power-on default, so
        // the previously-denied CPU can read the protected page again.
        assert!(m
            .read(Requester::Cpu(CpuId(1)), range.base_addr(), 1)
            .is_ok());
        let (_, cpus_pages, none_pages) = m.controller().state_census();
        assert_eq!((cpus_pages, none_pages), (0, 0));
        // Persistent: memory contents survive, the clock moved forward
        // by exactly the reboot cost, and the trace kept its history
        // plus the reset marker.
        assert_eq!(
            m.read(Requester::Cpu(CpuId(0)), PhysAddr(0), 6).unwrap(),
            b"sticky"
        );
        assert_eq!(m.now(), before + cost);
        assert!(m
            .trace()
            .iter()
            .any(|(at, e)| *at == before && matches!(e, TraceEvent::PlatformReset)));
    }

    #[test]
    fn machine_is_send_sync() {
        // The concurrent session engine moves whole platforms across
        // worker threads; all state must be owned data.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Machine>();
    }
}
