//! Deterministic power-loss / platform-reset injection.
//!
//! The harshest event in the paper's threat model is a full platform
//! reset: every CPU register, every access-control-table entry, and
//! every in-flight PAL session vanishes, while NVRAM-resident TPM state
//! (EK/SRK, monotonic counters, sealed blobs) survives (§2.1.3,
//! §2.1.4). A [`ResetPlan`] injects such resets *deterministically*,
//! the same way [`crate::FaultPlan`] injects transient faults: every
//! decision is a pure function of `(plan seed, reset epoch, sequence
//! number)`, so a crashing run replays identically on one worker or
//! sixteen.
//!
//! Three triggers compose, most-specific first:
//!
//! * **Event cut** — [`ResetPlan::with_cut_after_events`] pins the
//!   power loss to an exact trace-event boundary. This is what the
//!   crash-point property test sweeps: cut at *every* boundary of a
//!   reference batch and prove recovery.
//! * **Scheduled resets** — [`ResetPlan::schedule_at`] pins resets to
//!   chosen virtual-time points, drained by [`ResetPlan::take_due`].
//! * **Rate rolls** — [`ResetPlan::roll_power_loss`] fires with
//!   probability `reset_rate / RATE_DENOM` per commit boundary, for the
//!   `crash_sweep` experiment's reset-rate axis.

use crate::fault::XorShift;
use crate::time::{SimDuration, SimTime};
use crate::RATE_DENOM;

/// Virtual-time cost of one platform reset: power loss through
/// firmware, POST, and OS handoff back to the batch driver. Charged to
/// the recovery timeline whenever a reset fires, so recovered-goodput
/// honestly pays for every reboot.
pub const RESET_REBOOT_COST: SimDuration = SimDuration::from_ms(150);

/// Injection-site constant mixed into the tape seed so the power-loss
/// decision stream is independent of the fault streams.
const SITE_RESET: u64 = 0x7273_7400; // "rst\0"

/// A seeded, deterministic power-loss plan.
///
/// Rate rolls are keyed by `(epoch, seq)` — the number of resets
/// already survived and a caller-chosen sequence number (the durable
/// engine uses the committing session's key) — never by wall state, so
/// a crashing batch replays identically at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetPlan {
    seed: u64,
    reset_rate: u32,
    max_resets: u32,
    cut_after_events: Option<u64>,
    scheduled: Vec<SimTime>,
}

impl ResetPlan {
    /// A plan with the given seed and no triggers configured: injects
    /// nothing until a rate, cut, or schedule is set.
    pub fn new(seed: u64) -> Self {
        ResetPlan {
            seed,
            reset_rate: 0,
            max_resets: 8,
            cut_after_events: None,
            scheduled: Vec::new(),
        }
    }

    /// The canonical never-reset plan.
    pub fn reset_free() -> Self {
        ResetPlan::new(0)
    }

    /// Sets the per-commit-boundary power-loss rate (parts per
    /// [`RATE_DENOM`], clamped).
    #[must_use]
    pub fn with_reset_rate(mut self, rate: u32) -> Self {
        self.reset_rate = rate.min(RATE_DENOM);
        self
    }

    /// Caps how many resets the plan may fire in one batch, guaranteeing
    /// the recovery loop terminates (default 8).
    #[must_use]
    pub fn with_max_resets(mut self, budget: u32) -> Self {
        self.max_resets = budget;
        self
    }

    /// Cuts power once the machine trace has recorded `events` events
    /// in total. This fires at most once — it models yanking the cord
    /// at one exact point in the hardware's observable history.
    #[must_use]
    pub fn with_cut_after_events(mut self, events: u64) -> Self {
        self.cut_after_events = Some(events);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Maximum resets the plan may fire in one batch.
    pub fn max_resets(&self) -> u32 {
        self.max_resets
    }

    /// The trace-event cut point, if one is pinned.
    pub fn cut_after_events(&self) -> Option<u64> {
        self.cut_after_events
    }

    /// True if this plan can never cut power.
    pub fn is_reset_free(&self) -> bool {
        self.reset_rate == 0 && self.cut_after_events.is_none() && self.scheduled.is_empty()
    }

    /// Pins a reset to a chosen virtual-time point, consumed by
    /// [`ResetPlan::take_due`].
    pub fn schedule_at(&mut self, at: SimTime) {
        self.scheduled.push(at);
        self.scheduled.sort_by_key(|t| t.as_ns());
    }

    /// Removes and counts every scheduled reset due at or before `now`.
    pub fn take_due(&mut self, now: SimTime) -> usize {
        let split = self.scheduled.partition_point(|t| *t <= now);
        self.scheduled.drain(..split).count()
    }

    /// Whether the pinned event cut fires at a cumulative trace-event
    /// count of `events`.
    pub fn cut_due(&self, events: u64) -> bool {
        self.cut_after_events.is_some_and(|cut| events >= cut)
    }

    /// Rolls for a power loss at commit boundary `(epoch, seq)`, where
    /// `epoch` counts resets already survived. Returns `true` if the
    /// cord is yanked.
    pub fn roll_power_loss(&self, epoch: u64, seq: u64) -> bool {
        if self.reset_rate == 0 {
            return false;
        }
        let mut x = XorShift::new(self.seed ^ SITE_RESET.rotate_left(17));
        // Mix epoch and seq through the generator itself, exactly as
        // `FaultPlan::roll` mixes key and seq, so nearby pairs
        // decorrelate.
        x.state ^= epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        x.next_u64();
        x.state ^= seq.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(13);
        x.next_u64();
        x.next_u32() % RATE_DENOM < self.reset_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let a = ResetPlan::new(42).with_reset_rate(20000);
        let b = a.clone();
        for epoch in 0..4u64 {
            for seq in 0..64u64 {
                assert_eq!(a.roll_power_loss(epoch, seq), b.roll_power_loss(epoch, seq));
            }
        }
    }

    #[test]
    fn zero_rate_never_fires_full_rate_always_fires() {
        let zero = ResetPlan::new(7);
        let full = ResetPlan::new(7).with_reset_rate(RATE_DENOM);
        for seq in 0..256u64 {
            assert!(!zero.roll_power_loss(0, seq));
            assert!(full.roll_power_loss(0, seq));
        }
        assert!(zero.is_reset_free());
        assert!(!full.is_reset_free());
    }

    #[test]
    fn epochs_decorrelate() {
        // At a middling rate, different epochs must not produce
        // identical power-loss streams.
        let plan = ResetPlan::new(1234).with_reset_rate(RATE_DENOM / 2);
        let stream = |epoch: u64| -> Vec<bool> {
            (0..128)
                .map(|seq| plan.roll_power_loss(epoch, seq))
                .collect()
        };
        assert_ne!(stream(0), stream(1));
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn event_cut_fires_once_reached() {
        let plan = ResetPlan::reset_free().with_cut_after_events(5);
        assert!(!plan.is_reset_free());
        assert_eq!(plan.cut_after_events(), Some(5));
        assert!(!plan.cut_due(4));
        assert!(plan.cut_due(5));
        assert!(plan.cut_due(6));
        assert!(!ResetPlan::reset_free().cut_due(1_000_000));
    }

    #[test]
    fn scheduled_resets_drain_in_time_order() {
        let mut plan = ResetPlan::reset_free();
        plan.schedule_at(SimTime::from_ns(300));
        plan.schedule_at(SimTime::from_ns(100));
        assert!(!plan.is_reset_free());
        assert_eq!(plan.take_due(SimTime::from_ns(200)), 1);
        assert_eq!(plan.take_due(SimTime::from_ns(400)), 1);
        assert_eq!(plan.take_due(SimTime::from_ns(500)), 0);
        assert!(plan.is_reset_free());
    }

    #[test]
    fn budget_defaults_and_builders() {
        let plan = ResetPlan::new(1);
        assert_eq!(plan.max_resets(), 8);
        assert_eq!(plan.seed(), 1);
        let plan = plan.with_max_resets(2).with_reset_rate(RATE_DENOM * 2);
        assert_eq!(plan.max_resets(), 2);
        // Rates clamp to the denominator.
        assert!(plan.roll_power_loss(0, 0));
    }
}
