//! The memory controller (north bridge): baseline DMA protection and the
//! paper's proposed per-page × per-CPU access-control table.
//!
//! Baseline hardware (§2.2): AMD's Device Exclusion Vector (DEV) and
//! Intel's Memory Protection Table (MPT) are bit vectors that block *DMA*
//! to selected pages — they do nothing about other CPUs.
//!
//! Proposed hardware (§5.2): "the memory controller maintain[s] an access
//! control table with one entry per physical page, where each entry
//! specifies which CPUs (if any) have access to the physical page."
//! Entries move through the Figure 5(b) state machine:
//!
//! ```text
//!        SLAUNCH                suspend
//!  ALL ───────────▶ CPUᵢ ───────────────▶ NONE
//!   ▲                │  ▲                   │
//!   └──── SFREE ─────┘  └───── resume ──────┘
//! ```

use crate::error::HwError;
use crate::types::{AccessKind, CpuId, CpuMask, PageIndex, PageRange, Requester};

/// Access-control state of one physical page (Figure 5(b)).
///
/// The `Cpus` state generalizes the figure's `CPUᵢ` to a *set* of CPUs,
/// supporting the §6 *Multicore PALs* extension ("the join operation
/// serves to add the new CPU to the memory controller's access control
/// table for the PAL's pages"); a freshly launched PAL owns its pages
/// with a singleton set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageAccess {
    /// Accessible to all CPUs and DMA devices (default state).
    #[default]
    All,
    /// Accessible only to the CPUs in the mask (a PAL owns the page).
    Cpus(CpuMask),
    /// Accessible to nothing — the owning PAL is suspended.
    None,
}

impl PageAccess {
    /// The singleton owner state — the Figure 5(b) `CPUᵢ` entry.
    pub fn cpu(cpu: CpuId) -> Self {
        PageAccess::Cpus(CpuMask::single(cpu))
    }
}

/// The north-bridge memory controller.
///
/// # Example
///
/// ```
/// use sea_hw::{MemoryController, PageAccess, PageRange, PageIndex, CpuId,
///              Requester, AccessKind};
///
/// let mut mc = MemoryController::new(16);
/// let range = PageRange::new(PageIndex(2), 3);
/// mc.protect_for_cpu(range, CpuId(0)).unwrap();
/// // CPU 0 may access; CPU 1 may not.
/// assert!(mc.check(Requester::Cpu(CpuId(0)), AccessKind::Read, PageIndex(2)).is_ok());
/// assert!(mc.check(Requester::Cpu(CpuId(1)), AccessKind::Read, PageIndex(2)).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    table: Vec<PageAccess>,
    /// DEV/MPT bit per page: `true` means DMA to the page is blocked.
    dev: Vec<bool>,
    /// One-shot injected fault: the next `resume_pages` is spuriously
    /// denied (a transient TOCTOU window in the table-update queue).
    spurious: bool,
}

impl MemoryController {
    /// Creates a controller for `num_pages` pages, all in the `ALL` state
    /// with DMA permitted.
    pub fn new(num_pages: u32) -> Self {
        MemoryController {
            table: vec![PageAccess::All; num_pages as usize],
            dev: vec![false; num_pages as usize],
            spurious: false,
        }
    }

    /// Arms a one-shot injected fault: the next [`resume_pages`] call is
    /// spuriously denied without modifying the table, then the fault
    /// clears itself. Used by the fault-injection substrate.
    ///
    /// [`resume_pages`]: MemoryController::resume_pages
    pub fn arm_spurious_denial(&mut self) {
        self.spurious = true;
    }

    /// Clears a pending spurious denial, if any.
    pub fn disarm_spurious_denial(&mut self) {
        self.spurious = false;
    }

    /// Number of pages covered.
    pub fn num_pages(&self) -> u32 {
        self.table.len() as u32
    }

    /// Current table entry for `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn access(&self, page: PageIndex) -> PageAccess {
        self.table[page.0 as usize]
    }

    /// Whether the DEV blocks DMA to `page`.
    pub fn dev_blocked(&self, page: PageIndex) -> bool {
        self.dev[page.0 as usize]
    }

    /// Checks whether `requester` may perform `kind` on `page`.
    ///
    /// Reads and writes are treated identically, as in the paper ("nothing
    /// currently executing on the platform is allowed to read or write to
    /// those pages", §5.2.1); `kind` is carried for trace fidelity.
    ///
    /// # Errors
    ///
    /// [`HwError::AccessDenied`] when the access-control table or DEV
    /// forbids the access; [`HwError::AddressOutOfRange`] for an
    /// uninstalled page.
    pub fn check(
        &self,
        requester: Requester,
        kind: AccessKind,
        page: PageIndex,
    ) -> Result<(), HwError> {
        let _ = kind;
        let idx = page.0 as usize;
        let entry = *self.table.get(idx).ok_or(HwError::AddressOutOfRange {
            addr: page.base_addr(),
        })?;
        let allowed = match (requester, entry) {
            (_, PageAccess::All) => match requester {
                // DEV applies even to pages in ALL: DMA protection is the
                // baseline mechanism and exists independently.
                Requester::Device(_) => !self.dev[idx],
                Requester::Cpu(_) => true,
            },
            (Requester::Cpu(c), PageAccess::Cpus(owners)) => owners.contains(c),
            (Requester::Device(_), PageAccess::Cpus(_)) => false,
            (_, PageAccess::None) => false,
        };
        if allowed {
            Ok(())
        } else {
            Err(HwError::AccessDenied { requester, page })
        }
    }

    /// `SLAUNCH` launch path: transitions every page in `range` from
    /// `ALL` to `CPUᵢ`.
    ///
    /// # Errors
    ///
    /// [`HwError::PageConflict`] if any page is not in the `ALL` state
    /// ("if the memory controller discovers that another PAL is already
    /// using any of these memory pages, it signals the CPU that SLAUNCH
    /// must return a failure code", §5.6). No page is modified on failure.
    pub fn protect_for_cpu(&mut self, range: PageRange, cpu: CpuId) -> Result<(), HwError> {
        self.check_installed(range)?;
        for page in range.iter() {
            if self.table[page.0 as usize] != PageAccess::All {
                return Err(HwError::PageConflict { page });
            }
        }
        for page in range.iter() {
            self.table[page.0 as usize] = PageAccess::cpu(cpu);
        }
        Ok(())
    }

    /// §6 *Multicore PALs* join: admits `new_cpu` to every page in
    /// `range`. Only a CPU already in the owner set may extend it (the
    /// join is initiated from inside the PAL).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidPageTransition`] if any page is not owned by a
    /// set containing `requester`. No page is modified on failure.
    pub fn join_cpu(
        &mut self,
        range: PageRange,
        requester: CpuId,
        new_cpu: CpuId,
    ) -> Result<(), HwError> {
        self.check_installed(range)?;
        for page in range.iter() {
            match self.table[page.0 as usize] {
                PageAccess::Cpus(owners) if owners.contains(requester) => {}
                _ => return Err(HwError::InvalidPageTransition { page }),
            }
        }
        for page in range.iter() {
            if let PageAccess::Cpus(owners) = &mut self.table[page.0 as usize] {
                owners.insert(new_cpu);
            }
        }
        Ok(())
    }

    /// Suspend path: transitions every page in `range` from `CPUᵢ` to
    /// `NONE`. Only an owning CPU may suspend.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidPageTransition`] if any page is not owned by a
    /// set containing `cpu`. No page is modified on failure.
    pub fn suspend_pages(&mut self, range: PageRange, cpu: CpuId) -> Result<(), HwError> {
        self.check_installed(range)?;
        for page in range.iter() {
            match self.table[page.0 as usize] {
                PageAccess::Cpus(owners) if owners.contains(cpu) => {}
                _ => return Err(HwError::InvalidPageTransition { page }),
            }
        }
        for page in range.iter() {
            self.table[page.0 as usize] = PageAccess::None;
        }
        Ok(())
    }

    /// Resume path: transitions every page in `range` from `NONE` to
    /// `CPUᵢ` (possibly a *different* CPU than before — "the PAL may
    /// execute on a different CPU each time it is resumed", §5.3.1).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidPageTransition`] if any page is not `NONE`
    /// — in particular, if the PAL is still running on another CPU
    /// ("any other CPU that tries to resume the same PAL will fail").
    /// [`HwError::AccessDenied`] if an injected spurious denial was
    /// armed (it clears on firing). No page is modified on failure.
    pub fn resume_pages(&mut self, range: PageRange, cpu: CpuId) -> Result<(), HwError> {
        self.check_installed(range)?;
        if self.spurious {
            self.spurious = false;
            return Err(HwError::AccessDenied {
                requester: Requester::Cpu(cpu),
                page: range.start,
            });
        }
        for page in range.iter() {
            if self.table[page.0 as usize] != PageAccess::None {
                return Err(HwError::InvalidPageTransition { page });
            }
        }
        for page in range.iter() {
            self.table[page.0 as usize] = PageAccess::cpu(cpu);
        }
        Ok(())
    }

    /// `SFREE`/`SKILL` path: returns every page in `range` to `ALL`.
    ///
    /// # Errors
    ///
    /// [`HwError::AddressOutOfRange`] if the range is not installed.
    pub fn release_pages(&mut self, range: PageRange) -> Result<(), HwError> {
        self.check_installed(range)?;
        for page in range.iter() {
            self.table[page.0 as usize] = PageAccess::All;
        }
        Ok(())
    }

    /// Sets or clears the DEV (DMA-block) bit for every page in `range`.
    /// This is the *baseline* protection `SKINIT` programs for the SLB.
    ///
    /// # Errors
    ///
    /// [`HwError::AddressOutOfRange`] if the range is not installed.
    pub fn set_dev(&mut self, range: PageRange, blocked: bool) -> Result<(), HwError> {
        self.check_installed(range)?;
        for page in range.iter() {
            self.dev[page.0 as usize] = blocked;
        }
        Ok(())
    }

    /// Counts pages currently in each state `(all, cpu_only, none)` —
    /// useful for invariant checks in tests.
    pub fn state_census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for entry in &self.table {
            match entry {
                PageAccess::All => counts.0 += 1,
                PageAccess::Cpus(_) => counts.1 += 1,
                PageAccess::None => counts.2 += 1,
            }
        }
        counts
    }

    fn check_installed(&self, range: PageRange) -> Result<(), HwError> {
        let end = range.start.0 as u64 + range.count as u64;
        if end > self.table.len() as u64 {
            return Err(HwError::AddressOutOfRange {
                addr: range.base_addr(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DeviceId;

    fn mc() -> MemoryController {
        MemoryController::new(16)
    }

    fn range(start: u32, count: u32) -> PageRange {
        PageRange::new(PageIndex(start), count)
    }

    #[test]
    fn default_state_is_all_access() {
        let mc = mc();
        for p in 0..16 {
            assert_eq!(mc.access(PageIndex(p)), PageAccess::All);
            assert!(mc
                .check(Requester::Cpu(CpuId(0)), AccessKind::Write, PageIndex(p))
                .is_ok());
            assert!(mc
                .check(
                    Requester::Device(DeviceId(0)),
                    AccessKind::Read,
                    PageIndex(p)
                )
                .is_ok());
        }
    }

    #[test]
    fn protect_excludes_other_cpus_and_devices() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(1)).unwrap();
        assert!(mc
            .check(Requester::Cpu(CpuId(1)), AccessKind::Read, PageIndex(4))
            .is_ok());
        assert_eq!(
            mc.check(Requester::Cpu(CpuId(0)), AccessKind::Read, PageIndex(4)),
            Err(HwError::AccessDenied {
                requester: Requester::Cpu(CpuId(0)),
                page: PageIndex(4)
            })
        );
        assert!(mc
            .check(
                Requester::Device(DeviceId(0)),
                AccessKind::Write,
                PageIndex(5)
            )
            .is_err());
        // Pages outside the range unaffected.
        assert!(mc
            .check(Requester::Cpu(CpuId(0)), AccessKind::Read, PageIndex(6))
            .is_ok());
    }

    #[test]
    fn protect_conflict_is_atomic() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        // Overlapping protect fails...
        let err = mc.protect_for_cpu(range(3, 3), CpuId(1)).unwrap_err();
        assert!(matches!(err, HwError::PageConflict { page } if page == PageIndex(4)));
        // ...and page 3 was not modified (atomicity).
        assert_eq!(mc.access(PageIndex(3)), PageAccess::All);
    }

    #[test]
    fn suspend_then_nothing_can_access() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        mc.suspend_pages(range(4, 2), CpuId(0)).unwrap();
        for p in [4u32, 5] {
            assert_eq!(mc.access(PageIndex(p)), PageAccess::None);
            assert!(mc
                .check(Requester::Cpu(CpuId(0)), AccessKind::Read, PageIndex(p))
                .is_err());
            assert!(mc
                .check(
                    Requester::Device(DeviceId(0)),
                    AccessKind::Read,
                    PageIndex(p)
                )
                .is_err());
        }
    }

    #[test]
    fn only_owner_may_suspend() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        assert!(matches!(
            mc.suspend_pages(range(4, 2), CpuId(1)),
            Err(HwError::InvalidPageTransition { .. })
        ));
    }

    #[test]
    fn resume_can_move_to_a_different_cpu() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        mc.suspend_pages(range(4, 2), CpuId(0)).unwrap();
        mc.resume_pages(range(4, 2), CpuId(1)).unwrap();
        assert_eq!(mc.access(PageIndex(4)), PageAccess::cpu(CpuId(1)));
    }

    #[test]
    fn resume_fails_if_still_running_elsewhere() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        // Pages are owned by CPU 0, not NONE: a second resume must fail.
        assert!(matches!(
            mc.resume_pages(range(4, 2), CpuId(1)),
            Err(HwError::InvalidPageTransition { .. })
        ));
    }

    #[test]
    fn join_extends_owner_set() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        // Only an existing owner may initiate a join.
        assert!(matches!(
            mc.join_cpu(range(4, 2), CpuId(1), CpuId(2)),
            Err(HwError::InvalidPageTransition { .. })
        ));
        mc.join_cpu(range(4, 2), CpuId(0), CpuId(1)).unwrap();
        // Both CPUs now access; a third does not.
        for c in [CpuId(0), CpuId(1)] {
            assert!(mc
                .check(Requester::Cpu(c), AccessKind::Write, PageIndex(5))
                .is_ok());
        }
        assert!(mc
            .check(Requester::Cpu(CpuId(2)), AccessKind::Read, PageIndex(4))
            .is_err());
        // Devices remain excluded.
        assert!(mc
            .check(
                Requester::Device(DeviceId(0)),
                AccessKind::Read,
                PageIndex(4)
            )
            .is_err());
        // Either owner may suspend.
        mc.suspend_pages(range(4, 2), CpuId(1)).unwrap();
        assert_eq!(mc.access(PageIndex(4)), PageAccess::None);
        // Joining unowned (ALL or NONE) pages fails.
        assert!(mc.join_cpu(range(4, 2), CpuId(0), CpuId(1)).is_err());
        assert!(mc.join_cpu(range(10, 1), CpuId(0), CpuId(1)).is_err());
    }

    #[test]
    fn release_returns_to_all() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        mc.release_pages(range(4, 2)).unwrap();
        assert_eq!(mc.access(PageIndex(4)), PageAccess::All);
        assert_eq!(mc.state_census(), (16, 0, 0));
    }

    #[test]
    fn dev_blocks_dma_but_not_cpus() {
        let mut mc = mc();
        mc.set_dev(range(2, 1), true).unwrap();
        assert!(mc
            .check(
                Requester::Device(DeviceId(0)),
                AccessKind::Read,
                PageIndex(2)
            )
            .is_err());
        assert!(mc
            .check(Requester::Cpu(CpuId(0)), AccessKind::Write, PageIndex(2))
            .is_ok());
        mc.set_dev(range(2, 1), false).unwrap();
        assert!(mc
            .check(
                Requester::Device(DeviceId(0)),
                AccessKind::Read,
                PageIndex(2)
            )
            .is_ok());
    }

    #[test]
    fn out_of_range_operations_rejected() {
        let mut mc = mc();
        assert!(mc.protect_for_cpu(range(15, 2), CpuId(0)).is_err());
        assert!(mc.set_dev(range(16, 1), true).is_err());
        assert!(mc
            .check(Requester::Cpu(CpuId(0)), AccessKind::Read, PageIndex(16))
            .is_err());
    }

    #[test]
    fn census_counts_states() {
        let mut mc = mc();
        mc.protect_for_cpu(range(0, 3), CpuId(0)).unwrap();
        mc.protect_for_cpu(range(8, 2), CpuId(1)).unwrap();
        mc.suspend_pages(range(8, 2), CpuId(1)).unwrap();
        assert_eq!(mc.state_census(), (11, 3, 2));
    }
    #[test]
    fn spurious_denial_fires_once_and_modifies_nothing() {
        let mut mc = mc();
        mc.protect_for_cpu(range(4, 2), CpuId(0)).unwrap();
        mc.suspend_pages(range(4, 2), CpuId(0)).unwrap();
        mc.arm_spurious_denial();
        let err = mc.resume_pages(range(4, 2), CpuId(1)).unwrap_err();
        assert_eq!(
            err,
            HwError::AccessDenied {
                requester: Requester::Cpu(CpuId(1)),
                page: PageIndex(4)
            }
        );
        // Table untouched: the pages are still suspended...
        assert_eq!(mc.access(PageIndex(4)), PageAccess::None);
        // ...and the fault was one-shot: the retry succeeds.
        mc.resume_pages(range(4, 2), CpuId(1)).unwrap();
        assert_eq!(mc.access(PageIndex(4)), PageAccess::cpu(CpuId(1)));
        // Disarm clears a pending fault.
        mc.arm_spurious_denial();
        mc.disarm_spurious_denial();
        mc.suspend_pages(range(4, 2), CpuId(1)).unwrap();
        assert!(mc.resume_pages(range(4, 2), CpuId(1)).is_ok());
    }

    #[test]
    fn memorycontroller_is_send_sync() {
        // The concurrent session engine moves whole platforms across
        // worker threads; all state must be owned data.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemoryController>();
    }
}
