//! Deterministic fault injection for the hardware substrate.
//!
//! The paper's recommendations exist precisely because platforms
//! misbehave: TPM commands fail on the LPC bus, the memory controller
//! may deny an access the OS believed was granted, and the preemption
//! timer (§5.6) yanks a PAL off the CPU at an inconvenient moment. A
//! [`FaultPlan`] injects those events *deterministically*: every
//! decision is a pure function of `(plan seed, injection site, session
//! key, per-session sequence number)`, so the same plan replayed
//! against the same workload produces the same faults — on one worker
//! or sixteen, in any interleaving.
//!
//! The generator is the same xorshift64* tape the in-repo property-test
//! harness (`tests/common/`) uses, so a chaos test can hand a plan the
//! very bytes it is shrinking over.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Virtual-time cost of a TPM command attempt that dies on the bus: an
/// aborted LPC round trip. Charged by the session engine whenever an
/// injected transport fault fires, so recovery overhead is visible in
/// the clock without depending on which command was interrupted.
pub const TRANSPORT_FAULT_COST: SimDuration = SimDuration::from_us(20);

/// One injected hardware misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A TPM command attempt failed on the LPC transport. Retryable
    /// faults model bus glitches; non-retryable ones model a wedged
    /// chip that only a reboot clears.
    TpmTransport {
        /// Whether retrying the command can succeed.
        retryable: bool,
    },
    /// The memory controller spuriously denied a legitimate page-table
    /// transition (modeled on a transient TOCTOU window in the
    /// controller's update queue).
    MemDenial,
    /// The PAL preemption timer (§5.6) expired early, forcing a
    /// suspend before the PAL's slice was actually used up.
    TimerExpiry,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::TpmTransport { retryable: true } => write!(f, "tpm-transport (retryable)"),
            FaultKind::TpmTransport { retryable: false } => write!(f, "tpm-transport (fatal)"),
            FaultKind::MemDenial => write!(f, "mem-denial"),
            FaultKind::TimerExpiry => write!(f, "timer-expiry"),
        }
    }
}

/// Where in the session lifecycle a fault roll happens. Mixed into the
/// tape seed so the decision streams at different sites are
/// independent.
const SITE_TPM: u64 = 0x7470_6d00; // "tpm\0"
const SITE_MEM: u64 = 0x6d65_6d00; // "mem\0"
const SITE_TIMER: u64 = 0x7469_6d72; // "timr"

/// Denominator for all fault rates: rates are expressed in parts per
/// 65536 so plans stay integral and reproducible.
pub const RATE_DENOM: u32 = 65536;

// ---------------------------------------------------------------------
// xorshift64* — identical constants to tests/common/mod.rs, so a chaos
// test's shrinking tape and the plan's injection stream share one
// algebra.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct XorShift {
    pub(crate) state: u64,
}

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates are parts per [`RATE_DENOM`]. A roll at a given `(site, key,
/// seq)` triple always produces the same answer for the same plan; the
/// session engine keys rolls by session (job index) and a per-session
/// sequence counter, never by wall state, which is what makes a faulted
/// run byte-identical across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    tpm_rate: u32,
    mem_rate: u32,
    timer_rate: u32,
    fatal_ratio: u32,
    timer_budget: u32,
    scheduled: Vec<(SimTime, FaultKind)>,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero: injects nothing
    /// until rates are configured.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            tpm_rate: 0,
            mem_rate: 0,
            timer_rate: 0,
            fatal_ratio: 0,
            timer_budget: 4,
            scheduled: Vec::new(),
        }
    }

    /// The canonical no-fault plan.
    pub fn fault_free() -> Self {
        FaultPlan::new(0)
    }

    /// Sets the TPM transport-fault rate (parts per [`RATE_DENOM`],
    /// clamped).
    #[must_use]
    pub fn with_tpm_rate(mut self, rate: u32) -> Self {
        self.tpm_rate = rate.min(RATE_DENOM);
        self
    }

    /// Sets the spurious memory-denial rate (parts per [`RATE_DENOM`],
    /// clamped).
    #[must_use]
    pub fn with_mem_rate(mut self, rate: u32) -> Self {
        self.mem_rate = rate.min(RATE_DENOM);
        self
    }

    /// Sets the spurious preemption-timer-expiry rate (parts per
    /// [`RATE_DENOM`], clamped).
    #[must_use]
    pub fn with_timer_rate(mut self, rate: u32) -> Self {
        self.timer_rate = rate.min(RATE_DENOM);
        self
    }

    /// Sets the fraction of injected TPM transport faults that are
    /// *fatal* rather than retryable (parts per [`RATE_DENOM`],
    /// clamped).
    #[must_use]
    pub fn with_fatal_ratio(mut self, ratio: u32) -> Self {
        self.fatal_ratio = ratio.min(RATE_DENOM);
        self
    }

    /// Caps how many spurious timer expiries any single session can
    /// suffer, guaranteeing progress (default 4).
    #[must_use]
    pub fn with_timer_budget(mut self, budget: u32) -> Self {
        self.timer_budget = budget;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Max spurious timer expiries per session.
    pub fn timer_budget(&self) -> u32 {
        self.timer_budget
    }

    /// True if this plan can never inject anything.
    pub fn is_fault_free(&self) -> bool {
        self.tpm_rate == 0
            && self.mem_rate == 0
            && self.timer_rate == 0
            && self.scheduled.is_empty()
    }

    /// Pins a fault to a chosen virtual-time point. Scheduled faults
    /// are consumed in order by [`FaultPlan::take_due`]; they are meant
    /// for serial, single-worker scenarios where virtual time is a
    /// deterministic function of the workload.
    pub fn schedule_at(&mut self, at: SimTime, kind: FaultKind) {
        self.scheduled.push((at, kind));
        self.scheduled.sort_by_key(|(t, _)| t.as_ns());
    }

    /// Removes and returns every scheduled fault due at or before
    /// `now`.
    pub fn take_due(&mut self, now: SimTime) -> Vec<FaultKind> {
        let split = self.scheduled.partition_point(|(t, _)| *t <= now);
        self.scheduled.drain(..split).map(|(_, k)| k).collect()
    }

    fn roll(&self, site: u64, key: u64, seq: u64) -> XorShift {
        let mut x = XorShift::new(self.seed ^ site.rotate_left(17));
        // Mix in the session key and sequence number through the
        // generator itself so nearby (key, seq) pairs decorrelate.
        x.state ^= key.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        x.next_u64();
        x.state ^= seq.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(13);
        x.next_u64();
        x
    }

    /// Rolls for a TPM transport fault at `(key, seq)`. Returns the
    /// fault to inject, if any.
    pub fn roll_tpm_transport(&self, key: u64, seq: u64) -> Option<FaultKind> {
        if self.tpm_rate == 0 {
            return None;
        }
        let mut x = self.roll(SITE_TPM, key, seq);
        if x.next_u32() % RATE_DENOM >= self.tpm_rate {
            return None;
        }
        let retryable = x.next_u32() % RATE_DENOM >= self.fatal_ratio;
        Some(FaultKind::TpmTransport { retryable })
    }

    /// Rolls for a spurious memory-controller denial at `(key, seq)`.
    pub fn roll_mem_denial(&self, key: u64, seq: u64) -> bool {
        self.mem_rate != 0 && self.roll(SITE_MEM, key, seq).next_u32() % RATE_DENOM < self.mem_rate
    }

    /// Rolls for a spurious preemption-timer expiry at `(key, seq)`.
    pub fn roll_timer_expiry(&self, key: u64, seq: u64) -> bool {
        self.timer_rate != 0
            && self.roll(SITE_TIMER, key, seq).next_u32() % RATE_DENOM < self.timer_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let a = FaultPlan::new(42)
            .with_tpm_rate(20000)
            .with_mem_rate(20000)
            .with_timer_rate(20000)
            .with_fatal_ratio(8000);
        let b = a.clone();
        for key in 0..8u64 {
            for seq in 0..64u64 {
                assert_eq!(
                    a.roll_tpm_transport(key, seq),
                    b.roll_tpm_transport(key, seq)
                );
                assert_eq!(a.roll_mem_denial(key, seq), b.roll_mem_denial(key, seq));
                assert_eq!(a.roll_timer_expiry(key, seq), b.roll_timer_expiry(key, seq));
            }
        }
    }

    #[test]
    fn zero_rate_never_fires_full_rate_always_fires() {
        let zero = FaultPlan::new(7);
        let full = FaultPlan::new(7)
            .with_tpm_rate(RATE_DENOM)
            .with_mem_rate(RATE_DENOM)
            .with_timer_rate(RATE_DENOM);
        for seq in 0..256u64 {
            assert_eq!(zero.roll_tpm_transport(0, seq), None);
            assert!(!zero.roll_mem_denial(0, seq));
            assert!(!zero.roll_timer_expiry(0, seq));
            assert!(full.roll_tpm_transport(0, seq).is_some());
            assert!(full.roll_mem_denial(0, seq));
            assert!(full.roll_timer_expiry(0, seq));
        }
        assert!(zero.is_fault_free());
        assert!(!full.is_fault_free());
    }

    #[test]
    fn fatal_ratio_extremes() {
        let all_fatal = FaultPlan::new(9)
            .with_tpm_rate(RATE_DENOM)
            .with_fatal_ratio(RATE_DENOM);
        let none_fatal = FaultPlan::new(9).with_tpm_rate(RATE_DENOM);
        for seq in 0..64u64 {
            assert_eq!(
                all_fatal.roll_tpm_transport(3, seq),
                Some(FaultKind::TpmTransport { retryable: false })
            );
            assert_eq!(
                none_fatal.roll_tpm_transport(3, seq),
                Some(FaultKind::TpmTransport { retryable: true })
            );
        }
    }

    #[test]
    fn sites_and_keys_decorrelate() {
        // At a middling rate, different keys must not produce identical
        // fault streams (that would mean the key is ignored).
        let plan = FaultPlan::new(1234).with_tpm_rate(RATE_DENOM / 2);
        let stream = |key: u64| -> Vec<bool> {
            (0..128)
                .map(|seq| plan.roll_tpm_transport(key, seq).is_some())
                .collect()
        };
        assert_ne!(stream(0), stream(1));
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn scheduled_faults_drain_in_time_order() {
        let mut plan = FaultPlan::fault_free();
        plan.schedule_at(SimTime::from_ns(300), FaultKind::MemDenial);
        plan.schedule_at(
            SimTime::from_ns(100),
            FaultKind::TpmTransport { retryable: true },
        );
        assert!(!plan.is_fault_free());
        assert_eq!(
            plan.take_due(SimTime::from_ns(200)),
            vec![FaultKind::TpmTransport { retryable: true }]
        );
        assert_eq!(
            plan.take_due(SimTime::from_ns(400)),
            vec![FaultKind::MemDenial]
        );
        assert!(plan.take_due(SimTime::from_ns(500)).is_empty());
        assert!(plan.is_fault_free());
    }

    #[test]
    fn display_covers_all_kinds() {
        for (kind, needle) in [
            (
                FaultKind::TpmTransport { retryable: true },
                "tpm-transport (retryable)",
            ),
            (
                FaultKind::TpmTransport { retryable: false },
                "tpm-transport (fatal)",
            ),
            (FaultKind::MemDenial, "mem-denial"),
            (FaultKind::TimerExpiry, "timer-expiry"),
        ] {
            assert_eq!(kind.to_string(), needle);
        }
    }
}
