//! Deterministic network fault injection for the attestation wire.
//!
//! The fleet layer (`sea-fleet`) models the channel between a platform
//! and its remote verifier as a fixed 200µs one-way link. Real
//! networks are worse: wires get dropped, delayed, duplicated, and
//! reordered. A [`NetPlan`] injects those behaviors with the same
//! seeded-tape discipline as [`FaultPlan`](crate::FaultPlan): every
//! decision is a pure function of `(plan seed, injection site, request
//! key, attempt sequence)`, so a churned sweep replays byte-identically
//! on one shard or sixteen, under either executor, in any submission
//! order.
//!
//! The plan does not move bytes itself — it answers, for one
//! transmission, *when* (and whether, and how many times) the wire
//! arrives. [`NetPlan::deliveries`] returns the extra latency of every
//! copy the network delivers on top of the model's base one-way
//! latency; an empty list is a drop.

use std::fmt;

use crate::fault::{XorShift, RATE_DENOM};
use crate::time::SimDuration;

/// Default spread of an injected long delay: the extra latency rolled
/// for a *delayed* wire is uniform in `1..=spread`.
pub const NET_DELAY_SPREAD: SimDuration = SimDuration::from_us(500);

/// Default reorder window: a *reordered* wire picks up a small extra
/// latency in `1..=window`, enough to land behind its successors
/// without looking like a routing anomaly.
pub const NET_REORDER_WINDOW: SimDuration = SimDuration::from_us(60);

/// Default gap between the two copies of a duplicated wire.
pub const NET_DUPLICATE_GAP: SimDuration = SimDuration::from_us(40);

/// What the network decided to do with one transmitted wire. Purely
/// informational — [`NetPlan::deliveries`] already folds the decision
/// into arrival offsets — but useful for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetFault {
    /// The wire was dropped; no copy arrives.
    Dropped,
    /// The wire arrives once, late by the carried extra nanoseconds.
    Delayed(u64),
    /// The wire arrives twice: once on time, once after the carried
    /// gap in nanoseconds.
    Duplicated(u64),
    /// The wire picked up a small extra latency (nanoseconds) intended
    /// to land it behind later transmissions.
    Reordered(u64),
}

impl fmt::Display for NetFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFault::Dropped => write!(f, "dropped"),
            NetFault::Delayed(ns) => write!(f, "delayed +{ns}ns"),
            NetFault::Duplicated(ns) => write!(f, "duplicated (+{ns}ns gap)"),
            NetFault::Reordered(ns) => write!(f, "reordered +{ns}ns"),
        }
    }
}

// Injection sites, mixed into the tape seed so the four decision
// streams are independent of each other and of `FaultPlan`'s sites.
const SITE_NET_DROP: u64 = 0x6e64_7270; // "ndrp"
const SITE_NET_DELAY: u64 = 0x6e64_6c79; // "ndly"
const SITE_NET_DUP: u64 = 0x6e64_7570; // "ndup"
const SITE_NET_ORD: u64 = 0x6e6f_7264; // "nord"

/// A seeded, deterministic network-fault plan for wire quotes.
///
/// Rates are parts per [`RATE_DENOM`], exactly like
/// [`FaultPlan`](crate::FaultPlan). Faults compose per transmission in
/// a fixed precedence: a dropped wire can be neither delayed nor
/// duplicated; a delayed wire is not additionally reordered (the long
/// delay subsumes the short one); duplication composes with either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPlan {
    seed: u64,
    drop_rate: u32,
    delay_rate: u32,
    dup_rate: u32,
    reorder_rate: u32,
    delay_spread_ns: u64,
    reorder_window_ns: u64,
    duplicate_gap_ns: u64,
}

impl NetPlan {
    /// A plan with the given seed and all rates zero: every wire
    /// arrives exactly once with no extra latency.
    pub fn new(seed: u64) -> Self {
        NetPlan {
            seed,
            drop_rate: 0,
            delay_rate: 0,
            dup_rate: 0,
            reorder_rate: 0,
            delay_spread_ns: NET_DELAY_SPREAD.as_ns(),
            reorder_window_ns: NET_REORDER_WINDOW.as_ns(),
            duplicate_gap_ns: NET_DUPLICATE_GAP.as_ns(),
        }
    }

    /// The canonical perfect network.
    pub fn lossless() -> Self {
        NetPlan::new(0)
    }

    /// Sets the drop rate (parts per [`RATE_DENOM`], clamped).
    #[must_use]
    pub fn with_drop_rate(mut self, rate: u32) -> Self {
        self.drop_rate = rate.min(RATE_DENOM);
        self
    }

    /// Sets the long-delay rate (parts per [`RATE_DENOM`], clamped).
    #[must_use]
    pub fn with_delay_rate(mut self, rate: u32) -> Self {
        self.delay_rate = rate.min(RATE_DENOM);
        self
    }

    /// Sets the duplication rate (parts per [`RATE_DENOM`], clamped).
    #[must_use]
    pub fn with_duplicate_rate(mut self, rate: u32) -> Self {
        self.dup_rate = rate.min(RATE_DENOM);
        self
    }

    /// Sets the reorder rate (parts per [`RATE_DENOM`], clamped).
    #[must_use]
    pub fn with_reorder_rate(mut self, rate: u32) -> Self {
        self.reorder_rate = rate.min(RATE_DENOM);
        self
    }

    /// Sets the spread of injected long delays (extra latency is
    /// uniform in `1..=spread`).
    #[must_use]
    pub fn with_delay_spread(mut self, spread: SimDuration) -> Self {
        self.delay_spread_ns = spread.as_ns().max(1);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if this plan can never perturb a delivery.
    pub fn is_lossless(&self) -> bool {
        self.drop_rate == 0 && self.delay_rate == 0 && self.dup_rate == 0 && self.reorder_rate == 0
    }

    fn roll(&self, site: u64, key: u64, seq: u64) -> XorShift {
        // Same mixing discipline as FaultPlan::roll so the two plans'
        // streams share an algebra but never collide (distinct sites).
        let mut x = XorShift::new(self.seed ^ site.rotate_left(17));
        x.state ^= key.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        x.next_u64();
        x.state ^= seq.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(13);
        x.next_u64();
        x
    }

    fn rate_hit(&self, site: u64, key: u64, seq: u64, rate: u32) -> Option<XorShift> {
        if rate == 0 {
            return None;
        }
        let mut x = self.roll(site, key, seq);
        if x.next_u32() % RATE_DENOM < rate {
            Some(x)
        } else {
            None
        }
    }

    /// The faults the network applies to transmission `(key, seq)`,
    /// in the plan's fixed precedence order. Empty means an on-time,
    /// single-copy delivery.
    pub fn roll_faults(&self, key: u64, seq: u64) -> Vec<NetFault> {
        if self
            .rate_hit(SITE_NET_DROP, key, seq, self.drop_rate)
            .is_some()
        {
            return vec![NetFault::Dropped];
        }
        let mut faults = Vec::new();
        if let Some(mut x) = self.rate_hit(SITE_NET_DELAY, key, seq, self.delay_rate) {
            faults.push(NetFault::Delayed(
                1 + x.next_u64() % self.delay_spread_ns.max(1),
            ));
        } else if let Some(mut x) = self.rate_hit(SITE_NET_ORD, key, seq, self.reorder_rate) {
            faults.push(NetFault::Reordered(
                1 + x.next_u64() % self.reorder_window_ns.max(1),
            ));
        }
        if self
            .rate_hit(SITE_NET_DUP, key, seq, self.dup_rate)
            .is_some()
        {
            faults.push(NetFault::Duplicated(self.duplicate_gap_ns));
        }
        faults
    }

    /// Arrival offsets (extra nanoseconds on top of the base one-way
    /// latency) for every copy of transmission `(key, seq)` the network
    /// delivers, sorted ascending. Empty means the wire was dropped.
    pub fn deliveries(&self, key: u64, seq: u64) -> Vec<u64> {
        let mut extra = 0u64;
        let mut copies = vec![];
        let mut dup_gap = None;
        for fault in self.roll_faults(key, seq) {
            match fault {
                NetFault::Dropped => return Vec::new(),
                NetFault::Delayed(ns) | NetFault::Reordered(ns) => extra += ns,
                NetFault::Duplicated(gap) => dup_gap = Some(gap),
            }
        }
        copies.push(extra);
        if let Some(gap) = dup_gap {
            copies.push(extra + gap);
        }
        copies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_delivers_exactly_once_on_time() {
        let plan = NetPlan::lossless();
        assert!(plan.is_lossless());
        for seq in 0..64u64 {
            assert_eq!(plan.deliveries(9, seq), vec![0]);
            assert!(plan.roll_faults(9, seq).is_empty());
        }
    }

    #[test]
    fn rolls_are_deterministic() {
        let a = NetPlan::new(0xC0FFEE)
            .with_drop_rate(9000)
            .with_delay_rate(9000)
            .with_duplicate_rate(9000)
            .with_reorder_rate(9000);
        let b = a.clone();
        for key in 0..8u64 {
            for seq in 0..32u64 {
                assert_eq!(a.deliveries(key, seq), b.deliveries(key, seq));
                assert_eq!(a.roll_faults(key, seq), b.roll_faults(key, seq));
            }
        }
    }

    #[test]
    fn full_drop_rate_drops_everything() {
        let plan = NetPlan::new(3).with_drop_rate(RATE_DENOM);
        for seq in 0..64u64 {
            assert!(plan.deliveries(0, seq).is_empty());
            assert_eq!(plan.roll_faults(0, seq), vec![NetFault::Dropped]);
        }
    }

    #[test]
    fn full_duplicate_rate_delivers_twice_with_gap() {
        let plan = NetPlan::new(3).with_duplicate_rate(RATE_DENOM);
        for seq in 0..64u64 {
            let copies = plan.deliveries(5, seq);
            assert_eq!(copies.len(), 2);
            assert_eq!(copies[1] - copies[0], NET_DUPLICATE_GAP.as_ns());
        }
    }

    #[test]
    fn delay_is_bounded_by_spread_and_nonzero() {
        let spread = SimDuration::from_us(10);
        let plan = NetPlan::new(11)
            .with_delay_rate(RATE_DENOM)
            .with_delay_spread(spread);
        let mut seen = std::collections::BTreeSet::new();
        for seq in 0..256u64 {
            let copies = plan.deliveries(2, seq);
            assert_eq!(copies.len(), 1);
            assert!(copies[0] >= 1 && copies[0] <= spread.as_ns());
            seen.insert(copies[0]);
        }
        // The jitter must actually vary (a constant delay is not a
        // fault model, it is a latency constant).
        assert!(seen.len() > 32);
    }

    #[test]
    fn reorder_jitter_is_smaller_than_delay_jitter_window() {
        let plan = NetPlan::new(17).with_reorder_rate(RATE_DENOM);
        for seq in 0..128u64 {
            let copies = plan.deliveries(4, seq);
            assert_eq!(copies.len(), 1);
            assert!(copies[0] >= 1 && copies[0] <= NET_REORDER_WINDOW.as_ns());
        }
    }

    #[test]
    fn drop_precedence_subsumes_everything_else() {
        let plan = NetPlan::new(23)
            .with_drop_rate(RATE_DENOM)
            .with_delay_rate(RATE_DENOM)
            .with_duplicate_rate(RATE_DENOM)
            .with_reorder_rate(RATE_DENOM);
        for seq in 0..32u64 {
            assert!(plan.deliveries(0, seq).is_empty());
        }
    }

    #[test]
    fn keys_decorrelate() {
        let plan = NetPlan::new(0xABCD).with_drop_rate(RATE_DENOM / 2);
        let stream = |key: u64| -> Vec<bool> {
            (0..128)
                .map(|seq| plan.deliveries(key, seq).is_empty())
                .collect()
        };
        assert_ne!(stream(0), stream(1));
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn display_covers_all_faults() {
        for (fault, needle) in [
            (NetFault::Dropped, "dropped"),
            (NetFault::Delayed(5), "delayed"),
            (NetFault::Duplicated(5), "duplicated"),
            (NetFault::Reordered(5), "reordered"),
        ] {
            assert!(fault.to_string().contains(needle));
        }
    }
}
