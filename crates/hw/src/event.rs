//! Deterministic discrete-event queue for virtual-time execution.
//!
//! The thread-pool engine orders concurrent work by lock acquisition:
//! whichever OS thread wins the TPM lock or the journal commit gate
//! goes first, and determinism is *enforced* by folding every
//! worker-visible quantity back into interleaving-invariant form. A
//! discrete-event executor inverts that: there are no OS threads, only
//! events on a virtual timeline, and ordering is *structural* — events
//! fire in `(time, id)` order, period.
//!
//! [`EventQueue`] is the one source of that ordering. The tie-break
//! contract (documented in DESIGN.md and pinned by the property suite):
//!
//! 1. earlier [`SimTime`] fires first;
//! 2. at equal times, the **lower event id** (session id, for the
//!    executor) fires first;
//! 3. at equal `(time, id)` — e.g. a session re-scheduling itself at
//!    zero cost — insertion order is preserved (FIFO).
//!
//! Nothing here consults wall-clock time, thread identity, or map
//! iteration order, so a queue replayed from the same schedule calls is
//! byte-identical on every host.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One scheduled event: a payload due at `at`, ordered by
/// `(at, id, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// Virtual due time.
    pub at: SimTime,
    /// Tie-break identity (the executor uses the session id).
    pub id: u64,
    /// Caller payload.
    pub payload: T,
    seq: u64,
}

impl<T> Event<T> {
    /// Insertion sequence number (the final FIFO tie-break).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

// BinaryHeap is a max-heap; invert so the *earliest* (time, id, seq)
// is the maximum. Ordering deliberately ignores the payload.
impl<T: Eq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.id, other.seq).cmp(&(self.at, self.id, self.seq))
    }
}

impl<T: Eq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic virtual-time event queue.
///
/// # Example
///
/// ```
/// use sea_hw::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(20), 0, "late");
/// q.schedule(SimTime::from_ns(10), 7, "tied-high");
/// q.schedule(SimTime::from_ns(10), 3, "tied-low");
/// assert_eq!(q.pop().unwrap().payload, "tied-low");
/// assert_eq!(q.pop().unwrap().payload, "tied-high");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T: Eq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> EventQueue<T> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `at` with tie-break identity
    /// `id`. Scheduling in the past is clamped to `now` — an event can
    /// never fire before the queue's current time.
    pub fn schedule(&mut self, at: SimTime, id: u64, payload: T) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            id,
            payload,
            seq,
        });
    }

    /// Removes and returns the next event in `(time, id, insertion)`
    /// order, advancing the queue's clock to its due time.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Due time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// `(time, id)` of the next event without removing it.
    ///
    /// Fleet-level routing uses this to merge many platform timelines
    /// into one deterministic arrival order: each platform's completion
    /// events are scheduled here, and whichever `(time, id)` is at the
    /// head is the next request the verifier sees — independent of the
    /// order the platforms were simulated in.
    pub fn peek(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.at, e.id))
    }

    /// The queue's current virtual time: the due time of the last event
    /// popped ([`SimTime::ZERO`] before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains the queue in firing order (consumes all pending events).
    pub fn drain_ordered(&mut self) -> Vec<Event<T>> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_id_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), 9, "t5-id9");
        q.schedule(SimTime::from_ns(5), 2, "t5-id2-first");
        q.schedule(SimTime::from_ns(1), 40, "t1");
        q.schedule(SimTime::from_ns(5), 2, "t5-id2-second");
        let fired: Vec<&str> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(fired, ["t1", "t5-id2-first", "t5-id2-second", "t5-id9"]);
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(100), 0, ());
        assert_eq!(q.pop().unwrap().at, SimTime::from_ns(100));
        // Scheduling "in the past" clamps to now.
        q.schedule(SimTime::from_ns(3), 1, ());
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_ns(100));
        assert_eq!(q.now(), SimTime::from_ns(100));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_us(7);
        q.schedule(t, 3, 'a');
        assert_eq!(q.peek_time(), Some(t));
        assert_eq!(q.len(), 1);
        let e = q.pop().unwrap();
        assert_eq!((e.at, e.id, e.payload), (t, 3, 'a'));
        assert!(q.is_empty());
    }
}
