//! Wire protocol of the distributed-factoring PAL (§4.1).
//!
//! "An application performing a distributed computing task (such as our
//! factoring application or SETI@Home) might perform a limited amount of
//! work and then seal its intermediate state so that it can later resume
//! its computations." (§4.1)
//!
//! The PAL factors a semiprime by trial division, a bounded number of
//! candidate divisors per invocation. Where the intermediate state lives
//! is the paper's whole point:
//!
//! * [`PersistMode::TpmSeal`] (baseline): progress is `TPM_Seal`ed on
//!   every exit and `TPM_Unseal`ed on every entry — hundreds of
//!   milliseconds per quantum (Figure 2's PAL-Use pattern).
//! * [`PersistMode::InRegion`] (proposed): progress lives in the PAL's
//!   protected pages across `SYIELD`/resume — the TPM is not involved
//!   after launch.
//!
//! Two implementations share this protocol: the executed-bytecode PAL
//! ([`crate::vm::vm_factoring`]) and, behind the `cost-model` feature,
//! the original constant-cost twin ([`crate::FactoringPal`]).

#[cfg(any(test, feature = "cost-model"))]
use sea_core::SeaError;

/// Where the PAL persists progress between execution quanta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistMode {
    /// Baseline hardware: TPM sealed storage across full sessions.
    TpmSeal,
    /// Proposed hardware: protected in-region state across suspends.
    InRegion,
}

#[cfg(any(test, feature = "cost-model"))]
pub(crate) fn encode_progress(candidate: u64) -> Vec<u8> {
    candidate.to_le_bytes().to_vec()
}

#[cfg(any(test, feature = "cost-model"))]
pub(crate) fn decode_progress(bytes: &[u8]) -> Result<u64, SeaError> {
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| SeaError::PalFailed("corrupt factoring progress".into()))?;
    Ok(u64::from_le_bytes(arr))
}

/// Decodes a completed run's output back into the factor pair.
pub fn decode_factors(output: &[u8]) -> Option<(u64, u64)> {
    if output.len() != 16 {
        return None;
    }
    let p = u64::from_le_bytes(output[..8].try_into().ok()?);
    let q = u64::from_le_bytes(output[8..].try_into().ok()?);
    Some((p, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_factors_validates_length() {
        assert_eq!(decode_factors(&[]), None);
        assert_eq!(decode_factors(&[0; 15]), None);
        assert!(decode_factors(&[0; 16]).is_some());
    }

    #[test]
    fn progress_roundtrip() {
        assert_eq!(decode_progress(&encode_progress(12345)).unwrap(), 12345);
        assert!(decode_progress(&[0; 7]).is_err());
    }
}
