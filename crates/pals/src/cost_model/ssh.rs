//! Cost-model twin of the SSH password PAL: native Rust logic with a
//! `ctx.work` charge standing in for the hashing time.

use sea_core::{PalCtx, PalLogic, PalOutcome, SeaError};
use sea_hw::SimDuration;
use sea_tpm::SealedBlob;

use crate::ssh::{salted_digest, SshRequest, SALT_LEN};

/// Modelled compute time for salting + hashing a password.
const HASH_WORK: SimDuration = SimDuration::from_us(50);

/// The SSH password PAL. Holds the sealed verifier record between
/// sessions (the untrusted OS's custodial role).
#[derive(Debug, Default)]
pub struct SshPassword {
    sealed_record: Option<SealedBlob>,
}

impl SshPassword {
    /// Creates the PAL with no enrolled password.
    pub fn new() -> Self {
        SshPassword {
            sealed_record: None,
        }
    }

    /// Whether a password has been enrolled.
    pub fn has_record(&self) -> bool {
        self.sealed_record.is_some()
    }
}

impl PalLogic for SshPassword {
    fn name(&self) -> &str {
        "ssh-password"
    }

    fn image(&self) -> Vec<u8> {
        b"PAL:ssh-password:v1".to_vec()
    }

    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError> {
        match SshRequest::parse(ctx.input())? {
            SshRequest::Enroll(password) => {
                let salt = ctx.random(SALT_LEN)?;
                let digest = salted_digest(&salt, &password);
                ctx.work(HASH_WORK);
                let mut record = salt;
                record.extend_from_slice(&digest);
                self.sealed_record = Some(ctx.seal(&record)?);
                Ok(PalOutcome::Exit(vec![1]))
            }
            SshRequest::Verify(attempt) => {
                let blob = self
                    .sealed_record
                    .as_ref()
                    .ok_or_else(|| SeaError::PalFailed("no password enrolled".into()))?;
                let record = ctx.unseal(blob)?;
                if record.len() != SALT_LEN + 20 {
                    return Err(SeaError::PalFailed("corrupt password record".into()));
                }
                let (salt, stored) = record.split_at(SALT_LEN);
                let candidate = salted_digest(salt, &attempt);
                ctx.work(HASH_WORK);
                // Full-scan comparison: no early exit on first mismatch.
                let mut diff = 0u8;
                for (a, b) in candidate.iter().zip(stored) {
                    diff |= a ^ b;
                }
                Ok(PalOutcome::Exit(vec![u8::from(diff == 0)]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{EnhancedSea, LegacySea, SecurePlatform};
    use sea_hw::{CpuId, Platform};
    use sea_tpm::KeyStrength;

    fn legacy() -> LegacySea {
        LegacySea::new(SecurePlatform::new(
            Platform::hp_dc5750(),
            KeyStrength::Demo512,
            b"ssh",
        ))
        .unwrap()
    }

    #[test]
    fn enroll_then_verify_legacy() {
        let mut sea = legacy();
        let mut pal = SshPassword::new();
        let r = sea
            .run_session(
                &mut pal,
                &SshRequest::Enroll(b"hunter2".to_vec()).to_bytes(),
            )
            .unwrap();
        assert_eq!(r.output, Some(vec![1]));
        assert!(pal.has_record());

        let good = sea
            .run_session(
                &mut pal,
                &SshRequest::Verify(b"hunter2".to_vec()).to_bytes(),
            )
            .unwrap();
        assert_eq!(good.output, Some(vec![1]));
        // Verify sessions unseal but never reseal.
        assert!(good.report.unseal > SimDuration::ZERO);
        assert_eq!(good.report.seal, SimDuration::ZERO);

        let bad = sea
            .run_session(
                &mut pal,
                &SshRequest::Verify(b"letmein".to_vec()).to_bytes(),
            )
            .unwrap();
        assert_eq!(bad.output, Some(vec![0]));
    }

    #[test]
    fn enroll_then_verify_enhanced() {
        let mut sea = EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(2),
            KeyStrength::Demo512,
            b"ssh-e",
        ))
        .unwrap();
        let mut pal = SshPassword::new();
        let id = sea
            .slaunch(
                &mut pal,
                &SshRequest::Enroll(b"pw".to_vec()).to_bytes(),
                CpuId(0),
                None,
            )
            .unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        assert_eq!(done.output, vec![1]);
        sea.quote_and_free(id, b"n").unwrap();

        let id = sea
            .slaunch(
                &mut pal,
                &SshRequest::Verify(b"pw".to_vec()).to_bytes(),
                CpuId(1),
                None,
            )
            .unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(1)).unwrap();
        assert_eq!(done.output, vec![1]);
    }

    #[test]
    fn verify_without_enrollment_fails() {
        let mut sea = legacy();
        let mut pal = SshPassword::new();
        assert!(sea
            .run_session(&mut pal, &SshRequest::Verify(b"x".to_vec()).to_bytes())
            .is_err());
    }

    #[test]
    fn empty_password_is_enrollable_and_distinct() {
        let mut sea = legacy();
        let mut pal = SshPassword::new();
        sea.run_session(&mut pal, &SshRequest::Enroll(Vec::new()).to_bytes())
            .unwrap();
        let good = sea
            .run_session(&mut pal, &SshRequest::Verify(Vec::new()).to_bytes())
            .unwrap();
        assert_eq!(good.output, Some(vec![1]));
        let bad = sea
            .run_session(&mut pal, &SshRequest::Verify(b"a".to_vec()).to_bytes())
            .unwrap();
        assert_eq!(bad.output, Some(vec![0]));
    }

    #[test]
    fn malformed_request_rejected() {
        let mut sea = legacy();
        let mut pal = SshPassword::new();
        assert!(sea.run_session(&mut pal, b"").is_err());
        assert!(sea.run_session(&mut pal, &[0x07, 1, 2]).is_err());
    }
}
