//! Cost-model twin of the distributed-factoring PAL: native Rust trial
//! division with a `ctx.work` charge per tested candidate.

use sea_core::{PalCtx, PalLogic, PalOutcome, SeaError};
use sea_hw::SimDuration;
use sea_tpm::SealedBlob;

use crate::factoring::{decode_progress, encode_progress, PersistMode};

/// Modelled cost of testing one candidate divisor.
const NS_PER_CANDIDATE: u64 = 10;

/// The factoring worker PAL.
///
/// Construct with [`FactoringPal::new`], then drive it repeatedly under
/// a SEA runtime; [`FactoringPal::factors`] yields the result once a
/// session returns them.
///
/// # Example
///
/// See `examples/distributed_factoring.rs` for the full workflow.
#[derive(Debug)]
pub struct FactoringPal {
    n: u64,
    candidates_per_quantum: u64,
    mode: PersistMode,
    /// The opaque sealed progress blob, held *by the untrusted OS*
    /// between baseline sessions.
    sealed_progress: Option<SealedBlob>,
    factors: Option<(u64, u64)>,
}

impl FactoringPal {
    /// Creates a worker that factors `n`, testing at most
    /// `candidates_per_quantum` divisors per invocation.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `candidates_per_quantum == 0`.
    pub fn new(n: u64, candidates_per_quantum: u64, mode: PersistMode) -> Self {
        assert!(n >= 4, "nothing to factor");
        assert!(candidates_per_quantum > 0, "quantum must make progress");
        FactoringPal {
            n,
            candidates_per_quantum,
            mode,
            sealed_progress: None,
            factors: None,
        }
    }

    /// The factors, once found.
    pub fn factors(&self) -> Option<(u64, u64)> {
        self.factors
    }

    /// Whether a sealed progress blob is currently held (baseline mode).
    pub fn has_sealed_progress(&self) -> bool {
        self.sealed_progress.is_some()
    }

    fn search(&self, mut candidate: u64) -> (u64, Option<(u64, u64)>, u64) {
        let mut tested = 0u64;
        while tested < self.candidates_per_quantum {
            if candidate.saturating_mul(candidate) > self.n {
                // Exhausted: n is prime; report (1, n).
                return (candidate, Some((1, self.n)), tested);
            }
            if self.n.is_multiple_of(candidate) {
                return (candidate, Some((candidate, self.n / candidate)), tested + 1);
            }
            candidate += 1;
            tested += 1;
        }
        (candidate, None, tested)
    }
}

impl PalLogic for FactoringPal {
    fn name(&self) -> &str {
        "distributed-factoring"
    }

    fn image(&self) -> Vec<u8> {
        // The target n and quantum are configuration compiled into the
        // worker image: sealing binds progress to this exact job.
        let mut image = b"PAL:factoring:v1:".to_vec();
        image.extend_from_slice(&self.n.to_le_bytes());
        image.extend_from_slice(&self.candidates_per_quantum.to_le_bytes());
        image
    }

    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError> {
        // Recover progress.
        let start = match self.mode {
            PersistMode::InRegion => {
                if ctx.state().is_empty() {
                    2
                } else {
                    decode_progress(ctx.state())?
                }
            }
            PersistMode::TpmSeal => match &self.sealed_progress {
                None => 2,
                Some(blob) => decode_progress(&ctx.unseal(blob)?)?,
            },
        };

        let (next, found, tested) = self.search(start);
        ctx.work(SimDuration::from_ns(tested * NS_PER_CANDIDATE));

        if let Some((p, q)) = found {
            self.factors = Some((p, q));
            self.sealed_progress = None;
            ctx.set_state(Vec::new());
            let mut out = p.to_le_bytes().to_vec();
            out.extend_from_slice(&q.to_le_bytes());
            return Ok(PalOutcome::Exit(out));
        }

        // Not done: persist progress per mode and relinquish the CPU.
        match self.mode {
            PersistMode::InRegion => {
                ctx.set_state(encode_progress(next));
                Ok(PalOutcome::Yield)
            }
            PersistMode::TpmSeal => {
                self.sealed_progress = Some(ctx.seal(&encode_progress(next))?);
                // On baseline hardware, "yielding" is exiting: the next
                // quantum is a fresh late launch.
                Ok(PalOutcome::Exit(Vec::new()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factoring::decode_factors;
    use sea_core::{EnhancedSea, LegacySea, SecurePlatform};
    use sea_hw::{CpuId, Platform};
    use sea_tpm::KeyStrength;

    const N: u64 = 101 * 103; // 10403

    #[test]
    fn factors_on_proposed_hardware_without_sealing() {
        let mut sea = EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(2),
            KeyStrength::Demo512,
            b"fact",
        ))
        .unwrap();
        let mut pal = FactoringPal::new(N, 10, PersistMode::InRegion);
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        assert_eq!(decode_factors(&done.output), Some((101, 103)));
        // ~100 candidates at 10/quantum → ~10 suspend/resume cycles, and
        // zero TPM sealing.
        assert_eq!(done.report.seal, SimDuration::ZERO);
        assert_eq!(done.report.unseal, SimDuration::ZERO);
        assert!(done.report.context_switch > SimDuration::ZERO);
    }

    #[test]
    fn factors_on_baseline_with_sealed_progress() {
        let mut sea = LegacySea::new(SecurePlatform::new(
            Platform::hp_dc5750(),
            KeyStrength::Demo512,
            b"fact-legacy",
        ))
        .unwrap();
        let mut pal = FactoringPal::new(N, 40, PersistMode::TpmSeal);
        let mut sessions = 0;
        let factors = loop {
            sessions += 1;
            let r = sea.run_session(&mut pal, b"").unwrap();
            let out = r.output.expect("baseline PALs always exit");
            if let Some(f) = decode_factors(&out) {
                break f;
            }
            assert!(pal.has_sealed_progress());
            // Every non-final session paid for a Seal; every session
            // after the first paid for an Unseal.
            assert!(r.report.seal > SimDuration::ZERO);
            if sessions > 1 {
                assert!(r.report.unseal > SimDuration::ZERO);
            }
            assert!(sessions < 100, "runaway");
        };
        assert_eq!(factors, (101, 103));
        assert!(sessions >= 3, "work was actually split across sessions");
        assert_eq!(pal.factors(), Some((101, 103)));
    }

    #[test]
    fn prime_input_reports_trivial_factorization() {
        let mut sea = EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(2),
            KeyStrength::Demo512,
            b"fact-prime",
        ))
        .unwrap();
        let mut pal = FactoringPal::new(10007, 10_000, PersistMode::InRegion);
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        assert_eq!(decode_factors(&done.output), Some((1, 10007)));
    }

    #[test]
    fn even_number_factors_immediately() {
        let (next, found, tested) = FactoringPal::new(1000, 5, PersistMode::InRegion).search(2);
        assert_eq!(found, Some((2, 500)));
        assert_eq!(tested, 1);
        assert_eq!(next, 2);
    }

    #[test]
    fn image_is_job_specific() {
        let a = FactoringPal::new(N, 10, PersistMode::InRegion);
        let b = FactoringPal::new(N + 2, 10, PersistMode::InRegion);
        assert_ne!(a.image(), b.image());
    }

    #[test]
    #[should_panic(expected = "nothing to factor")]
    fn tiny_n_panics() {
        let _ = FactoringPal::new(3, 10, PersistMode::InRegion);
    }

    #[test]
    #[should_panic(expected = "quantum must make progress")]
    fn zero_quantum_panics() {
        let _ = FactoringPal::new(100, 0, PersistMode::InRegion);
    }
}
