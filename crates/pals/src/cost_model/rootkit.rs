//! Cost-model twin of the rootkit-detector PAL: native Rust hashing
//! with a `ctx.work` charge modelling the scan throughput.

use sea_core::{PalCtx, PalLogic, PalOutcome, SeaError};
use sea_crypto::{Sha1, Sha1Digest};
use sea_hw::SimDuration;

use crate::rootkit::RootkitVerdict;

/// The rootkit-detector PAL.
///
/// # Example
///
/// ```
/// use sea_pals::{RootkitDetector, RootkitVerdict};
/// use sea_core::{LegacySea, SecurePlatform};
/// use sea_hw::Platform;
/// use sea_tpm::KeyStrength;
///
/// # fn main() -> Result<(), sea_core::SeaError> {
/// let kernel = b"vmlinuz-2.6.23 text segment".to_vec();
/// let mut detector = RootkitDetector::new(&[&kernel]);
///
/// let platform = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"rk");
/// let mut sea = LegacySea::new(platform)?;
/// let result = sea.run_session(&mut detector, &kernel)?;
/// assert_eq!(
///     RootkitVerdict::from_byte(result.output.unwrap()[0]),
///     Some(RootkitVerdict::Clean)
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RootkitDetector {
    whitelist: Vec<Sha1Digest>,
}

/// Modelled hashing throughput of the PAL over the snapshot: ~1 GB/s
/// (1 ns per byte) of SHA-1 on a 2007-class core.
const HASH_NS_PER_BYTE: u64 = 1;

impl RootkitDetector {
    /// Creates a detector trusting exactly the given kernel images.
    pub fn new(known_good_kernels: &[&[u8]]) -> Self {
        RootkitDetector {
            whitelist: known_good_kernels.iter().map(|k| Sha1::digest(k)).collect(),
        }
    }

    /// Creates a detector from precomputed whitelist digests.
    pub fn from_digests(whitelist: Vec<Sha1Digest>) -> Self {
        RootkitDetector { whitelist }
    }

    /// Number of whitelisted builds.
    pub fn whitelist_len(&self) -> usize {
        self.whitelist.len()
    }
}

impl PalLogic for RootkitDetector {
    fn name(&self) -> &str {
        "rootkit-detector"
    }

    fn image(&self) -> Vec<u8> {
        // The whitelist is part of the measured code+data image: a
        // detector trusting different kernels is *different code* to the
        // attestation machinery.
        let mut image = b"PAL:rootkit-detector:v1:".to_vec();
        for d in &self.whitelist {
            image.extend_from_slice(d);
        }
        image
    }

    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError> {
        let snapshot = ctx.input().to_vec();
        let digest = Sha1::digest(&snapshot);
        // Account the hashing work.
        ctx.work(SimDuration::from_ns(
            snapshot.len() as u64 * HASH_NS_PER_BYTE,
        ));
        // Bind the scanned snapshot into the attestation: the verifier
        // learns which snapshot the verdict refers to.
        ctx.measure_input(&digest)?;
        let verdict = if self.whitelist.contains(&digest) {
            RootkitVerdict::Clean
        } else {
            RootkitVerdict::Tampered
        };
        Ok(PalOutcome::Exit(vec![verdict.to_byte()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{EnhancedSea, SecurePlatform, Verifier};
    use sea_hw::{CpuId, Platform};
    use sea_tpm::KeyStrength;

    fn enhanced() -> EnhancedSea {
        EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(2),
            KeyStrength::Demo512,
            b"rootkit",
        ))
        .unwrap()
    }

    #[test]
    fn clean_kernel_reported_clean() {
        let kernel = b"known good kernel".to_vec();
        let mut det = RootkitDetector::new(&[&kernel]);
        let mut sea = enhanced();
        let id = sea.slaunch(&mut det, &kernel, CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut det, id, CpuId(0)).unwrap();
        assert_eq!(done.output, vec![RootkitVerdict::Clean.to_byte()]);
    }

    #[test]
    fn tampered_kernel_detected() {
        let kernel = b"known good kernel".to_vec();
        let mut rooted = kernel.clone();
        rooted.extend_from_slice(b" + evil hook");
        let mut det = RootkitDetector::new(&[&kernel]);
        let mut sea = enhanced();
        let id = sea.slaunch(&mut det, &rooted, CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut det, id, CpuId(0)).unwrap();
        assert_eq!(done.output, vec![RootkitVerdict::Tampered.to_byte()]);
    }

    #[test]
    fn verdict_is_attestable_with_snapshot_binding() {
        let kernel = b"kernel v3".to_vec();
        let mut det = RootkitDetector::new(&[&kernel]);
        let image = det.image();
        let mut sea = enhanced();
        let id = sea.slaunch(&mut det, &kernel, CpuId(0), None).unwrap();
        sea.run_to_exit(&mut det, id, CpuId(0)).unwrap();
        let quote = sea.quote_and_free(id, b"challenge").unwrap().value;
        let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
        // The quote verifies only against the scanned snapshot's digest.
        assert!(verifier
            .verify_sepcr_quote(&quote, b"challenge", &image, &[Sha1::digest(&kernel)])
            .is_ok());
        assert!(verifier
            .verify_sepcr_quote(
                &quote,
                b"challenge",
                &image,
                &[Sha1::digest(b"other snapshot")]
            )
            .is_err());
    }

    #[test]
    fn different_whitelists_are_different_code() {
        let a = RootkitDetector::new(&[b"kernel-a".as_slice()]);
        let b = RootkitDetector::new(&[b"kernel-b".as_slice()]);
        assert_ne!(a.image(), b.image());
        assert_eq!(a.whitelist_len(), 1);
    }
}
