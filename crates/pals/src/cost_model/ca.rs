//! Cost-model twin of the certificate-authority PAL: native Rust logic
//! with `ctx.work` charges standing in for the RSA compute time.

use sea_core::{PalCtx, PalLogic, PalOutcome, SeaError};
use sea_crypto::{Drbg, RsaPrivateKey, Sha1};
use sea_hw::SimDuration;
use sea_tpm::SealedBlob;

use crate::ca::{encode_public_key, CaRequest, CA_KEY_BITS};

/// Modelled compute time for in-PAL RSA key generation.
const KEYGEN_WORK: SimDuration = SimDuration::from_ms(150);

/// Modelled compute time for one in-PAL RSA signature.
const SIGN_WORK: SimDuration = SimDuration::from_ms(5);

/// The certificate-authority PAL.
///
/// The sealed private key is held (opaquely) by this struct between
/// sessions, playing the untrusted OS's role of blob custodian.
#[derive(Debug, Default)]
pub struct CertAuthority {
    sealed_key: Option<SealedBlob>,
}

impl CertAuthority {
    /// Creates a CA with no key material yet.
    pub fn new() -> Self {
        CertAuthority { sealed_key: None }
    }

    /// Whether a sealed signing key exists.
    pub fn has_key(&self) -> bool {
        self.sealed_key.is_some()
    }
}

impl PalLogic for CertAuthority {
    fn name(&self) -> &str {
        "certificate-authority"
    }

    fn image(&self) -> Vec<u8> {
        b"PAL:certificate-authority:v1".to_vec()
    }

    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError> {
        match CaRequest::parse(ctx.input())? {
            CaRequest::Generate => {
                // Key generation from TPM randomness, inside the TCB.
                let seed = ctx.random(32)?;
                let mut rng = Drbg::new(&seed);
                let key = RsaPrivateKey::generate(CA_KEY_BITS, &mut rng)
                    .map_err(|e| SeaError::PalFailed(format!("keygen failed: {e}")))?;
                ctx.work(KEYGEN_WORK);
                self.sealed_key = Some(ctx.seal(&key.to_bytes())?);
                Ok(PalOutcome::Exit(encode_public_key(key.public_key())))
            }
            CaRequest::Sign(csr) => {
                let blob = self
                    .sealed_key
                    .as_ref()
                    .ok_or_else(|| SeaError::PalFailed("CA key not generated".into()))?;
                let key_bytes = ctx.unseal(blob)?;
                let key = RsaPrivateKey::from_bytes(&key_bytes)
                    .map_err(|e| SeaError::PalFailed(format!("corrupt sealed key: {e}")))?;
                let digest = Sha1::digest(&csr);
                let sig = key
                    .sign_pkcs1v15(&digest)
                    .map_err(|e| SeaError::PalFailed(format!("signing failed: {e}")))?;
                ctx.work(SIGN_WORK);
                // The unsealed key is simply erased on exit (it lives
                // only in the protected session); no reseal needed.
                Ok(PalOutcome::Exit(sig.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{decode_public_key, verify_ca_signature};
    use sea_core::{LegacySea, SeaError, SecurePlatform, SessionReport};
    use sea_hw::Platform;
    use sea_tpm::KeyStrength;

    fn sea() -> LegacySea {
        LegacySea::new(SecurePlatform::new(
            Platform::hp_dc5750(),
            KeyStrength::Demo512,
            b"ca",
        ))
        .unwrap()
    }

    fn run(
        sea: &mut LegacySea,
        ca: &mut CertAuthority,
        req: &CaRequest,
    ) -> (Vec<u8>, SessionReport) {
        let r = sea.run_session(ca, &req.to_bytes()).unwrap();
        (r.output.unwrap(), r.report)
    }

    #[test]
    fn generate_then_sign_end_to_end() {
        let mut sea = sea();
        let mut ca = CertAuthority::new();
        let (pub_bytes, gen_report) = run(&mut sea, &mut ca, &CaRequest::Generate);
        assert!(ca.has_key());
        // Gen session: Seal but no Unseal (Figure 2's PAL Gen shape).
        assert!(gen_report.seal > SimDuration::ZERO);
        assert_eq!(gen_report.unseal, SimDuration::ZERO);

        let public = decode_public_key(&pub_bytes).expect("valid public key");
        let csr = b"CN=example.org";
        let (sig, use_report) = run(&mut sea, &mut ca, &CaRequest::Sign(csr.to_vec()));
        // Use session: Unseal but no re-Seal (§4.1).
        assert!(use_report.unseal > SimDuration::ZERO);
        assert_eq!(use_report.seal, SimDuration::ZERO);

        assert!(verify_ca_signature(&public, csr, &sig));
        assert!(!verify_ca_signature(&public, b"CN=evil.org", &sig));
    }

    #[test]
    fn sign_before_generate_fails() {
        let mut sea = sea();
        let mut ca = CertAuthority::new();
        let err = sea
            .run_session(&mut ca, &CaRequest::Sign(b"csr".to_vec()).to_bytes())
            .unwrap_err();
        assert!(matches!(err, SeaError::PalFailed(_)));
    }

    #[test]
    fn malformed_request_rejected() {
        let mut sea = sea();
        let mut ca = CertAuthority::new();
        for bad in [&b""[..], &[0x02][..], &[0x00, 0xFF][..]] {
            assert!(sea.run_session(&mut ca, bad).is_err());
        }
    }
}
