//! The original cost-model PALs: native Rust logic whose runtime is a
//! `ctx.work` charge and whose measured image is a name-derived byte
//! string.
//!
//! These are the *twins* of the executed-bytecode programs in
//! [`crate::vm`]. They remain the timing reference (their charges came
//! straight from the paper's figures) and the behavioural oracle the
//! differential suite pins the VM programs against; the VM programs are
//! the measured-identity reference. New PAL logic should be written as
//! bytecode — CI rejects new `ctx.work` calls outside this module.

mod ca;
mod factoring;
mod rootkit;
mod ssh;

pub use ca::CertAuthority;
pub use factoring::FactoringPal;
pub use rootkit::RootkitDetector;
pub use ssh::SshPassword;
