//! Wire protocol of the certificate-authority PAL (§4.1).
//!
//! "We also use the architecture to protect the confidentiality of a
//! certificate authority's private signing key." The CA keypair is
//! generated *inside* a protected session, its private half is sealed to
//! the PAL's measurement, and signing happens inside later sessions —
//! the private key never exists in memory the OS can read.
//!
//! This is the paper's canonical PAL-Gen / PAL-Use pair: `Generate` is
//! the Gen session (ends with a Seal), `Sign` is the Use session (starts
//! with an Unseal; "this example would not require a subsequent seal,
//! since the unsealed key could simply be erased", §4.1).
//!
//! Two implementations share this protocol: the executed-bytecode PAL
//! ([`crate::vm::vm_ca`]) and, behind the `cost-model` feature, the
//! original constant-cost twin ([`crate::CertAuthority`]).

#[cfg(any(test, feature = "cost-model"))]
use sea_core::SeaError;
use sea_crypto::{BigUint, RsaPublicKey, Sha1, Signature};

/// A request to the CA PAL, encoded into the session input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaRequest {
    /// Generate the CA keypair; output is the encoded public key.
    Generate,
    /// Sign a certificate-signing request (arbitrary bytes); output is
    /// the signature.
    Sign(Vec<u8>),
}

impl CaRequest {
    /// Wire encoding passed as PAL input.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            CaRequest::Generate => vec![0x00],
            CaRequest::Sign(csr) => {
                let mut v = vec![0x01];
                v.extend_from_slice(csr);
                v
            }
        }
    }

    #[cfg(any(test, feature = "cost-model"))]
    pub(crate) fn parse(input: &[u8]) -> Result<CaRequest, SeaError> {
        match input.split_first() {
            Some((0x00, [])) => Ok(CaRequest::Generate),
            Some((0x01, csr)) => Ok(CaRequest::Sign(csr.to_vec())),
            _ => Err(SeaError::PalFailed("malformed CA request".into())),
        }
    }
}

/// Encodes an RSA public key as length-prefixed `n`, `e`.
#[cfg(any(test, feature = "cost-model"))]
pub(crate) fn encode_public_key(key: &RsaPublicKey) -> Vec<u8> {
    let n = key.modulus().to_bytes_be();
    // The public exponent is always 65537 in this implementation.
    let e = BigUint::from_u64(65_537).to_bytes_be();
    let mut out = (n.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&n);
    out.extend_from_slice(&(e.len() as u32).to_be_bytes());
    out.extend_from_slice(&e);
    out
}

/// Decodes a public key produced by a `Generate` session.
pub fn decode_public_key(bytes: &[u8]) -> Option<RsaPublicKey> {
    let n_len = u32::from_be_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let n = BigUint::from_bytes_be(bytes.get(4..4 + n_len)?);
    let rest = bytes.get(4 + n_len..)?;
    let e_len = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
    let e = BigUint::from_bytes_be(rest.get(4..4 + e_len)?);
    Some(RsaPublicKey::new(n, e))
}

/// RSA modulus size for CA keys. 512 bits keeps simulated sessions fast;
/// the virtual-time cost of the Seal/Unseal is what the paper measures
/// and comes from the TPM timing model regardless.
pub(crate) const CA_KEY_BITS: usize = 512;

/// Verifies a CA signature produced by a `Sign` session.
pub fn verify_ca_signature(public: &RsaPublicKey, csr: &[u8], signature: &[u8]) -> bool {
    public.verify_pkcs1v15(&Sha1::digest(csr), &Signature(signature.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_crypto::{Drbg, RsaPrivateKey};

    #[test]
    fn request_encoding_roundtrip() {
        assert_eq!(
            CaRequest::parse(&CaRequest::Generate.to_bytes()).unwrap(),
            CaRequest::Generate
        );
        let sign = CaRequest::Sign(b"hello".to_vec());
        assert_eq!(CaRequest::parse(&sign.to_bytes()).unwrap(), sign);
    }

    #[test]
    fn public_key_encoding_roundtrip() {
        let key = RsaPrivateKey::generate(512, &mut Drbg::new(b"pk")).unwrap();
        let enc = encode_public_key(key.public_key());
        let dec = decode_public_key(&enc).unwrap();
        assert_eq!(&dec, key.public_key());
        assert!(decode_public_key(b"junk").is_none());
    }
}
