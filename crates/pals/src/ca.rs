//! The certificate-authority PAL (§4.1).
//!
//! "We also use the architecture to protect the confidentiality of a
//! certificate authority's private signing key." The CA keypair is
//! generated *inside* a protected session, its private half is sealed to
//! the PAL's measurement, and signing happens inside later sessions —
//! the private key never exists in memory the OS can read.
//!
//! This is the paper's canonical PAL-Gen / PAL-Use pair: `Generate` is
//! the Gen session (ends with a Seal), `Sign` is the Use session (starts
//! with an Unseal; "this example would not require a subsequent seal,
//! since the unsealed key could simply be erased", §4.1).

use sea_core::{PalCtx, PalLogic, PalOutcome, SeaError};
use sea_crypto::{BigUint, Drbg, RsaPrivateKey, RsaPublicKey, Sha1, Signature};
use sea_hw::SimDuration;
use sea_tpm::SealedBlob;

/// A request to the CA PAL, encoded into the session input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaRequest {
    /// Generate the CA keypair; output is the encoded public key.
    Generate,
    /// Sign a certificate-signing request (arbitrary bytes); output is
    /// the signature.
    Sign(Vec<u8>),
}

impl CaRequest {
    /// Wire encoding passed as PAL input.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            CaRequest::Generate => vec![0x00],
            CaRequest::Sign(csr) => {
                let mut v = vec![0x01];
                v.extend_from_slice(csr);
                v
            }
        }
    }

    fn parse(input: &[u8]) -> Result<CaRequest, SeaError> {
        match input.split_first() {
            Some((0x00, [])) => Ok(CaRequest::Generate),
            Some((0x01, csr)) => Ok(CaRequest::Sign(csr.to_vec())),
            _ => Err(SeaError::PalFailed("malformed CA request".into())),
        }
    }
}

/// Encodes an RSA public key as length-prefixed `n`, `e`.
pub(crate) fn encode_public_key(key: &RsaPublicKey) -> Vec<u8> {
    let n = key.modulus().to_bytes_be();
    // The public exponent is always 65537 in this implementation.
    let e = BigUint::from_u64(65_537).to_bytes_be();
    let mut out = (n.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&n);
    out.extend_from_slice(&(e.len() as u32).to_be_bytes());
    out.extend_from_slice(&e);
    out
}

/// Decodes a public key produced by a `Generate` session.
pub fn decode_public_key(bytes: &[u8]) -> Option<RsaPublicKey> {
    let n_len = u32::from_be_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let n = BigUint::from_bytes_be(bytes.get(4..4 + n_len)?);
    let rest = bytes.get(4 + n_len..)?;
    let e_len = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
    let e = BigUint::from_bytes_be(rest.get(4..4 + e_len)?);
    Some(RsaPublicKey::new(n, e))
}

/// RSA modulus size for CA keys. 512 bits keeps simulated sessions fast;
/// the virtual-time cost of the Seal/Unseal is what the paper measures
/// and comes from the TPM timing model regardless.
const CA_KEY_BITS: usize = 512;

/// Modelled compute time for in-PAL RSA key generation.
const KEYGEN_WORK: SimDuration = SimDuration::from_ms(150);

/// Modelled compute time for one in-PAL RSA signature.
const SIGN_WORK: SimDuration = SimDuration::from_ms(5);

/// The certificate-authority PAL.
///
/// The sealed private key is held (opaquely) by this struct between
/// sessions, playing the untrusted OS's role of blob custodian.
#[derive(Debug, Default)]
pub struct CertAuthority {
    sealed_key: Option<SealedBlob>,
}

impl CertAuthority {
    /// Creates a CA with no key material yet.
    pub fn new() -> Self {
        CertAuthority { sealed_key: None }
    }

    /// Whether a sealed signing key exists.
    pub fn has_key(&self) -> bool {
        self.sealed_key.is_some()
    }
}

impl PalLogic for CertAuthority {
    fn name(&self) -> &str {
        "certificate-authority"
    }

    fn image(&self) -> Vec<u8> {
        b"PAL:certificate-authority:v1".to_vec()
    }

    fn run(&mut self, ctx: &mut PalCtx<'_>) -> Result<PalOutcome, SeaError> {
        match CaRequest::parse(ctx.input())? {
            CaRequest::Generate => {
                // Key generation from TPM randomness, inside the TCB.
                let seed = ctx.random(32)?;
                let mut rng = Drbg::new(&seed);
                let key = RsaPrivateKey::generate(CA_KEY_BITS, &mut rng)
                    .map_err(|e| SeaError::PalFailed(format!("keygen failed: {e}")))?;
                ctx.work(KEYGEN_WORK);
                self.sealed_key = Some(ctx.seal(&key.to_bytes())?);
                Ok(PalOutcome::Exit(encode_public_key(key.public_key())))
            }
            CaRequest::Sign(csr) => {
                let blob = self
                    .sealed_key
                    .as_ref()
                    .ok_or_else(|| SeaError::PalFailed("CA key not generated".into()))?;
                let key_bytes = ctx.unseal(blob)?;
                let key = RsaPrivateKey::from_bytes(&key_bytes)
                    .map_err(|e| SeaError::PalFailed(format!("corrupt sealed key: {e}")))?;
                let digest = Sha1::digest(&csr);
                let sig = key
                    .sign_pkcs1v15(&digest)
                    .map_err(|e| SeaError::PalFailed(format!("signing failed: {e}")))?;
                ctx.work(SIGN_WORK);
                // The unsealed key is simply erased on exit (it lives
                // only in the protected session); no reseal needed.
                Ok(PalOutcome::Exit(sig.0))
            }
        }
    }
}

/// Verifies a CA signature produced by a `Sign` session.
pub fn verify_ca_signature(public: &RsaPublicKey, csr: &[u8], signature: &[u8]) -> bool {
    public.verify_pkcs1v15(&Sha1::digest(csr), &Signature(signature.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{LegacySea, SecurePlatform, SessionReport};
    use sea_hw::Platform;
    use sea_tpm::KeyStrength;

    fn sea() -> LegacySea {
        LegacySea::new(SecurePlatform::new(
            Platform::hp_dc5750(),
            KeyStrength::Demo512,
            b"ca",
        ))
        .unwrap()
    }

    fn run(
        sea: &mut LegacySea,
        ca: &mut CertAuthority,
        req: &CaRequest,
    ) -> (Vec<u8>, SessionReport) {
        let r = sea.run_session(ca, &req.to_bytes()).unwrap();
        (r.output.unwrap(), r.report)
    }

    #[test]
    fn generate_then_sign_end_to_end() {
        let mut sea = sea();
        let mut ca = CertAuthority::new();
        let (pub_bytes, gen_report) = run(&mut sea, &mut ca, &CaRequest::Generate);
        assert!(ca.has_key());
        // Gen session: Seal but no Unseal (Figure 2's PAL Gen shape).
        assert!(gen_report.seal > SimDuration::ZERO);
        assert_eq!(gen_report.unseal, SimDuration::ZERO);

        let public = decode_public_key(&pub_bytes).expect("valid public key");
        let csr = b"CN=example.org";
        let (sig, use_report) = run(&mut sea, &mut ca, &CaRequest::Sign(csr.to_vec()));
        // Use session: Unseal but no re-Seal (§4.1).
        assert!(use_report.unseal > SimDuration::ZERO);
        assert_eq!(use_report.seal, SimDuration::ZERO);

        assert!(verify_ca_signature(&public, csr, &sig));
        assert!(!verify_ca_signature(&public, b"CN=evil.org", &sig));
    }

    #[test]
    fn sign_before_generate_fails() {
        let mut sea = sea();
        let mut ca = CertAuthority::new();
        let err = sea
            .run_session(&mut ca, &CaRequest::Sign(b"csr".to_vec()).to_bytes())
            .unwrap_err();
        assert!(matches!(err, SeaError::PalFailed(_)));
    }

    #[test]
    fn malformed_request_rejected() {
        let mut sea = sea();
        let mut ca = CertAuthority::new();
        for bad in [&b""[..], &[0x02][..], &[0x00, 0xFF][..]] {
            assert!(sea.run_session(&mut ca, bad).is_err());
        }
    }

    #[test]
    fn request_encoding_roundtrip() {
        assert_eq!(
            CaRequest::parse(&CaRequest::Generate.to_bytes()).unwrap(),
            CaRequest::Generate
        );
        let sign = CaRequest::Sign(b"hello".to_vec());
        assert_eq!(CaRequest::parse(&sign.to_bytes()).unwrap(), sign);
    }

    #[test]
    fn public_key_encoding_roundtrip() {
        let key = RsaPrivateKey::generate(512, &mut Drbg::new(b"pk")).unwrap();
        let enc = encode_public_key(key.public_key());
        let dec = decode_public_key(&enc).unwrap();
        assert_eq!(&dec, key.public_key());
        assert!(decode_public_key(b"junk").is_none());
    }
}
