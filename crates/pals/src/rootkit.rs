//! Wire protocol of the kernel rootkit detector PAL (§4.1).
//!
//! The untrusted OS hands the PAL a snapshot of the kernel's text pages;
//! the PAL hashes it, compares against a whitelist of known-good kernel
//! builds compiled into its measured image, measures the snapshot into
//! its attestation chain, and reports a verdict. Because the verdict is
//! produced inside the isolated session and the snapshot hash is in the
//! measurement chain, a remote verifier can trust a "clean" answer even
//! when the kernel itself is compromised.
//!
//! Two implementations share this protocol: the executed-bytecode PAL
//! ([`crate::vm::vm_rootkit`]) and, behind the `cost-model` feature,
//! the original constant-cost twin ([`crate::RootkitDetector`]).

/// Outcome of a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootkitVerdict {
    /// The snapshot hash matched a whitelisted kernel build.
    Clean,
    /// The snapshot hash matched no whitelisted build — possible rootkit.
    Tampered,
}

impl RootkitVerdict {
    /// Single-byte wire encoding (the PAL's output format).
    pub fn to_byte(self) -> u8 {
        match self {
            RootkitVerdict::Clean => 1,
            RootkitVerdict::Tampered => 0,
        }
    }

    /// Decodes a PAL output byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(RootkitVerdict::Clean),
            0 => Some(RootkitVerdict::Tampered),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_byte_roundtrip() {
        for v in [RootkitVerdict::Clean, RootkitVerdict::Tampered] {
            assert_eq!(RootkitVerdict::from_byte(v.to_byte()), Some(v));
        }
        assert_eq!(RootkitVerdict::from_byte(7), None);
    }
}
