//! A small label-based assembler for the PAL VM.
//!
//! Emission order is program order; branch targets are named labels
//! resolved by [`Asm::finish`]. Registers are plain `u8` indices into
//! the VM's 16-register file (see [`sea_core::VmPal`] for the entry
//! conventions: `r0` input buffer, `r1` input length, `r2` heap base,
//! `r3` state buffer or 0, `r4` seal-slot occupancy mask).

use std::collections::HashMap;

use sea_core::vm::{op, Insn, Program};

/// Builds a [`Program`] instruction by instruction.
///
/// Branches may name labels that are only defined later; [`finish`]
/// resolves every fixup and panics on a label that was never placed —
/// assembling happens at PAL-construction time, so a dangling label is
/// a programming error, not an input error.
///
/// [`finish`]: Asm::finish
#[derive(Debug, Default)]
pub struct Asm {
    insns: Vec<Insn>,
    fixups: Vec<(usize, &'static str)>,
    labels: HashMap<&'static str, u32>,
    data: Vec<u8>,
}

impl Asm {
    /// A fresh, empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    fn emit(&mut self, op: u8, a: u8, b: u8, c: u8, imm: u32) -> &mut Self {
        self.insns.push(Insn { op, a, b, c, imm });
        self
    }

    fn branch(&mut self, op: u8, a: u8, b: u8, target: &'static str) -> &mut Self {
        self.fixups.push((self.insns.len(), target));
        self.emit(op, a, b, 0, 0)
    }

    /// Defines `label` at the current instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn label(&mut self, name: &'static str) -> &mut Self {
        let here = self.insns.len() as u32;
        assert!(
            self.labels.insert(name, here).is_none(),
            "label {name:?} placed twice"
        );
        self
    }

    /// Appends `bytes` to the data segment, returning their address.
    pub fn data(&mut self, bytes: &[u8]) -> u32 {
        let at = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        at
    }

    /// `rd = imm`.
    pub fn movi(&mut self, rd: u8, imm: u32) -> &mut Self {
        self.emit(op::MOVI, rd, 0, 0, imm)
    }

    /// `rd = ra`.
    pub fn mov(&mut self, rd: u8, ra: u8) -> &mut Self {
        self.emit(op::MOV, rd, ra, 0, 0)
    }

    /// `rd = ra + rb` (wrapping).
    pub fn add(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::ADD, rd, ra, rb, 0)
    }

    /// `rd = ra - rb` (wrapping).
    pub fn sub(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::SUB, rd, ra, rb, 0)
    }

    /// `rd = ra * rb` (wrapping).
    pub fn mul(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::MUL, rd, ra, rb, 0)
    }

    /// `rd = ra / rb` (traps on zero divisor).
    pub fn divu(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::DIVU, rd, ra, rb, 0)
    }

    /// `rd = ra % rb` (traps on zero divisor).
    pub fn remu(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::REMU, rd, ra, rb, 0)
    }

    /// `rd = ra & rb`.
    pub fn and(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::AND, rd, ra, rb, 0)
    }

    /// `rd = ra | rb`.
    pub fn or(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::OR, rd, ra, rb, 0)
    }

    /// `rd = ra ^ rb`.
    pub fn xor(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::XOR, rd, ra, rb, 0)
    }

    /// `rd = ra << (rb & 63)`.
    pub fn shl(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::SHL, rd, ra, rb, 0)
    }

    /// `rd = ra >> (rb & 63)` (logical).
    pub fn shr(&mut self, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.emit(op::SHR, rd, ra, rb, 0)
    }

    /// `rd = ra + imm` (wrapping).
    pub fn addi(&mut self, rd: u8, ra: u8, imm: u32) -> &mut Self {
        self.emit(op::ADDI, rd, ra, 0, imm)
    }

    /// `rd = mem[ra + off]` (one byte, zero-extended).
    pub fn ld8(&mut self, rd: u8, ra: u8, off: u32) -> &mut Self {
        self.emit(op::LD8, rd, ra, 0, off)
    }

    /// `rd = mem[ra + off .. +8]` (u64 LE).
    pub fn ld64(&mut self, rd: u8, ra: u8, off: u32) -> &mut Self {
        self.emit(op::LD64, rd, ra, 0, off)
    }

    /// `mem[ra + off] = rb as u8`.
    pub fn st8(&mut self, ra: u8, off: u32, rb: u8) -> &mut Self {
        self.emit(op::ST8, ra, rb, 0, off)
    }

    /// `mem[ra + off .. +8] = rb` (u64 LE).
    pub fn st64(&mut self, ra: u8, off: u32, rb: u8) -> &mut Self {
        self.emit(op::ST64, ra, rb, 0, off)
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: &'static str) -> &mut Self {
        self.branch(op::JMP, 0, 0, target)
    }

    /// Jump to `target` if `ra == 0`.
    pub fn jz(&mut self, ra: u8, target: &'static str) -> &mut Self {
        self.branch(op::JZ, ra, 0, target)
    }

    /// Jump to `target` if `ra != 0`.
    pub fn jnz(&mut self, ra: u8, target: &'static str) -> &mut Self {
        self.branch(op::JNZ, ra, 0, target)
    }

    /// Jump to `target` if `ra < rb` (unsigned).
    pub fn jlt(&mut self, ra: u8, rb: u8, target: &'static str) -> &mut Self {
        self.branch(op::JLT, ra, rb, target)
    }

    /// Abort with application trap code `code`.
    pub fn trap(&mut self, code: u32) -> &mut Self {
        self.emit(op::TRAP, 0, 0, 0, code)
    }

    /// Draw `r_len` random bytes at `mem[r_dst]`.
    pub fn random(&mut self, r_dst: u8, r_len: u8) -> &mut Self {
        self.emit(op::RANDOM, r_dst, r_len, 0, 0)
    }

    /// Seal the length-prefixed buffer at `mem[r_src]` into `slot`.
    pub fn seal(&mut self, r_src: u8, slot: u32) -> &mut Self {
        self.emit(op::SEAL, r_src, 0, 0, slot)
    }

    /// Unseal `slot` as a length-prefixed buffer at `mem[r_dst]`.
    pub fn unseal(&mut self, r_dst: u8, slot: u32) -> &mut Self {
        self.emit(op::UNSEAL, r_dst, 0, 0, slot)
    }

    /// Extend the 20-byte digest at `mem[ra]` into the measurement
    /// chain.
    pub fn measure(&mut self, ra: u8) -> &mut Self {
        self.emit(op::MEASURE, ra, 0, 0, 0)
    }

    /// Persist the length-prefixed buffer at `mem[ra]` as in-region
    /// state and yield.
    pub fn yield_(&mut self, ra: u8) -> &mut Self {
        self.emit(op::YIELD, ra, 0, 0, 0)
    }

    /// Exit with the length-prefixed buffer at `mem[ra]` as output.
    pub fn exit(&mut self, ra: u8) -> &mut Self {
        self.emit(op::EXIT, ra, 0, 0, 0)
    }

    /// SHA-1 the length-prefixed buffer at `mem[r_src]`, writing 20 raw
    /// digest bytes at `mem[r_dst]`.
    pub fn hash(&mut self, r_dst: u8, r_src: u8) -> &mut Self {
        self.emit(op::HASH, r_dst, r_src, 0, 0)
    }

    /// Generate a `bits`-bit RSA key from the 32-byte seed at
    /// `mem[r_seed]`, serialized length-prefixed at `mem[r_dst]`.
    pub fn rsagen(&mut self, r_dst: u8, r_seed: u8, bits: u32) -> &mut Self {
        self.emit(op::RSAGEN, r_dst, r_seed, 0, bits)
    }

    /// Encode the public half of the length-prefixed private key at
    /// `mem[r_key]`, length-prefixed at `mem[r_dst]`.
    pub fn rsapub(&mut self, r_dst: u8, r_key: u8) -> &mut Self {
        self.emit(op::RSAPUB, r_dst, r_key, 0, 0)
    }

    /// PKCS#1 v1.5-sign the 20-byte digest at `mem[r_digest]` with the
    /// length-prefixed private key at `mem[r_key]`, signature
    /// length-prefixed at `mem[r_dst]`.
    pub fn rsasign(&mut self, r_dst: u8, r_key: u8, r_digest: u8) -> &mut Self {
        self.emit(op::RSASIGN, r_dst, r_key, r_digest, 0)
    }

    /// Resolves all fixups and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if a branch names a label that was never placed.
    pub fn finish(mut self) -> Program {
        for (at, target) in &self.fixups {
            let dest = *self
                .labels
                .get(target)
                .unwrap_or_else(|| panic!("undefined label {target:?}"));
            self.insns[*at].imm = dest;
        }
        Program::new(self.insns, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::vm::op;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.label("top")
            .movi(5, 1)
            .jnz(5, "ahead")
            .jmp("top")
            .label("ahead")
            .trap(0);
        let p = a.finish();
        assert_eq!(p.insns()[1].imm, 3, "forward branch to 'ahead'");
        assert_eq!(p.insns()[2].imm, 0, "backward branch to 'top'");
    }

    #[test]
    fn data_returns_addresses_in_emission_order() {
        let mut a = Asm::new();
        assert_eq!(a.data(b"abcd"), 0);
        assert_eq!(a.data(b"xy"), 4);
        a.trap(0);
        assert_eq!(a.finish().data(), b"abcdxy");
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn dangling_label_panics() {
        let mut a = Asm::new();
        a.jmp("nowhere");
        a.finish();
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x").label("x");
    }

    #[test]
    fn store_field_encoding_matches_isa() {
        let mut a = Asm::new();
        a.st64(2, 8, 9).ld64(6, 3, 16);
        let p = a.finish();
        // ST64: a = base register, b = source register.
        assert_eq!(
            (p.insns()[0].op, p.insns()[0].a, p.insns()[0].b),
            (op::ST64, 2, 9)
        );
        assert_eq!(p.insns()[0].imm, 8);
        // LD64: a = destination register, b = base register.
        assert_eq!(
            (p.insns()[1].op, p.insns()[1].a, p.insns()[1].b),
            (op::LD64, 6, 3)
        );
        assert_eq!(p.insns()[1].imm, 16);
    }
}
