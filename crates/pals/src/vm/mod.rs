//! The paper's PALs as executed bytecode for the measured PAL VM.
//!
//! [`Asm`] is a small label-based assembler over the `sea_core::vm`
//! ISA; the program constructors here assemble the four §4.1
//! applications into [`sea_core::VmPal`]s whose measured image is the
//! serialized bytecode itself. Each program is pinned against its
//! cost-model twin by the `vm_differential` integration suite: same
//! outputs, same seal/unseal sequences, same attestation verdicts.

mod asm;
mod programs;

pub use asm::Asm;
pub use programs::{
    ca_image, ca_program, factoring_image, factoring_program, rootkit_image, rootkit_program,
    ssh_image, ssh_program, vm_ca, vm_factoring, vm_rootkit, vm_rootkit_from_digests, vm_ssh,
};
