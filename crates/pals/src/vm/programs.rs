//! The paper's four PALs as executed bytecode.
//!
//! Each program speaks the exact wire protocol of its cost-model twin
//! (same request encodings, same outputs, same TPM-operation sequence),
//! but its measured image is the serialized bytecode the VM executes —
//! `PalLogic::image()` is [`sea_core::Program::serialize`], so the
//! sePCR chain and every quote commit to the actual instructions.
//!
//! Register conventions inside every program: `r0` = input buffer
//! (length-prefixed), `r1` = input length, `r2` = heap base, `r3` =
//! state buffer (0 when empty), `r4` = seal-slot occupancy mask,
//! `r15` = the constant 1. Application trap codes: 1 = malformed
//! request, 2 = required sealed blob missing, 3 = corrupt sealed or
//! in-region state.

use sea_core::vm::Program;
use sea_core::VmPal;
use sea_crypto::{Sha1, Sha1Digest};

use super::asm::Asm;
use crate::ca::CA_KEY_BITS;
use crate::factoring::PersistMode;

/// Emits the canonical byte-copy loop: `r_cnt` bytes from `mem[r_src]`
/// to `mem[r_dst]`, clobbering all three cursors and `r_tmp`. Labels
/// must be unique per call site. Assumes `r15 == 1`.
fn copy_loop(
    a: &mut Asm,
    head: &'static str,
    done: &'static str,
    r_src: u8,
    r_dst: u8,
    r_cnt: u8,
    r_tmp: u8,
) {
    a.label(head)
        .jz(r_cnt, done)
        .ld8(r_tmp, r_src, 0)
        .st8(r_dst, 0, r_tmp)
        .addi(r_src, r_src, 1)
        .addi(r_dst, r_dst, 1)
        .sub(r_cnt, r_cnt, 15)
        .jmp(head);
    a.label(done);
}

/// Emits the constant-time 20-byte digest comparison: OR-accumulates
/// byte XORs of `mem[r_a]` vs `mem[r_b]` into `r_diff` (0 iff equal).
/// Clobbers both cursors, `r_tmp`, `r_tmp2`, and `r_len`.
#[allow(clippy::too_many_arguments)]
fn digest_compare(
    a: &mut Asm,
    head: &'static str,
    done: &'static str,
    r_a: u8,
    r_b: u8,
    r_diff: u8,
    r_len: u8,
    r_tmp: u8,
    r_tmp2: u8,
) {
    a.movi(r_len, 20).movi(r_diff, 0);
    a.label(head)
        .jz(r_len, done)
        .ld8(r_tmp, r_a, 0)
        .ld8(r_tmp2, r_b, 0)
        .xor(r_tmp, r_tmp, r_tmp2)
        .or(r_diff, r_diff, r_tmp)
        .addi(r_a, r_a, 1)
        .addi(r_b, r_b, 1)
        .sub(r_len, r_len, 15)
        .jmp(head);
    a.label(done);
}

/// The SSH password program: tag `0x00` enrolls (draws a 16-byte salt,
/// hashes salt ‖ password, seals `salt ‖ digest` into slot 0, outputs
/// `[1]`), tag `0x01` verifies (unseals the record, recomputes the
/// salted digest of the attempt, constant-time compares, outputs `[1]`
/// or `[0]`).
pub fn ssh_program() -> Program {
    let mut a = Asm::new();
    // Heap layout: record (len ‖ salt ‖ digest) at r2..r2+44, hash
    // buffer (len ‖ salt ‖ password) at r2+48, output at r2+104.
    a.movi(15, 1)
        .jz(1, "malformed")
        .ld8(5, 0, 8)
        .jz(5, "enroll")
        .sub(6, 5, 15)
        .jz(6, "verify");
    a.label("malformed").trap(1);

    a.label("enroll")
        .sub(8, 1, 15) // r8 = password length
        .addi(11, 2, 48) // r11 = hash buffer
        .addi(12, 2, 56) // r12 = salt (inside the hash buffer)
        .movi(9, 16)
        .random(12, 9)
        .addi(13, 8, 16)
        .st64(11, 0, 13) // hash buffer length = 16 + pwlen
        .addi(6, 0, 9) // password source (past the tag byte)
        .addi(7, 2, 72) // password destination
        .mov(5, 8);
    copy_loop(&mut a, "e_cp", "e_cp_done", 6, 7, 5, 9);
    a.addi(10, 2, 24) // digest lands directly inside the record
        .hash(10, 11)
        .ld64(9, 12, 0) // salt → record (two aligned words)
        .st64(2, 8, 9)
        .ld64(9, 12, 8)
        .st64(2, 16, 9)
        .movi(9, 36)
        .st64(2, 0, 9) // record length = 16 + 20
        .seal(2, 0)
        .st64(11, 0, 15) // output [1]
        .st8(11, 8, 15)
        .exit(11);

    a.label("verify")
        .and(6, 4, 15)
        .jz(6, "no_record")
        .unseal(2, 0) // record at r2
        .ld64(6, 2, 0)
        .movi(7, 36)
        .sub(8, 6, 7)
        .jnz(8, "corrupt")
        .sub(8, 1, 15) // attempt length
        .addi(11, 2, 48) // hash buffer
        .addi(13, 8, 16)
        .st64(11, 0, 13)
        .ld64(9, 2, 8) // salt from the record → hash buffer
        .st64(2, 56, 9)
        .ld64(9, 2, 16)
        .st64(2, 64, 9)
        .addi(6, 0, 9) // attempt source
        .addi(7, 2, 72) // attempt destination
        .mov(5, 8);
    copy_loop(&mut a, "v_cp", "v_cp_done", 6, 7, 5, 9);
    // Candidate digest overwrites the hash buffer head (the source is
    // copied out before the digest is written).
    a.hash(11, 11).mov(6, 11).addi(7, 2, 24);
    digest_compare(&mut a, "v_cmp", "v_cmp_done", 6, 7, 10, 9, 12, 13);
    a.addi(11, 2, 104) // output buffer
        .st64(11, 0, 15)
        .jz(10, "match")
        .movi(12, 0)
        .st8(11, 8, 12)
        .exit(11);
    a.label("match").st8(11, 8, 15).exit(11);
    a.label("no_record").trap(2);
    a.label("corrupt").trap(3);
    a.finish()
}

/// The certificate-authority program: tag `0x00` (exactly) generates —
/// 32 bytes of TPM randomness seed an RSA keygen, the private key is
/// sealed into slot 0 and the encoded public key is the output; tag
/// `0x01` signs — the key is unsealed, the CSR hashed, and the PKCS#1
/// v1.5 signature is the output.
pub fn ca_program() -> Program {
    let mut a = Asm::new();
    a.movi(15, 1)
        .jz(1, "malformed")
        .ld8(5, 0, 8)
        .jnz(5, "not_gen")
        .sub(6, 1, 15) // Generate carries no payload
        .jz(6, "generate")
        .jmp("malformed");
    a.label("not_gen").sub(6, 5, 15).jz(6, "sign");
    a.label("malformed").trap(1);

    a.label("generate")
        .movi(6, 32)
        .random(2, 6) // 32-byte seed at the heap base
        .addi(10, 2, 32) // private key after the seed
        .rsagen(10, 2, CA_KEY_BITS as u32)
        .seal(10, 0)
        .ld64(7, 10, 0) // place the public key after the private
        .addi(11, 10, 8)
        .add(11, 11, 7)
        .rsapub(11, 10)
        .exit(11);

    a.label("sign")
        .and(6, 4, 15)
        .jz(6, "no_key")
        .unseal(2, 0) // private key at the heap base
        .sub(8, 1, 15) // CSR length
        .ld64(7, 2, 0) // CSR buffer after the key
        .addi(11, 2, 8)
        .add(11, 11, 7)
        .st64(11, 0, 8)
        .addi(5, 0, 9) // CSR source (past the tag byte)
        .addi(6, 11, 8)
        .mov(9, 8);
    copy_loop(&mut a, "s_cp", "s_cp_done", 5, 6, 9, 12);
    a.mov(13, 6) // digest after the CSR copy (r6 = end cursor)
        .hash(13, 11)
        .addi(14, 13, 24)
        .rsasign(14, 2, 13)
        .exit(14);
    a.label("no_key").trap(2);
    a.finish()
}

/// The distributed-factoring program. `n` and the per-quantum candidate
/// budget live in the data segment (they are *part of the measured
/// image*, exactly as the twin folds them into its image bytes); the
/// current candidate persists per `mode` — as 8-byte in-region state
/// across `SYIELD`, or TPM-sealed in slot 0 across full sessions.
///
/// # Panics
///
/// Panics if `n < 4` or `candidates_per_quantum == 0`.
pub fn factoring_program(n: u64, candidates_per_quantum: u64, mode: PersistMode) -> Program {
    assert!(n >= 4, "nothing to factor");
    assert!(candidates_per_quantum > 0, "quantum must make progress");
    let mut a = Asm::new();
    a.data(&n.to_le_bytes());
    a.data(&candidates_per_quantum.to_le_bytes());
    // r5 = n, r6 = quantum (loaded while r6 is still 0 and usable as a
    // zero base register), r7 = candidate, r12 = tested this quantum.
    a.ld64(5, 6, 0).ld64(6, 6, 8).movi(15, 1);
    match mode {
        PersistMode::InRegion => {
            a.jnz(3, "have_state").movi(7, 2).jmp("search");
            a.label("have_state")
                .ld64(8, 3, 0)
                .movi(9, 8)
                .sub(10, 8, 9)
                .jnz(10, "corrupt")
                .ld64(7, 3, 8)
                .jmp("search");
        }
        PersistMode::TpmSeal => {
            a.and(8, 4, 15).jnz(8, "have_blob").movi(7, 2).jmp("search");
            a.label("have_blob")
                .unseal(2, 0)
                .ld64(8, 2, 0)
                .movi(9, 8)
                .sub(10, 8, 9)
                .jnz(10, "corrupt")
                .ld64(7, 2, 8)
                .jmp("search");
        }
    }
    a.label("search").movi(12, 0);
    a.label("s_loop").jlt(12, 6, "s_body");
    // Quantum exhausted: persist the next untested candidate.
    a.movi(9, 8).st64(2, 0, 9).st64(2, 8, 7);
    match mode {
        PersistMode::InRegion => {
            a.yield_(2);
        }
        PersistMode::TpmSeal => {
            // Baseline hardware: seal progress and exit empty — the
            // next quantum is a fresh late launch.
            a.seal(2, 0)
                .movi(9, 0)
                .st64(2, 32, 9)
                .addi(10, 2, 32)
                .exit(10);
        }
    }
    // `candidate² > n` (twin's primality cutoff) without overflow:
    // `n / candidate < candidate`.
    a.label("s_body")
        .divu(13, 5, 7)
        .jlt(13, 7, "prime")
        .remu(14, 5, 7)
        .jz(14, "found")
        .addi(7, 7, 1)
        .addi(12, 12, 1)
        .jmp("s_loop");
    a.label("prime").movi(13, 1).mov(14, 5).jmp("emit");
    a.label("found").mov(13, 7).divu(14, 5, 7);
    a.label("emit")
        .movi(9, 16)
        .st64(2, 0, 9)
        .st64(2, 8, 13)
        .st64(2, 16, 14)
        .exit(2);
    a.label("corrupt").trap(3);
    a.finish()
}

/// The rootkit-detector program. The whitelist of known-good kernel
/// digests is the data segment — part of the measured image, so a
/// detector trusting different kernels *is different code* to the
/// attestation machinery. Hashes the input snapshot, measures the
/// digest into the attestation chain, scans the whitelist with a
/// constant-time compare, and outputs the verdict byte.
pub fn rootkit_program(whitelist: &[Sha1Digest]) -> Program {
    let mut a = Asm::new();
    let mut seg = (whitelist.len() as u64).to_le_bytes().to_vec();
    for d in whitelist {
        seg.extend_from_slice(d);
    }
    a.data(&seg);
    a.movi(15, 1)
        .mov(5, 2) // snapshot digest at the heap base
        .hash(5, 0)
        .measure(5)
        .ld64(6, 7, 0) // whitelist count (r7 still 0)
        .movi(7, 8); // whitelist cursor
    a.label("scan").jz(6, "tampered").mov(9, 5).mov(10, 7);
    digest_compare(&mut a, "cmp", "cmp_done", 9, 10, 11, 8, 12, 13);
    a.jz(11, "clean").addi(7, 7, 20).sub(6, 6, 15).jmp("scan");
    a.label("clean").movi(9, 1).jmp("emit");
    a.label("tampered").movi(9, 0);
    a.label("emit")
        .st64(2, 32, 15) // output (len 1) at r2+32, clear of the digest
        .st8(2, 40, 9)
        .addi(10, 2, 32)
        .exit(10);
    a.finish()
}

/// The executed-bytecode SSH password PAL.
pub fn vm_ssh() -> VmPal {
    VmPal::new("ssh-password", ssh_program())
}

/// The measured image of [`vm_ssh`].
pub fn ssh_image() -> Vec<u8> {
    ssh_program().serialize()
}

/// The executed-bytecode certificate-authority PAL.
pub fn vm_ca() -> VmPal {
    VmPal::new("certificate-authority", ca_program())
}

/// The measured image of [`vm_ca`].
pub fn ca_image() -> Vec<u8> {
    ca_program().serialize()
}

/// The executed-bytecode factoring PAL for one job configuration.
///
/// # Panics
///
/// Panics if `n < 4` or `candidates_per_quantum == 0`.
pub fn vm_factoring(n: u64, candidates_per_quantum: u64, mode: PersistMode) -> VmPal {
    VmPal::new(
        "distributed-factoring",
        factoring_program(n, candidates_per_quantum, mode),
    )
}

/// The measured image of [`vm_factoring`] for the same configuration.
pub fn factoring_image(n: u64, candidates_per_quantum: u64, mode: PersistMode) -> Vec<u8> {
    factoring_program(n, candidates_per_quantum, mode).serialize()
}

/// The executed-bytecode rootkit detector trusting exactly the given
/// kernel images.
pub fn vm_rootkit(known_good_kernels: &[&[u8]]) -> VmPal {
    let digests: Vec<Sha1Digest> = known_good_kernels.iter().map(|k| Sha1::digest(k)).collect();
    vm_rootkit_from_digests(digests)
}

/// The executed-bytecode rootkit detector from precomputed digests.
pub fn vm_rootkit_from_digests(whitelist: Vec<Sha1Digest>) -> VmPal {
    VmPal::new("rootkit-detector", rootkit_program(&whitelist))
}

/// The measured image of [`vm_rootkit`] for the same whitelist.
pub fn rootkit_image(known_good_kernels: &[&[u8]]) -> Vec<u8> {
    let digests: Vec<Sha1Digest> = known_good_kernels.iter().map(|k| Sha1::digest(k)).collect();
    rootkit_program(&digests).serialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_factors, decode_public_key, verify_ca_signature, CaRequest, SshRequest};
    use sea_core::{EnhancedSea, LegacySea, PalLogic, SecurePlatform};
    use sea_hw::{CpuId, Platform};
    use sea_tpm::KeyStrength;

    fn legacy(seed: &[u8]) -> LegacySea {
        LegacySea::new(SecurePlatform::new(
            Platform::hp_dc5750(),
            KeyStrength::Demo512,
            seed,
        ))
        .unwrap()
    }

    fn enhanced(seed: &[u8]) -> EnhancedSea {
        EnhancedSea::new(SecurePlatform::new(
            Platform::recommended(2),
            KeyStrength::Demo512,
            seed,
        ))
        .unwrap()
    }

    #[test]
    fn images_are_serialized_bytecode() {
        for image in [
            ssh_image(),
            ca_image(),
            factoring_image(10403, 10, PersistMode::InRegion),
            rootkit_image(&[b"kernel"]),
        ] {
            assert_eq!(&image[..4], b"SVM1");
            assert!(sea_core::Program::parse(&image).is_ok());
        }
    }

    #[test]
    fn ssh_enroll_then_verify() {
        let mut sea = legacy(b"vm-ssh");
        let mut pal = vm_ssh();
        let r = sea
            .run_session(
                &mut pal,
                &SshRequest::Enroll(b"hunter2".to_vec()).to_bytes(),
            )
            .unwrap();
        assert_eq!(r.output, Some(vec![1]));
        assert!(pal.slot(0).is_some(), "record sealed into slot 0");

        let good = sea
            .run_session(
                &mut pal,
                &SshRequest::Verify(b"hunter2".to_vec()).to_bytes(),
            )
            .unwrap();
        assert_eq!(good.output, Some(vec![1]));
        let bad = sea
            .run_session(
                &mut pal,
                &SshRequest::Verify(b"letmein".to_vec()).to_bytes(),
            )
            .unwrap();
        assert_eq!(bad.output, Some(vec![0]));
    }

    #[test]
    fn ssh_error_paths_trap() {
        let mut sea = legacy(b"vm-ssh-err");
        let mut pal = vm_ssh();
        assert!(sea.run_session(&mut pal, b"").is_err(), "empty request");
        assert!(sea.run_session(&mut pal, &[0x07]).is_err(), "bad tag");
        assert!(
            sea.run_session(&mut pal, &SshRequest::Verify(b"x".to_vec()).to_bytes())
                .is_err(),
            "verify before enroll"
        );
    }

    #[test]
    fn ca_generate_then_sign() {
        let mut sea = legacy(b"vm-ca");
        let mut pal = vm_ca();
        let r = sea
            .run_session(&mut pal, &CaRequest::Generate.to_bytes())
            .unwrap();
        let public = decode_public_key(&r.output.unwrap()).expect("valid public key");
        assert!(pal.slot(0).is_some(), "private key sealed into slot 0");

        let csr = b"CN=example.org";
        let r = sea
            .run_session(&mut pal, &CaRequest::Sign(csr.to_vec()).to_bytes())
            .unwrap();
        let sig = r.output.unwrap();
        assert!(verify_ca_signature(&public, csr, &sig));
        assert!(!verify_ca_signature(&public, b"CN=evil.org", &sig));
    }

    #[test]
    fn ca_rejects_malformed_and_unkeyed() {
        let mut sea = legacy(b"vm-ca-err");
        let mut pal = vm_ca();
        // Generate with a payload is malformed (twin parity).
        assert!(sea.run_session(&mut pal, &[0x00, 0xFF]).is_err());
        assert!(sea.run_session(&mut pal, &[0x02]).is_err());
        assert!(sea
            .run_session(&mut pal, &CaRequest::Sign(b"csr".to_vec()).to_bytes())
            .is_err());
    }

    #[test]
    fn factoring_in_region_yields_to_factors() {
        let mut sea = enhanced(b"vm-fact");
        let mut pal = vm_factoring(101 * 103, 10, PersistMode::InRegion);
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        assert_eq!(decode_factors(&done.output), Some((101, 103)));
        assert!(done.report.context_switch > sea_hw::SimDuration::ZERO);
    }

    #[test]
    fn factoring_tpm_seal_spans_sessions() {
        let mut sea = legacy(b"vm-fact-seal");
        let mut pal = vm_factoring(101 * 103, 40, PersistMode::TpmSeal);
        let mut sessions = 0;
        let factors = loop {
            sessions += 1;
            let r = sea.run_session(&mut pal, b"").unwrap();
            let out = r.output.expect("baseline PALs always exit");
            if let Some(f) = decode_factors(&out) {
                break f;
            }
            assert!(pal.slot(0).is_some(), "progress sealed between sessions");
            assert!(sessions < 100, "runaway");
        };
        assert_eq!(factors, (101, 103));
        assert!(sessions >= 3, "work split across sessions");
    }

    #[test]
    fn factoring_prime_reports_trivial_pair() {
        let mut sea = enhanced(b"vm-fact-prime");
        let mut pal = vm_factoring(10007, 10_000, PersistMode::InRegion);
        let id = sea.slaunch(&mut pal, b"", CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut pal, id, CpuId(0)).unwrap();
        assert_eq!(decode_factors(&done.output), Some((1, 10007)));
    }

    #[test]
    fn factoring_image_is_job_specific() {
        let a = factoring_image(10403, 10, PersistMode::InRegion);
        let b = factoring_image(10405, 10, PersistMode::InRegion);
        let c = factoring_image(10403, 11, PersistMode::InRegion);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "nothing to factor")]
    fn factoring_tiny_n_panics() {
        let _ = vm_factoring(3, 10, PersistMode::InRegion);
    }

    #[test]
    fn rootkit_verdicts() {
        let kernel = b"known good kernel".to_vec();
        let mut rooted = kernel.clone();
        rooted.extend_from_slice(b" + evil hook");

        let mut sea = enhanced(b"vm-rk");
        let mut det = vm_rootkit(&[&kernel]);
        let id = sea.slaunch(&mut det, &kernel, CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut det, id, CpuId(0)).unwrap();
        assert_eq!(done.output, vec![1]);
        sea.quote_and_free(id, b"n").unwrap();

        let id = sea.slaunch(&mut det, &rooted, CpuId(0), None).unwrap();
        let done = sea.run_to_exit(&mut det, id, CpuId(0)).unwrap();
        assert_eq!(done.output, vec![0]);
    }

    #[test]
    fn rootkit_whitelist_is_measured_code() {
        let a = rootkit_image(&[b"kernel-a"]);
        let b = rootkit_image(&[b"kernel-b"]);
        assert_ne!(a, b);
        let pal = vm_rootkit(&[b"kernel-a"]);
        assert_eq!(pal.image(), a);
    }
}
