//! Wire protocol of the SSH password-handling PAL (§4.1).
//!
//! "...and to secure an SSH server's password handling routines." The
//! server's password database entry (salted digest) is sealed to the
//! PAL, and login attempts are checked *inside* the protected session —
//! a compromised sshd or kernel never sees the stored verifier or a
//! timing-usable comparison.
//!
//! Two implementations share this protocol: the executed-bytecode PAL
//! ([`crate::vm::vm_ssh`]) and, behind the `cost-model` feature, the
//! original constant-cost twin ([`crate::SshPassword`]).

#[cfg(any(test, feature = "cost-model"))]
use sea_core::SeaError;
#[cfg(feature = "cost-model")]
use sea_crypto::Sha1;

/// A request to the SSH-password PAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SshRequest {
    /// Store a new password (enrollment); output byte `1` on success.
    Enroll(Vec<u8>),
    /// Check a login attempt; output byte `1` (accept) or `0` (reject).
    Verify(Vec<u8>),
}

impl SshRequest {
    /// Wire encoding passed as PAL input.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            SshRequest::Enroll(pw) => {
                let mut v = vec![0x00];
                v.extend_from_slice(pw);
                v
            }
            SshRequest::Verify(pw) => {
                let mut v = vec![0x01];
                v.extend_from_slice(pw);
                v
            }
        }
    }

    #[cfg(any(test, feature = "cost-model"))]
    pub(crate) fn parse(input: &[u8]) -> Result<SshRequest, SeaError> {
        match input.split_first() {
            Some((0x00, pw)) => Ok(SshRequest::Enroll(pw.to_vec())),
            Some((0x01, pw)) => Ok(SshRequest::Verify(pw.to_vec())),
            _ => Err(SeaError::PalFailed("malformed SSH request".into())),
        }
    }
}

/// Salt length of the enrolled password record (`salt ‖ digest`).
#[cfg(feature = "cost-model")]
pub(crate) const SALT_LEN: usize = 16;

/// The salted verifier digest both implementations compute:
/// `SHA-1(salt ‖ password)`.
#[cfg(feature = "cost-model")]
pub(crate) fn salted_digest(salt: &[u8], password: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update_bytes(salt);
    h.update_bytes(password);
    h.finalize_fixed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encoding_roundtrip() {
        for req in [
            SshRequest::Enroll(b"pw".to_vec()),
            SshRequest::Verify(b"pw".to_vec()),
            SshRequest::Enroll(Vec::new()),
        ] {
            assert_eq!(SshRequest::parse(&req.to_bytes()).unwrap(), req);
        }
    }
}
