//! # sea-pals
//!
//! The four SEA applications of §4.1 of McCune et al., *"How Low Can You
//! Go?"* (ASPLOS 2008), implemented as PALs over the `sea-core` API:
//!
//! > "We implemented a kernel rootkit detector and a distributed
//! > factoring program that use our architecture to provide isolation
//! > and integrity protection. We also use the architecture to protect
//! > the confidentiality of a certificate authority's private signing
//! > key, and to secure an SSH server's password handling routines."
//!
//! * [`RootkitDetector`] — hashes a kernel-text snapshot against a
//!   whitelist, measuring the scanned snapshot into the attestation so a
//!   verifier knows *what* was deemed clean.
//! * [`FactoringPal`] — resumable trial-division factoring: a distributed-
//!   computing worker (the paper's SETI@Home analogy) that persists its
//!   progress between quanta — by TPM sealing on baseline hardware, or
//!   in its protected pages on the proposed hardware.
//! * [`CertAuthority`] — generates an RSA signing key inside the TCB,
//!   seals the private half, and signs certificate requests on demand;
//!   the private key never exists outside TPM-protected storage.
//! * [`SshPassword`] — stores a salted password digest under seal and
//!   verifies login attempts inside the TCB.
//!
//! Each PAL works under both [`sea_core::LegacySea`] and
//! [`sea_core::EnhancedSea`]; the performance difference between those
//! two runs *is* the paper's argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ca;
mod factoring;
mod rootkit;
mod ssh;

pub use ca::{decode_public_key, verify_ca_signature, CaRequest, CertAuthority};
pub use factoring::{decode_factors, FactoringPal, PersistMode};
pub use rootkit::{RootkitDetector, RootkitVerdict};
pub use ssh::{SshPassword, SshRequest};
