//! # sea-pals
//!
//! The four SEA applications of §4.1 of McCune et al., *"How Low Can You
//! Go?"* (ASPLOS 2008), implemented as PALs over the `sea-core` API:
//!
//! > "We implemented a kernel rootkit detector and a distributed
//! > factoring program that use our architecture to provide isolation
//! > and integrity protection. We also use the architecture to protect
//! > the confidentiality of a certificate authority's private signing
//! > key, and to secure an SSH server's password handling routines."
//!
//! Each application exists in two forms that share one wire protocol:
//!
//! * **Executed bytecode** ([`vm`]) — the real thing: programs for the
//!   measured PAL VM ([`sea_core::VmPal`]), whose attested identity is
//!   the hash of the serialized bytecode the interpreter executes.
//!   [`vm::vm_rootkit`] hashes a kernel-text snapshot against a
//!   whitelist baked into its data segment, [`vm::vm_factoring`] is the
//!   resumable trial-division worker (the paper's SETI@Home analogy),
//!   [`vm::vm_ca`] generates and wields an RSA signing key entirely
//!   inside the TCB, and [`vm::vm_ssh`] checks login attempts against a
//!   sealed salted digest.
//! * **Cost-model twins** (feature `cost-model`, on by default) — the
//!   original closure PALs whose runtime is a constant `ctx.work`
//!   charge: [`RootkitDetector`], [`FactoringPal`], [`CertAuthority`],
//!   [`SshPassword`]. They remain the timing reference and the
//!   behavioural oracle the differential suite pins the VM programs
//!   against.
//!
//! Every PAL works under both [`sea_core::LegacySea`] and
//! [`sea_core::EnhancedSea`]; the performance difference between those
//! two runs *is* the paper's argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ca;
#[cfg(feature = "cost-model")]
mod cost_model;
mod factoring;
mod rootkit;
mod ssh;
pub mod vm;

pub use ca::{decode_public_key, verify_ca_signature, CaRequest};
#[cfg(feature = "cost-model")]
pub use cost_model::{CertAuthority, FactoringPal, RootkitDetector, SshPassword};
pub use factoring::{decode_factors, PersistMode};
pub use rootkit::RootkitVerdict;
pub use ssh::SshRequest;
