//! The [`Digest`] trait abstracting over the hash functions in this crate.

/// An incremental cryptographic hash function.
///
/// Both [`crate::Sha1`] and [`crate::Sha256`] implement this trait, which
/// lets [`crate::Hmac`] and the OAEP mask-generation function work over
/// either. The trait is deliberately minimal: `update` absorbs bytes,
/// `finalize` produces the digest as a `Vec<u8>` of [`Digest::OUTPUT_LEN`]
/// bytes.
///
/// # Example
///
/// ```
/// use sea_crypto::{Digest, Sha1};
///
/// let mut h = Sha1::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let once = Sha1::digest(b"hello world");
/// assert_eq!(h.finalize().as_slice(), once.as_slice());
/// ```
pub trait Digest: Clone {
    /// Length of the digest produced by [`Digest::finalize`], in bytes.
    const OUTPUT_LEN: usize;

    /// Internal block size in bytes (used by HMAC key padding).
    const BLOCK_LEN: usize;

    /// Creates a fresh hasher in its initial state.
    fn new() -> Self;

    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest
    /// (`Self::OUTPUT_LEN` bytes).
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: hash `data` in a single call.
    fn digest_oneshot(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}
