//! Hexadecimal encoding helpers.
//!
//! Measurements, PCR values, and key fingerprints are exchanged and
//! logged as hex throughout the trusted-computing ecosystem; these
//! helpers keep that dependency-free.

use crate::error::CryptoError;

/// Encodes bytes as lowercase hex.
///
/// # Example
///
/// ```
/// assert_eq!(sea_crypto::to_hex(&[0xde, 0xad, 0x01]), "dead01");
/// assert_eq!(sea_crypto::to_hex(&[]), "");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a hex string (case-insensitive, even length, no separators).
///
/// # Errors
///
/// Returns [`CryptoError::InvalidCiphertext`] for odd lengths or
/// non-hex characters.
///
/// # Example
///
/// ```
/// assert_eq!(sea_crypto::from_hex("DEAD01").unwrap(), vec![0xde, 0xad, 0x01]);
/// assert!(sea_crypto::from_hex("xyz").is_err());
/// ```
pub fn from_hex(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::InvalidCiphertext);
    }
    let digit = |c: u8| -> Result<u8, CryptoError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CryptoError::InvalidCiphertext),
        }
    };
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| Ok(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn case_insensitive_decode() {
        assert_eq!(from_hex("aAbB").unwrap(), vec![0xaa, 0xbb]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("a").is_err());
        assert!(from_hex("0g").is_err());
        assert!(from_hex("0 1").is_err());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn known_digest_encoding() {
        // SHA-1("abc") in hex, cross-checking the hash module's vector.
        let d = crate::Sha1::digest(b"abc");
        assert_eq!(to_hex(&d), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(from_hex(&to_hex(&d)).unwrap(), d.to_vec());
    }
}
