//! RSA key generation, signatures, and encryption.
//!
//! The TPM v1.2 operations the paper benchmarks all bottom out in RSA with
//! the 2048-bit Storage Root Key (Seal/Unseal) or an Attestation Identity
//! Key (Quote). This module provides:
//!
//! * [`RsaPrivateKey::generate`] — Miller–Rabin key generation with public
//!   exponent 65537,
//! * PKCS#1-v1.5-style signatures ([`RsaPrivateKey::sign_pkcs1v15`] /
//!   [`RsaPublicKey::verify_pkcs1v15`]) used for `TPM_Quote`, and
//! * OAEP-style encryption ([`RsaPublicKey::encrypt_oaep`] /
//!   [`RsaPrivateKey::decrypt_oaep`]) used for `TPM_Seal`/`TPM_Unseal`.
//!
//! The padding formats follow the structure of PKCS#1 v2.1 (EMSA-PKCS1-v1_5
//! and EME-OAEP with MGF1-SHA-1) closely enough that every security-relevant
//! behaviour — deterministic signatures over digests, randomized
//! non-malleable encryption, integrity-checked decryption — is real.

//!
//! Private-key operations use the Chinese Remainder Theorem when the prime
//! factorization is available (always, for generated keys): two half-size
//! exponentiations over `p` and `q` replace one full-size exponentiation,
//! and [`RsaPrivateKey::sign_pkcs1v15_batch`] amortizes the Montgomery
//! context setup across a batch of same-key signatures. CRT results are
//! checked against the public exponent before release (a Bellcore-style
//! fault on either half yields [`CryptoError::CrtFault`], never a
//! forgeable signature), so CRT and non-CRT paths are byte-identical on
//! every input.

use crate::bignum::{BigUint, Montgomery};
use crate::digest::Digest;
use crate::drbg::Drbg;
use crate::error::CryptoError;
use crate::prime::generate_prime;
use crate::sha1::{Sha1, SHA1_DIGEST_LEN};

/// DER prefix for a SHA-1 `DigestInfo` (PKCS#1 v1.5 signature encoding).
const SHA1_DIGEST_INFO_PREFIX: [u8; 15] = [
    0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
];

/// An RSA signature (big-endian, exactly the modulus length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u8>);

/// Optional OAEP label, bound into the ciphertext integrity check.
///
/// The TPM model uses the label to bind sealed blobs to their purpose
/// (e.g. `b"SEAL"`), so a blob produced for one purpose cannot be decrypted
/// in the context of another.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OaepLabel(pub Vec<u8>);

/// The public half of an RSA keypair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// Chinese-Remainder-Theorem acceleration parameters for a private key.
///
/// Kept alongside `d` when the factorization of `n` is known; every
/// private-key operation then runs as two half-size exponentiations
/// (`dp = d mod p-1`, `dq = d mod q-1`) recombined via Garner's formula
/// with `qinv = q^-1 mod p`.
#[derive(Clone)]
struct CrtParams {
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl CrtParams {
    /// Derives CRT parameters from `d` and the factors of `n`; `None` if
    /// the factors are degenerate (`<= 1`, or `q` not invertible mod `p`).
    fn derive(d: &BigUint, p: BigUint, q: BigUint) -> Option<CrtParams> {
        let one = BigUint::one();
        let pm1 = p.checked_sub(&one)?;
        let qm1 = q.checked_sub(&one)?;
        if pm1.is_zero() || qm1.is_zero() {
            return None;
        }
        let dp = d.rem_ref(&pm1);
        let dq = d.rem_ref(&qm1);
        let qinv = q.mod_inverse(&p)?;
        Some(CrtParams { p, q, dp, dq, qinv })
    }
}

/// An RSA private key (with its embedded public half).
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    /// CRT acceleration; `None` for keys restored from the serialized
    /// `(n, e, d)` form, which fall back to the full-size exponentiation.
    crt: Option<CrtParams>,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the private exponent.
        f.debug_struct("RsaPrivateKey")
            .field("modulus_bits", &self.public.n.bit_len())
            .finish_non_exhaustive()
    }
}

impl RsaPublicKey {
    /// Constructs a public key from modulus `n` and exponent `e`.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// Modulus size in bytes (k in PKCS#1 terms).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// The raw public modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// A stable fingerprint of the key (SHA-1 of `n || e`), used by the
    /// attestation verifier to identify AIKs.
    pub fn fingerprint(&self) -> [u8; SHA1_DIGEST_LEN] {
        let mut h = Sha1::new();
        h.update_bytes(&self.n.to_bytes_be());
        h.update_bytes(&self.e.to_bytes_be());
        h.finalize_fixed()
    }

    /// Serializes the key as length-prefixed `n` then `e` (big-endian) —
    /// the encoding AIK certificates embed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [self.n.to_bytes_be(), self.e.to_bytes_be()] {
            out.extend_from_slice(&(part.len() as u32).to_be_bytes());
            out.extend_from_slice(&part);
        }
        out
    }

    /// Deserializes a key written by [`RsaPublicKey::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidCiphertext`] for malformed input
    /// (truncated fields, trailing bytes, or a zero modulus/exponent).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut cursor = bytes;
        let mut read_part = || -> Result<BigUint, CryptoError> {
            if cursor.len() < 4 {
                return Err(CryptoError::InvalidCiphertext);
            }
            let len = u32::from_be_bytes(cursor[..4].try_into().expect("4 bytes")) as usize;
            cursor = &cursor[4..];
            if cursor.len() < len {
                return Err(CryptoError::InvalidCiphertext);
            }
            let v = BigUint::from_bytes_be(&cursor[..len]);
            cursor = &cursor[len..];
            Ok(v)
        };
        let n = read_part()?;
        let e = read_part()?;
        if !cursor.is_empty() || n.is_zero() || e.is_zero() {
            return Err(CryptoError::InvalidCiphertext);
        }
        Ok(RsaPublicKey { n, e })
    }

    /// Raw RSA public operation `m^e mod n`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::ValueOutOfRange`] if `m >= n`.
    pub fn raw_encrypt(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::ValueOutOfRange);
        }
        Ok(m.modexp(&self.e, &self.n))
    }

    /// Verifies a PKCS#1-v1.5-style SHA-1 signature over `digest`.
    ///
    /// `digest` must be the 20-byte SHA-1 digest of the signed message.
    pub fn verify_pkcs1v15(&self, digest: &[u8; SHA1_DIGEST_LEN], sig: &Signature) -> bool {
        let k = self.modulus_len();
        if sig.0.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(&sig.0);
        let em_int = match self.raw_encrypt(&s) {
            Ok(v) => v,
            Err(_) => return false,
        };
        let em = em_int.to_bytes_be_padded(k);
        em == emsa_pkcs1_v15_encode(digest, k)
    }

    /// Encrypts `plaintext` with OAEP-style padding under `label`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] if the plaintext exceeds
    /// `k - 2*hLen - 2` bytes for this key size.
    pub fn encrypt_oaep(
        &self,
        plaintext: &[u8],
        label: &OaepLabel,
        rng: &mut Drbg,
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        let h_len = SHA1_DIGEST_LEN;
        if k < 2 * h_len + 2 {
            return Err(CryptoError::InvalidKeySize {
                bits: self.modulus_bits(),
            });
        }
        let max = k - 2 * h_len - 2;
        if plaintext.len() > max {
            return Err(CryptoError::MessageTooLong {
                len: plaintext.len(),
                max,
            });
        }

        // EME-OAEP encoding: EM = 0x00 || maskedSeed || maskedDB
        let l_hash = Sha1::digest(&label.0);
        let mut db = vec![0u8; k - h_len - 1];
        db[..h_len].copy_from_slice(&l_hash);
        let msg_start = db.len() - plaintext.len();
        db[msg_start - 1] = 0x01;
        db[msg_start..].copy_from_slice(plaintext);

        let seed = rng.fill(h_len);
        let db_mask = mgf1::<Sha1>(&seed, db.len());
        for (b, m) in db.iter_mut().zip(&db_mask) {
            *b ^= m;
        }
        let seed_mask = mgf1::<Sha1>(&db, h_len);
        let masked_seed: Vec<u8> = seed.iter().zip(&seed_mask).map(|(s, m)| s ^ m).collect();

        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.extend_from_slice(&masked_seed);
        em.extend_from_slice(&db);

        let m_int = BigUint::from_bytes_be(&em);
        let c = self.raw_encrypt(&m_int)?;
        Ok(c.to_bytes_be_padded(k))
    }
}

impl RsaPrivateKey {
    /// Generates a fresh keypair with an `bits`-bit modulus and public
    /// exponent 65537, drawing randomness from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeySize`] for `bits < 128` or odd
    /// sizes, and [`CryptoError::PrimeGenerationFailed`] if prime search
    /// does not converge (practically impossible).
    ///
    /// # Example
    ///
    /// ```
    /// use sea_crypto::{Drbg, RsaPrivateKey};
    ///
    /// # fn main() -> Result<(), sea_crypto::CryptoError> {
    /// let key = RsaPrivateKey::generate(512, &mut Drbg::new(b"seed"))?;
    /// assert_eq!(key.public_key().modulus_bits(), 512);
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate(bits: usize, rng: &mut Drbg) -> Result<Self, CryptoError> {
        if bits < 128 || !bits.is_multiple_of(2) {
            return Err(CryptoError::InvalidKeySize { bits });
        }
        let e = BigUint::from_u64(65_537);
        let one = BigUint::one();
        loop {
            let p = generate_prime(bits / 2, rng)?;
            let q = generate_prime(bits / 2, rng)?;
            if p == q {
                continue;
            }
            let n = p.mul_ref(&q);
            debug_assert_eq!(n.bit_len(), bits);
            let phi = p
                .checked_sub(&one)
                .unwrap()
                .mul_ref(&q.checked_sub(&one).unwrap());
            if !phi.gcd(&e).is_one() {
                continue;
            }
            let d = e.mod_inverse(&phi).expect("gcd checked above");
            let crt = CrtParams::derive(&d, p, q);
            debug_assert!(crt.is_some(), "distinct odd primes always derive");
            return Ok(RsaPrivateKey {
                public: RsaPublicKey { n, e },
                d,
                crt,
            });
        }
    }

    /// The public half of this keypair.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Serializes the key to bytes (length-prefixed `n`, `e`, `d`) —
    /// used to place keys in TPM sealed storage. The output contains the
    /// private exponent; treat it as secret.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [
            self.public.n.to_bytes_be(),
            self.public.e.to_bytes_be(),
            self.d.to_bytes_be(),
        ] {
            out.extend_from_slice(&(part.len() as u32).to_be_bytes());
            out.extend_from_slice(&part);
        }
        out
    }

    /// Deserializes a key written by [`RsaPrivateKey::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidCiphertext`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut cursor = bytes;
        let mut read_part = || -> Result<BigUint, CryptoError> {
            if cursor.len() < 4 {
                return Err(CryptoError::InvalidCiphertext);
            }
            let len = u32::from_be_bytes(cursor[..4].try_into().expect("4 bytes")) as usize;
            cursor = &cursor[4..];
            if cursor.len() < len {
                return Err(CryptoError::InvalidCiphertext);
            }
            let v = BigUint::from_bytes_be(&cursor[..len]);
            cursor = &cursor[len..];
            Ok(v)
        };
        let n = read_part()?;
        let e = read_part()?;
        let d = read_part()?;
        if n.is_zero() || e.is_zero() || d.is_zero() {
            return Err(CryptoError::InvalidCiphertext);
        }
        Ok(RsaPrivateKey {
            public: RsaPublicKey { n, e },
            d,
            crt: None,
        })
    }

    /// Whether this key carries CRT acceleration parameters.
    ///
    /// Generated keys always do; keys restored by
    /// [`RsaPrivateKey::from_bytes`] do not (the serialized form carries
    /// only `(n, e, d)`) until re-armed with [`RsaPrivateKey::with_crt`].
    pub fn has_crt(&self) -> bool {
        self.crt.is_some()
    }

    /// Attaches CRT acceleration parameters derived from the prime
    /// factors of the modulus.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::CrtParamsInvalid`] if `p * q != n` or the
    /// factors are degenerate (so a tampered factor can never silently
    /// corrupt future signatures).
    pub fn with_crt(mut self, p: BigUint, q: BigUint) -> Result<Self, CryptoError> {
        if p.mul_ref(&q) != self.public.n {
            return Err(CryptoError::CrtParamsInvalid);
        }
        let crt = CrtParams::derive(&self.d, p, q).ok_or(CryptoError::CrtParamsInvalid)?;
        self.crt = Some(crt);
        Ok(self)
    }

    /// Test hook: corrupts the stored CRT exponent `dp` in place, modeling
    /// a hardware fault in one exponentiation half. Used by the fault-path
    /// suites to prove the Bellcore check withholds the bad signature.
    #[doc(hidden)]
    pub fn with_faulted_crt(mut self) -> Self {
        if let Some(crt) = &mut self.crt {
            crt.dp = crt.dp.add_ref(&BigUint::one());
        }
        self
    }

    /// Runs the CRT private operation `c^d mod n` via Garner recombination
    /// and verifies the result against the public exponent before release.
    fn crt_private_op(
        &self,
        crt: &CrtParams,
        mp: &Montgomery,
        mq: &Montgomery,
        c: &BigUint,
    ) -> Result<BigUint, CryptoError> {
        let m1 = mp.modexp(&c.rem_ref(&crt.p), &crt.dp);
        let m2 = mq.modexp(&c.rem_ref(&crt.q), &crt.dq);
        // h = qinv * (m1 - m2) mod p, lifting m1 by p to avoid underflow.
        let m2p = m2.rem_ref(&crt.p);
        let diff = m1
            .add_ref(&crt.p)
            .checked_sub(&m2p)
            .expect("m2p < p <= m1 + p")
            .rem_ref(&crt.p);
        let h = crt.qinv.mul_ref(&diff).rem_ref(&crt.p);
        let s = m2.add_ref(&h.mul_ref(&crt.q));
        // Bellcore fault check: a fault in either half-exponentiation
        // would leak a factor of n if the bad signature were released, so
        // re-apply the public exponent and withhold on mismatch.
        if s.modexp(&self.public.e, &self.public.n) != *c {
            return Err(CryptoError::CrtFault);
        }
        Ok(s)
    }

    /// Raw RSA private operation `c^d mod n`, via CRT when the key carries
    /// factorization parameters (byte-identical to the full-size path).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::ValueOutOfRange`] if `c >= n`, and
    /// [`CryptoError::CrtFault`] if a CRT result fails the public-exponent
    /// consistency check.
    pub fn raw_decrypt(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c >= &self.public.n {
            return Err(CryptoError::ValueOutOfRange);
        }
        match &self.crt {
            Some(crt) => {
                let mp = Montgomery::new(&crt.p);
                let mq = Montgomery::new(&crt.q);
                self.crt_private_op(crt, &mp, &mq, c)
            }
            None => Ok(c.modexp(&self.d, &self.public.n)),
        }
    }

    /// Signs a 20-byte SHA-1 `digest` with PKCS#1-v1.5-style encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeySize`] if the modulus is too small
    /// to hold the encoded digest.
    pub fn sign_pkcs1v15(&self, digest: &[u8; SHA1_DIGEST_LEN]) -> Result<Signature, CryptoError> {
        let k = self.public.modulus_len();
        if k < SHA1_DIGEST_INFO_PREFIX.len() + SHA1_DIGEST_LEN + 11 {
            return Err(CryptoError::InvalidKeySize {
                bits: self.public.modulus_bits(),
            });
        }
        let em = emsa_pkcs1_v15_encode(digest, k);
        let m = BigUint::from_bytes_be(&em);
        let s = self.raw_decrypt(&m)?;
        Ok(Signature(s.to_bytes_be_padded(k)))
    }

    /// Signs a batch of 20-byte SHA-1 digests under this key, sharing the
    /// per-prime Montgomery contexts across the whole batch.
    ///
    /// Output is element-for-element byte-identical to calling
    /// [`RsaPrivateKey::sign_pkcs1v15`] on each digest; the batch form
    /// exists so same-epoch quote signatures amortize the `R^2 mod p`
    /// context setup instead of repeating it per signature.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeySize`] if the modulus is too small
    /// to hold the encoded digest, and [`CryptoError::CrtFault`] if any
    /// CRT result fails the public-exponent consistency check (no partial
    /// batch is returned).
    pub fn sign_pkcs1v15_batch(
        &self,
        digests: &[[u8; SHA1_DIGEST_LEN]],
    ) -> Result<Vec<Signature>, CryptoError> {
        let k = self.public.modulus_len();
        if k < SHA1_DIGEST_INFO_PREFIX.len() + SHA1_DIGEST_LEN + 11 {
            return Err(CryptoError::InvalidKeySize {
                bits: self.public.modulus_bits(),
            });
        }
        let contexts = self
            .crt
            .as_ref()
            .map(|crt| (crt, Montgomery::new(&crt.p), Montgomery::new(&crt.q)));
        digests
            .iter()
            .map(|digest| {
                // EMSA output starts 0x00 0x01, so m < n always holds.
                let m = BigUint::from_bytes_be(&emsa_pkcs1_v15_encode(digest, k));
                let s = match &contexts {
                    Some((crt, mp, mq)) => self.crt_private_op(crt, mp, mq, &m)?,
                    None => m.modexp(&self.d, &self.public.n),
                };
                Ok(Signature(s.to_bytes_be_padded(k)))
            })
            .collect()
    }

    /// Decrypts an OAEP-style ciphertext produced by
    /// [`RsaPublicKey::encrypt_oaep`] under the same `label`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidCiphertext`] if the ciphertext has the
    /// wrong length, fails the OAEP integrity check, or was encrypted under
    /// a different label or key.
    pub fn decrypt_oaep(
        &self,
        ciphertext: &[u8],
        label: &OaepLabel,
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let h_len = SHA1_DIGEST_LEN;
        if ciphertext.len() != k || k < 2 * h_len + 2 {
            return Err(CryptoError::InvalidCiphertext);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let m = self
            .raw_decrypt(&c)
            .map_err(|_| CryptoError::InvalidCiphertext)?;
        let em = m.to_bytes_be_padded(k);

        if em[0] != 0x00 {
            return Err(CryptoError::InvalidCiphertext);
        }
        let masked_seed = &em[1..1 + h_len];
        let masked_db = &em[1 + h_len..];

        let seed_mask = mgf1::<Sha1>(masked_db, h_len);
        let seed: Vec<u8> = masked_seed
            .iter()
            .zip(&seed_mask)
            .map(|(s, m)| s ^ m)
            .collect();
        let db_mask = mgf1::<Sha1>(&seed, masked_db.len());
        let db: Vec<u8> = masked_db.iter().zip(&db_mask).map(|(b, m)| b ^ m).collect();

        let l_hash = Sha1::digest(&label.0);
        if db[..h_len] != l_hash {
            return Err(CryptoError::InvalidCiphertext);
        }
        // Find the 0x01 separator after the padding zeros.
        let mut idx = h_len;
        while idx < db.len() && db[idx] == 0x00 {
            idx += 1;
        }
        if idx >= db.len() || db[idx] != 0x01 {
            return Err(CryptoError::InvalidCiphertext);
        }
        Ok(db[idx + 1..].to_vec())
    }
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-1 digest into `k` bytes.
fn emsa_pkcs1_v15_encode(digest: &[u8; SHA1_DIGEST_LEN], k: usize) -> Vec<u8> {
    let t_len = SHA1_DIGEST_INFO_PREFIX.len() + SHA1_DIGEST_LEN;
    debug_assert!(k >= t_len + 11);
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xFF);
    em.push(0x00);
    em.extend_from_slice(&SHA1_DIGEST_INFO_PREFIX);
    em.extend_from_slice(digest);
    em
}

/// MGF1 mask generation (PKCS#1 §B.2.1) over digest `D`.
fn mgf1<D: Digest>(seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter: u32 = 0;
    while out.len() < len {
        let mut h = D::new();
        h.update(seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> RsaPrivateKey {
        RsaPrivateKey::generate(512, &mut Drbg::new(b"rsa test key")).unwrap()
    }

    #[test]
    fn generate_rejects_bad_sizes() {
        let mut rng = Drbg::new(b"x");
        assert!(matches!(
            RsaPrivateKey::generate(64, &mut rng),
            Err(CryptoError::InvalidKeySize { bits: 64 })
        ));
        assert!(matches!(
            RsaPrivateKey::generate(513, &mut rng),
            Err(CryptoError::InvalidKeySize { bits: 513 })
        ));
    }

    #[test]
    fn raw_roundtrip() {
        let key = test_key();
        let m = BigUint::from_u64(0xdead_beef);
        let c = key.public_key().raw_encrypt(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(key.raw_decrypt(&c).unwrap(), m);
    }

    #[test]
    fn raw_rejects_oversized_operand() {
        let key = test_key();
        let too_big = key.public_key().modulus().clone();
        assert_eq!(
            key.public_key().raw_encrypt(&too_big),
            Err(CryptoError::ValueOutOfRange)
        );
        assert_eq!(key.raw_decrypt(&too_big), Err(CryptoError::ValueOutOfRange));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        let digest = Sha1::digest(b"a PCR composite");
        let sig = key.sign_pkcs1v15(&digest).unwrap();
        assert!(key.public_key().verify_pkcs1v15(&digest, &sig));
    }

    #[test]
    fn verify_rejects_wrong_digest() {
        let key = test_key();
        let sig = key.sign_pkcs1v15(&Sha1::digest(b"message")).unwrap();
        assert!(!key
            .public_key()
            .verify_pkcs1v15(&Sha1::digest(b"other"), &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let digest = Sha1::digest(b"message");
        let mut sig = key.sign_pkcs1v15(&digest).unwrap();
        sig.0[10] ^= 0x01;
        assert!(!key.public_key().verify_pkcs1v15(&digest, &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = test_key();
        let other = RsaPrivateKey::generate(512, &mut Drbg::new(b"other key")).unwrap();
        let digest = Sha1::digest(b"message");
        let sig = key.sign_pkcs1v15(&digest).unwrap();
        assert!(!other.public_key().verify_pkcs1v15(&digest, &sig));
    }

    #[test]
    fn verify_rejects_wrong_length_signature() {
        let key = test_key();
        let digest = Sha1::digest(b"message");
        let sig = key.sign_pkcs1v15(&digest).unwrap();
        let short = Signature(sig.0[1..].to_vec());
        assert!(!key.public_key().verify_pkcs1v15(&digest, &short));
    }

    #[test]
    fn oaep_roundtrip() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep rng");
        let label = OaepLabel(b"SEAL".to_vec());
        let pt = b"secret PAL state";
        let ct = key.public_key().encrypt_oaep(pt, &label, &mut rng).unwrap();
        assert_eq!(key.decrypt_oaep(&ct, &label).unwrap(), pt);
    }

    #[test]
    fn oaep_roundtrip_empty_plaintext() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep rng");
        let label = OaepLabel::default();
        let ct = key
            .public_key()
            .encrypt_oaep(b"", &label, &mut rng)
            .unwrap();
        assert_eq!(key.decrypt_oaep(&ct, &label).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oaep_is_randomized() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep rng");
        let label = OaepLabel::default();
        let c1 = key
            .public_key()
            .encrypt_oaep(b"m", &label, &mut rng)
            .unwrap();
        let c2 = key
            .public_key()
            .encrypt_oaep(b"m", &label, &mut rng)
            .unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn oaep_rejects_wrong_label() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep rng");
        let ct = key
            .public_key()
            .encrypt_oaep(b"m", &OaepLabel(b"SEAL".to_vec()), &mut rng)
            .unwrap();
        assert_eq!(
            key.decrypt_oaep(&ct, &OaepLabel(b"QUOTE".to_vec())),
            Err(CryptoError::InvalidCiphertext)
        );
    }

    #[test]
    fn oaep_rejects_tampered_ciphertext() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep rng");
        let label = OaepLabel::default();
        let mut ct = key
            .public_key()
            .encrypt_oaep(b"m", &label, &mut rng)
            .unwrap();
        let last = ct.len() - 1;
        ct[last] ^= 1;
        assert_eq!(
            key.decrypt_oaep(&ct, &label),
            Err(CryptoError::InvalidCiphertext)
        );
    }

    #[test]
    fn oaep_rejects_message_too_long() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep rng");
        let k = key.public_key().modulus_len();
        let max = k - 2 * SHA1_DIGEST_LEN - 2;
        let too_long = vec![0u8; max + 1];
        assert!(matches!(
            key.public_key()
                .encrypt_oaep(&too_long, &OaepLabel::default(), &mut rng),
            Err(CryptoError::MessageTooLong { .. })
        ));
        // Boundary: exactly max bytes must succeed.
        let fits = vec![0u8; max];
        assert!(key
            .public_key()
            .encrypt_oaep(&fits, &OaepLabel::default(), &mut rng)
            .is_ok());
    }

    #[test]
    fn oaep_rejects_wrong_length_ciphertext() {
        let key = test_key();
        assert_eq!(
            key.decrypt_oaep(b"short", &OaepLabel::default()),
            Err(CryptoError::InvalidCiphertext)
        );
    }

    #[test]
    fn fingerprint_is_stable_and_key_specific() {
        let key = test_key();
        assert_eq!(
            key.public_key().fingerprint(),
            key.public_key().fingerprint()
        );
        let other = RsaPrivateKey::generate(512, &mut Drbg::new(b"other")).unwrap();
        assert_ne!(
            key.public_key().fingerprint(),
            other.public_key().fingerprint()
        );
    }

    #[test]
    fn debug_hides_private_exponent() {
        let key = test_key();
        let s = format!("{key:?}");
        assert!(s.contains("modulus_bits"));
        assert!(!s.contains(&format!("{:x}", key.d)));
    }

    #[test]
    fn key_serialization_roundtrip() {
        let key = test_key();
        let bytes = key.to_bytes();
        let back = RsaPrivateKey::from_bytes(&bytes).unwrap();
        assert_eq!(back.public_key(), key.public_key());
        // The restored key signs interchangeably with the original.
        let digest = Sha1::digest(b"payload");
        let sig = back.sign_pkcs1v15(&digest).unwrap();
        assert!(key.public_key().verify_pkcs1v15(&digest, &sig));
    }

    #[test]
    fn key_deserialization_rejects_garbage() {
        assert!(RsaPrivateKey::from_bytes(b"").is_err());
        assert!(RsaPrivateKey::from_bytes(&[0xff; 3]).is_err());
        assert!(RsaPrivateKey::from_bytes(&[0, 0, 0, 200, 1]).is_err());
        // All-zero parts rejected.
        let mut zeros = Vec::new();
        for _ in 0..3 {
            zeros.extend_from_slice(&1u32.to_be_bytes());
            zeros.push(0);
        }
        assert!(RsaPrivateKey::from_bytes(&zeros).is_err());
    }

    #[test]
    fn generated_keys_carry_crt_and_restored_keys_do_not() {
        let key = test_key();
        assert!(key.has_crt());
        let restored = RsaPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        assert!(!restored.has_crt());
    }

    #[test]
    fn crt_signature_matches_full_exponentiation() {
        let key = test_key();
        // The serialized form drops the factors, so the restored key runs
        // the classic full-size path — a differential oracle for CRT.
        let classic = RsaPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        for msg in [b"quote".as_slice(), b"", b"composite pcr state"] {
            let digest = Sha1::digest(msg);
            assert_eq!(
                key.sign_pkcs1v15(&digest).unwrap(),
                classic.sign_pkcs1v15(&digest).unwrap()
            );
        }
    }

    #[test]
    fn crt_decrypt_matches_full_exponentiation() {
        let key = test_key();
        let classic = RsaPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        let c = BigUint::from_u64(0x0fee_d5ea_0000_0001);
        assert_eq!(
            key.raw_decrypt(&c).unwrap(),
            classic.raw_decrypt(&c).unwrap()
        );
    }

    #[test]
    fn batch_signing_matches_individual_signatures() {
        let key = test_key();
        let digests = [
            Sha1::digest(b"session 0"),
            Sha1::digest(b"session 1"),
            Sha1::digest(b"session 2"),
        ];
        let batch = key.sign_pkcs1v15_batch(&digests).unwrap();
        assert_eq!(batch.len(), digests.len());
        for (digest, sig) in digests.iter().zip(&batch) {
            assert_eq!(&key.sign_pkcs1v15(digest).unwrap(), sig);
            assert!(key.public_key().verify_pkcs1v15(digest, sig));
        }
        // A CRT-less key takes the fallback path to the same bytes.
        let classic = RsaPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        assert_eq!(classic.sign_pkcs1v15_batch(&digests).unwrap(), batch);
        assert!(key.sign_pkcs1v15_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn with_crt_rearms_a_restored_key() {
        let key = test_key();
        let crt = key.crt.clone().unwrap();
        let rearmed = RsaPrivateKey::from_bytes(&key.to_bytes())
            .unwrap()
            .with_crt(crt.p, crt.q)
            .unwrap();
        assert!(rearmed.has_crt());
        let digest = Sha1::digest(b"rearmed");
        assert_eq!(
            rearmed.sign_pkcs1v15(&digest).unwrap(),
            key.sign_pkcs1v15(&digest).unwrap()
        );
    }

    #[test]
    fn with_crt_rejects_tampered_factors() {
        let key = test_key();
        let crt = key.crt.clone().unwrap();
        let two = BigUint::from_u64(2);
        // p+2 no longer multiplies to n.
        let bad_p = crt.p.add_ref(&two);
        let stripped = RsaPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        assert_eq!(
            stripped.clone().with_crt(bad_p, crt.q.clone()).err(),
            Some(CryptoError::CrtParamsInvalid)
        );
        // Degenerate split 1 * n == n is rejected too.
        assert_eq!(
            stripped
                .with_crt(BigUint::one(), key.public_key().modulus().clone())
                .err(),
            Some(CryptoError::CrtParamsInvalid)
        );
    }

    #[test]
    fn faulted_crt_half_is_detected_not_released() {
        let key = test_key().with_faulted_crt();
        let digest = Sha1::digest(b"faulted");
        assert_eq!(
            key.sign_pkcs1v15(&digest).err(),
            Some(CryptoError::CrtFault)
        );
        assert_eq!(
            key.sign_pkcs1v15_batch(&[digest]).err(),
            Some(CryptoError::CrtFault)
        );
    }

    #[test]
    fn mgf1_deterministic_and_length_exact() {
        let a = mgf1::<Sha1>(b"seed", 45);
        let b = mgf1::<Sha1>(b"seed", 45);
        assert_eq!(a, b);
        assert_eq!(a.len(), 45);
        assert_ne!(mgf1::<Sha1>(b"seed2", 45), a);
    }
}
