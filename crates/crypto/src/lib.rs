//! # sea-crypto
//!
//! From-scratch cryptographic substrate for the minimal-TCB reproduction of
//! McCune et al., *"How Low Can You Go? Recommendations for
//! Hardware-Supported Minimal TCB Code Execution"* (ASPLOS 2008).
//!
//! The TPM is part of the system under study in that paper: its `Seal`,
//! `Unseal` and `Quote` commands are 2048-bit RSA operations, and its PCRs
//! are SHA-1 hash chains ([RFC 3174], cited as reference \[12\] in the
//! paper). To reproduce the system faithfully, this crate implements the
//! whole stack with no external cryptography crates:
//!
//! * [`Sha1`] — the hash the TPM v1.2 specification uses for PCR extension
//!   and PAL measurement.
//! * [`Sha256`] — used by the sealed-storage key-derivation path.
//! * [`Hmac`] — generic MAC over any [`Digest`], used for sealed-blob
//!   integrity and the deterministic random-bit generator.
//! * [`BigUint`] — arbitrary-precision unsigned integers with Montgomery
//!   modular exponentiation, powering RSA.
//! * [`RsaPrivateKey`] / [`RsaPublicKey`] — key generation (Miller–Rabin),
//!   PKCS#1-v1.5-style signatures (TPM `Quote`) and OAEP-style encryption
//!   (TPM `Seal`/`Unseal`).
//! * [`Drbg`] — a deterministic HMAC-DRBG used as the TPM's random number
//!   generator (`TPM_GetRandom`) and for reproducible key generation.
//!
//! # Example
//!
//! ```
//! use sea_crypto::{Drbg, RsaPrivateKey, Sha1};
//!
//! # fn main() -> Result<(), sea_crypto::CryptoError> {
//! let mut rng = Drbg::new(b"example seed");
//! let key = RsaPrivateKey::generate(512, &mut rng)?;
//! let digest = Sha1::digest(b"a PAL measurement");
//! let sig = key.sign_pkcs1v15(&digest)?;
//! assert!(key.public_key().verify_pkcs1v15(&digest, &sig));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bignum;
mod digest;
mod drbg;
mod error;
mod hex;
mod hmac;
mod prime;
mod rsa;
mod sha1;
mod sha256;

pub use bignum::BigUint;
pub use digest::Digest;
pub use drbg::Drbg;
pub use error::CryptoError;
pub use hex::{from_hex, to_hex};
pub use hmac::Hmac;
pub use prime::{generate_prime, is_probably_prime};
pub use rsa::{OaepLabel, RsaPrivateKey, RsaPublicKey, Signature};
pub use sha1::{Sha1, SHA1_DIGEST_LEN};
pub use sha256::{Sha256, SHA256_DIGEST_LEN};

/// Convenience alias for 20-byte SHA-1 digests, the measurement unit of the
/// TPM v1.2 specification used throughout the paper.
pub type Sha1Digest = [u8; SHA1_DIGEST_LEN];
