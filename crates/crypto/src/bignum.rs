//! Arbitrary-precision unsigned integers for the RSA substrate.
//!
//! The TPM's `Seal`, `Unseal`, and `Quote` commands are 2048-bit RSA
//! operations (the dominant source of the latencies measured in Figure 3 of
//! the paper), so the reproduction carries a real big-integer engine:
//!
//! * little-endian `u64` limbs, always normalized (no high zero limbs),
//! * schoolbook multiplication with `u128` accumulation,
//! * Knuth Algorithm D division,
//! * Montgomery (CIOS) modular exponentiation for odd moduli, and
//! * extended-Euclid modular inversion for key generation.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Shl, Shr, Sub};

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use sea_crypto::BigUint;
///
/// let a = BigUint::from_u64(1 << 40);
/// let b = &a * &a;
/// assert_eq!(b.bit_len(), 81);
/// assert_eq!(&b % &a, BigUint::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs; invariant: no trailing (most-significant) zeros.
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{:x})", self)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex display keeps the implementation dependency-free; decimal
        // conversion is not needed anywhere in the simulator.
        write!(f, "0x{:x}", self)
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for &limb in self.limbs.iter().rev() {
            if first {
                write!(f, "{limb:x}")?;
                first = false;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

impl Default for BigUint {
    fn default() -> Self {
        Self::zero()
    }
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from big-endian bytes. Leading zero bytes are permitted.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if cur != 0 {
            limbs.push(cur);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to minimal big-endian bytes (empty vector for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with
    /// zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value of {} bytes does not fit in {} bytes",
            raw.len(),
            len
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order; bit 0 is the LSB).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            None => false,
            Some(&l) => (l >> (i % 64)) & 1 == 1,
        }
    }

    /// Interprets the low 64 bits as a `u64` (truncating).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the carry chain
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u128 = 0;
        for i in 0..long.len() {
            let s = long[i] as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint { limbs: out }
    }

    /// Subtraction, returning `None` on underflow (`self < other`).
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i128 = 0;
        for i in 0..self.limbs.len() {
            let d =
                self.limbs[i] as i128 - other.limbs.get(i).copied().unwrap_or(0) as i128 - borrow;
            if d < 0 {
                out.push((d + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(d as u64);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        Some(r)
    }

    /// Multiplication (schoolbook, `u128` accumulation).
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let s = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let s = out[k] as u128 + carry;
                out[k] = s as u64;
                carry = s >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Division with remainder: returns `(quotient, remainder)` with
    /// `self == quotient * divisor + remainder` and
    /// `remainder < divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            return self.divrem_u64(divisor.limbs[0]);
        }
        self.divrem_knuth(divisor)
    }

    fn divrem_u64(&self, d: u64) -> (BigUint, BigUint) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut quot = BigUint { limbs: q };
        quot.normalize();
        (quot, BigUint::from_u64(rem as u64))
    }

    /// Knuth Algorithm D (TAOCP Vol. 2, 4.3.1), 64-bit limb port.
    fn divrem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl_bits(shift).limbs;
        let mut u = self.shl_bits(shift).limbs;
        let n = v.len();
        u.push(0); // u gains one extra high limb for the algorithm
        let m = u.len() - n - 1;
        let mut q = vec![0u64; m + 1];

        const BASE: u128 = 1u128 << 64;
        for j in (0..=m).rev() {
            // Estimate qhat from the top two limbs of the current window.
            let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = num / v[n - 1] as u128;
            let mut rhat = num % v[n - 1] as u128;
            while qhat >= BASE || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= BASE {
                    break;
                }
            }

            // Multiply-subtract: u[j..j+n+1] -= qhat * v.
            let mut k: i128 = 0;
            for i in 0..n {
                let p = qhat * v[i] as u128;
                let t = u[j + i] as i128 - k - (p as u64) as i128;
                u[j + i] = t as u64;
                k = (p >> 64) as i128 - (t >> 64);
            }
            let t = u[j + n] as i128 - k;
            u[j + n] = t as u64;

            if t < 0 {
                // qhat was one too large: add one divisor back.
                qhat -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let mut quot = BigUint { limbs: q };
        quot.normalize();
        let mut rem = BigUint {
            limbs: u[..n].to_vec(),
        };
        rem.normalize();
        (quot, rem.shr_bits(shift))
    }

    /// `self mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_ref(&self, modulus: &BigUint) -> BigUint {
        self.divrem(modulus).1
    }

    /// Modular exponentiation `self^exponent mod modulus`.
    ///
    /// Uses Montgomery (CIOS) multiplication when the modulus is odd — the
    /// case for every RSA modulus — and falls back to division-based
    /// square-and-multiply otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modexp(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modexp with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        let base = self.rem_ref(modulus);
        if modulus.is_even() {
            return base.modexp_generic(exponent, modulus);
        }
        Montgomery::new(modulus).modexp(&base, exponent)
    }

    fn modexp_generic(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        let mut result = BigUint::one();
        let mut base = self.rem_ref(modulus);
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mul_ref(&base).rem_ref(modulus);
            }
            base = base.mul_ref(&base).rem_ref(modulus);
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid via `divrem`).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem_ref(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: returns `x` with `self * x ≡ 1 (mod modulus)`, or
    /// `None` if `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid with a signed coefficient track.
        let mut old_r = self.rem_ref(modulus);
        let mut r = modulus.clone();
        let mut old_t = Signed::pos(BigUint::one());
        let mut t = Signed::pos(BigUint::zero());
        // Standard loop but with (old_r, r) roles such that the invariant
        // old_t * self ≡ old_r (mod modulus) holds.
        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            let new_t = old_t.sub(&t.mul_mag(&q));
            old_r = std::mem::replace(&mut r, rem);
            old_t = std::mem::replace(&mut t, new_t);
        }
        if !old_r.is_one() {
            return None;
        }
        Some(old_t.normalize_mod(modulus))
    }
}

/// Minimal signed big integer used only inside the extended Euclid.
#[derive(Clone, Debug)]
struct Signed {
    neg: bool,
    mag: BigUint,
}

impl Signed {
    fn pos(mag: BigUint) -> Self {
        Signed { neg: false, mag }
    }

    fn mul_mag(&self, m: &BigUint) -> Signed {
        Signed {
            neg: self.neg && !m.is_zero(),
            mag: self.mag.mul_ref(m),
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.neg, other.neg) {
            (false, true) => Signed::pos(self.mag.add_ref(&other.mag)),
            (true, false) => Signed {
                neg: !self.mag.add_ref(&other.mag).is_zero(),
                mag: self.mag.add_ref(&other.mag),
            },
            (a_neg, _) => {
                // Same sign: |result| = |a| - |b| with possible flip.
                if self.mag >= other.mag {
                    let mag = self.mag.checked_sub(&other.mag).unwrap();
                    Signed {
                        neg: a_neg && !mag.is_zero(),
                        mag,
                    }
                } else {
                    let mag = other.mag.checked_sub(&self.mag).unwrap();
                    Signed {
                        neg: !a_neg && !mag.is_zero(),
                        mag,
                    }
                }
            }
        }
    }

    fn normalize_mod(&self, modulus: &BigUint) -> BigUint {
        let r = self.mag.rem_ref(modulus);
        if self.neg && !r.is_zero() {
            modulus.checked_sub(&r).unwrap()
        } else {
            r
        }
    }
}

/// Montgomery multiplication context (CIOS method) for an odd modulus.
///
/// Crate-internal: [`BigUint::modexp`] builds one per call, and the RSA
/// CRT/batch signing paths ([`crate::rsa`]) build one per prime half and
/// reuse it across a whole batch of signatures, amortizing the `R^2 mod m`
/// precomputation that dominates context setup.
pub(crate) struct Montgomery {
    m: Vec<u64>,
    n0inv: u64,
    /// R^2 mod m, used to convert into Montgomery form.
    r2: BigUint,
    modulus: BigUint,
}

impl Montgomery {
    pub(crate) fn new(modulus: &BigUint) -> Self {
        debug_assert!(!modulus.is_even());
        let m = modulus.limbs.clone();
        // n0inv = -m[0]^-1 mod 2^64 via Newton iteration.
        let m0 = m[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let n0inv = inv.wrapping_neg();
        let k = m.len();
        let r = BigUint::one().shl_bits(64 * k).rem_ref(modulus);
        let r2 = r.mul_ref(&r).rem_ref(modulus);
        Montgomery {
            m,
            n0inv,
            r2,
            modulus: modulus.clone(),
        }
    }

    /// CIOS Montgomery product: returns `a * b * R^-1 mod m` where inputs
    /// are `k`-limb little-endian values below `m`.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the CIOS paper
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.m.len();
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b.get(j).copied().unwrap_or(0) as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] += (s >> 64) as u64;

            // Reduce one limb: t = (t + mi * m) / 2^64
            let mi = t[0].wrapping_mul(self.n0inv);
            let s = t[0] as u128 + mi as u128 * self.m[0] as u128;
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + mi as u128 * self.m[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + (s >> 64) as u64;
            t[k + 1] = 0;
        }

        // Conditional final subtraction: result may be in [0, 2m).
        let needs_sub = t[k] != 0 || cmp_limbs(&t[..k], &self.m) != Ordering::Less;
        let mut out = t[..k].to_vec();
        if needs_sub {
            let mut borrow: i128 = 0;
            for j in 0..k {
                let d = out[j] as i128 - self.m[j] as i128 - borrow;
                if d < 0 {
                    out[j] = (d + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    out[j] = d as u64;
                    borrow = 0;
                }
            }
        }
        out
    }

    /// `base^exponent mod m` for `base` already reduced below the modulus.
    pub(crate) fn modexp(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        let k = self.m.len();
        let mut base_limbs = base.limbs.clone();
        base_limbs.resize(k, 0);
        // Convert to Montgomery form.
        let mut r2 = self.r2.limbs.clone();
        r2.resize(k, 0);
        let base_mont = self.mont_mul(&base_limbs, &r2);
        // result = R mod m in Montgomery form == mont(1) == 1*R
        let mut one = vec![0u64; k];
        one[0] = 1;
        let mut result = self.mont_mul(&one, &r2);

        for i in (0..exponent.bit_len()).rev() {
            result = self.mont_mul(&result, &result);
            if exponent.bit(i) {
                result = self.mont_mul(&result, &base_mont);
            }
        }
        // Convert out of Montgomery form.
        let out = self.mont_mul(&result, &one);
        let mut r = BigUint { limbs: out };
        r.normalize();
        debug_assert!(r < self.modulus);
        r
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => cmp_limbs(&self.limbs, &other.limbs),
            other => other,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

impl std::ops::Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.rem_ref(rhs)
    }
}

impl std::ops::Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let cases: [&[u8]; 5] = [
            &[],
            &[0x01],
            &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01],
            &[0x12, 0x34, 0x56],
            &[0x80, 0, 0, 0, 0, 0, 0, 0, 0],
        ];
        for bytes in cases {
            let v = BigUint::from_bytes_be(bytes);
            let back = v.to_bytes_be();
            // Round trip strips leading zeros.
            let stripped: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, stripped);
        }
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0, 5]), BigUint::from_u64(5));
    }

    #[test]
    fn padded_serialization() {
        let v = n(0x1234);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_too_small_panics() {
        n(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn add_with_carry_chains() {
        let a = BigUint::from_bytes_be(&[0xff; 16]);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(&sum - &b, a);
    }

    #[test]
    fn sub_underflow_is_none() {
        assert!(n(3).checked_sub(&n(5)).is_none());
        assert_eq!(n(5).checked_sub(&n(3)).unwrap(), n(2));
        assert_eq!(n(5).checked_sub(&n(5)).unwrap(), BigUint::zero());
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!(&n(7) * &n(6), n(42));
        assert_eq!(&n(0) * &n(6), BigUint::zero());
        let big = BigUint::from_bytes_be(&[0xff; 32]);
        let sq = &big * &big;
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1 -> 512 bits
        assert_eq!(sq.bit_len(), 512);
    }

    #[test]
    fn shifts_inverse_each_other() {
        let v = BigUint::from_bytes_be(&[0xde, 0xad, 0xbe, 0xef, 0x12, 0x34]);
        for bits in [0, 1, 7, 63, 64, 65, 130] {
            assert_eq!((&(&v << bits)) >> bits, v, "bits={bits}");
        }
    }

    #[test]
    fn divrem_simple_cases() {
        let (q, r) = n(17).divrem(&n(5));
        assert_eq!((q, r), (n(3), n(2)));
        let (q, r) = n(4).divrem(&n(5));
        assert_eq!((q, r), (BigUint::zero(), n(4)));
        let (q, r) = n(5).divrem(&n(5));
        assert_eq!((q, r), (BigUint::one(), BigUint::zero()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divrem_by_zero_panics() {
        let _ = n(1).divrem(&BigUint::zero());
    }

    #[test]
    fn divrem_multi_limb_knuth_path() {
        // Construct values forcing the Knuth path (divisor > 1 limb).
        let a = BigUint::from_bytes_be(&[0xab; 40]);
        let d = BigUint::from_bytes_be(&[0x17; 17]);
        let (q, r) = a.divrem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn divrem_knuth_addback_case() {
        // A classic add-back trigger: u = b^4 / 2, v = b^2 / 2 + 1 style
        // values where qhat overestimates.
        let b64 = BigUint::one().shl_bits(64);
        let u = BigUint::one()
            .shl_bits(256)
            .checked_sub(&BigUint::one())
            .unwrap();
        let v = b64.shl_bits(64).checked_sub(&BigUint::one()).unwrap();
        let (q, r) = u.divrem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn modexp_small_known_values() {
        // 4^13 mod 497 = 445
        assert_eq!(n(4).modexp(&n(13), &n(497)), n(445));
        // base^0 = 1
        assert_eq!(n(9).modexp(&n(0), &n(7)), BigUint::one());
        // mod 1 = 0
        assert_eq!(n(9).modexp(&n(5), &n(1)), BigUint::zero());
    }

    #[test]
    fn modexp_even_modulus_fallback() {
        // 3^5 mod 16 = 243 mod 16 = 3
        assert_eq!(n(3).modexp(&n(5), &n(16)), n(3));
    }

    #[test]
    fn montgomery_matches_generic_modexp() {
        // Deterministic pseudo-random multi-limb values.
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let base_bytes: Vec<u8> = (0..24).map(|_| next() as u8).collect();
            let exp_bytes: Vec<u8> = (0..8).map(|_| next() as u8).collect();
            let mut mod_bytes: Vec<u8> = (0..24).map(|_| next() as u8).collect();
            mod_bytes[0] |= 0x80; // full size
            *mod_bytes.last_mut().unwrap() |= 1; // odd
            let b = BigUint::from_bytes_be(&base_bytes);
            let e = BigUint::from_bytes_be(&exp_bytes);
            let m = BigUint::from_bytes_be(&mod_bytes);
            assert_eq!(b.modexp(&e, &m), b.modexp_generic(&e, &m));
        }
    }

    #[test]
    fn gcd_and_inverse() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(5)), n(1));
        // 3 * 4 = 12 ≡ 1 mod 11
        assert_eq!(n(3).mod_inverse(&n(11)).unwrap(), n(4));
        // gcd != 1 -> None
        assert!(n(4).mod_inverse(&n(8)).is_none());
        // mod 1 -> None (degenerate)
        assert!(n(4).mod_inverse(&n(1)).is_none());
    }

    #[test]
    fn inverse_multi_limb() {
        let m = BigUint::from_bytes_be(&[
            0xc7, 0x2e, 0x9b, 0x3f, 0x11, 0x88, 0x5d, 0x2a, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab,
            0xcd, 0xef, 0x13,
        ]);
        let a = n(65537);
        if let Some(inv) = a.mod_inverse(&m) {
            assert_eq!(a.mul_ref(&inv).rem_ref(&m), BigUint::one());
        } else {
            panic!("expected inverse to exist");
        }
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(n(5) < n(6));
        assert!(BigUint::from_bytes_be(&[1, 0, 0, 0, 0, 0, 0, 0, 0]) > n(u64::MAX));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", n(255)), "0xff");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        assert!(format!("{:?}", n(16)).contains("0x10"));
        // Multi-limb hex keeps interior zero padding.
        let v = BigUint::one().shl_bits(64);
        assert_eq!(format!("{v:x}"), format!("1{}", "0".repeat(16)));
    }
}
