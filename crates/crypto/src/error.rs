//! Error type shared by all cryptographic operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors returned by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A message was too large for the RSA modulus it was to be processed
    /// under (e.g. an OAEP plaintext longer than `k - 2*hLen - 2`).
    MessageTooLong {
        /// Length of the offending message in bytes.
        len: usize,
        /// Maximum length permitted by the key size and padding scheme.
        max: usize,
    },
    /// A ciphertext, signature, or encoded message failed structural or
    /// integrity validation during decoding.
    InvalidCiphertext,
    /// A signature failed verification.
    BadSignature,
    /// Key generation parameters were invalid (e.g. a modulus size too
    /// small to hold the padding overhead).
    InvalidKeySize {
        /// The requested modulus size in bits.
        bits: usize,
    },
    /// Prime generation failed to converge within its iteration budget.
    PrimeGenerationFailed,
    /// An operand was out of range (e.g. RSA input not below the modulus).
    ValueOutOfRange,
    /// Supplied CRT parameters are inconsistent with the key (e.g.
    /// `p * q != n`, an even factor, or a non-invertible `q mod p`).
    CrtParamsInvalid,
    /// A CRT private-key operation produced a result that fails the
    /// public-exponent consistency check — the signature is withheld to
    /// defeat Bellcore-style fault attacks on half-size exponentiations.
    CrtFault,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLong { len, max } => {
                write!(f, "message of {len} bytes exceeds maximum of {max} bytes")
            }
            CryptoError::InvalidCiphertext => write!(f, "ciphertext failed validation"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidKeySize { bits } => {
                write!(f, "invalid RSA key size: {bits} bits")
            }
            CryptoError::PrimeGenerationFailed => {
                write!(f, "prime generation did not converge")
            }
            CryptoError::ValueOutOfRange => write!(f, "operand out of range"),
            CryptoError::CrtParamsInvalid => {
                write!(f, "supplied CRT parameters do not match the key")
            }
            CryptoError::CrtFault => {
                write!(
                    f,
                    "faulted CRT result withheld (public-exponent check failed)"
                )
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            CryptoError::MessageTooLong { len: 10, max: 5 },
            CryptoError::InvalidCiphertext,
            CryptoError::BadSignature,
            CryptoError::InvalidKeySize { bits: 8 },
            CryptoError::PrimeGenerationFailed,
            CryptoError::ValueOutOfRange,
            CryptoError::CrtParamsInvalid,
            CryptoError::CrtFault,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
