//! Deterministic random bit generator (HMAC-DRBG, after NIST SP 800-90A).
//!
//! The simulated TPM's `TPM_GetRandom` command and its key-generation paths
//! draw from this generator. Determinism is a feature: every experiment in
//! the reproduction is replayable from a seed.

use crate::hmac::Hmac;
use crate::sha256::Sha256;

/// A deterministic HMAC-SHA-256 DRBG.
///
/// # Example
///
/// ```
/// use sea_crypto::Drbg;
///
/// let mut a = Drbg::new(b"seed");
/// let mut b = Drbg::new(b"seed");
/// assert_eq!(a.fill(16), b.fill(16));
/// let mut c = Drbg::new(b"other seed");
/// assert_ne!(a.fill(16), c.fill(16));
/// ```
#[derive(Debug, Clone)]
pub struct Drbg {
    key: Vec<u8>,
    value: Vec<u8>,
}

impl Drbg {
    /// Instantiates the DRBG from arbitrary seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = Drbg {
            key: vec![0u8; 32],
            value: vec![1u8; 32],
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Mixes additional entropy/material into the generator state.
    pub fn reseed(&mut self, material: &[u8]) {
        self.update(Some(material));
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut h = Hmac::<Sha256>::new(&self.key);
        h.update(&self.value);
        h.update(&[0x00]);
        if let Some(p) = provided {
            h.update(p);
        }
        self.key = h.finalize();
        self.value = Hmac::<Sha256>::mac(&self.key, &self.value);

        if let Some(p) = provided {
            let mut h = Hmac::<Sha256>::new(&self.key);
            h.update(&self.value);
            h.update(&[0x01]);
            h.update(p);
            self.key = h.finalize();
            self.value = Hmac::<Sha256>::mac(&self.key, &self.value);
        }
    }

    /// Fills `out` with the next pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            self.value = Hmac::<Sha256>::mac(&self.key, &self.value);
            let take = (out.len() - written).min(self.value.len());
            out[written..written + take].copy_from_slice(&self.value[..take]);
            written += take;
        }
        self.update(None);
    }

    /// Returns the next `n` pseudo-random bytes as a vector.
    pub fn fill(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// Returns a uniformly pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }

    /// Returns a pseudo-random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Drbg::new(b"tpm seed");
        let mut b = Drbg::new(b"tpm seed");
        assert_eq!(a.fill(100), b.fill(100));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Drbg::new(b"seed-a");
        let mut b = Drbg::new(b"seed-b");
        assert_ne!(a.fill(32), b.fill(32));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = Drbg::new(b"seed");
        let mut b = Drbg::new(b"seed");
        b.reseed(b"extra");
        assert_ne!(a.fill(32), b.fill(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut a = Drbg::new(b"seed");
        let x = a.fill(32);
        let y = a.fill(32);
        assert_ne!(x, y);
    }

    #[test]
    fn fill_spans_multiple_hmac_blocks() {
        let mut a = Drbg::new(b"seed");
        let long = a.fill(100);
        assert_eq!(long.len(), 100);
        // Not all identical bytes (sanity of generator output).
        assert!(long.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_below_is_in_range() {
        let mut a = Drbg::new(b"seed");
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..20 {
                assert!(a.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Drbg::new(b"s").next_below(0);
    }
}
