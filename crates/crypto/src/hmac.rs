//! HMAC (RFC 2104) generic over any [`Digest`].
//!
//! Used for sealed-blob integrity protection in the TPM model and as the
//! core primitive of the [`crate::Drbg`] deterministic random generator.

use crate::digest::Digest;

/// Incremental HMAC computation over digest `D`.
///
/// # Example
///
/// ```
/// use sea_crypto::{Hmac, Sha1};
///
/// let tag = Hmac::<Sha1>::mac(b"key", b"message");
/// let mut h = Hmac::<Sha1>::new(b"key");
/// h.update(b"mess");
/// h.update(b"age");
/// assert_eq!(h.finalize(), tag);
/// ```
#[derive(Debug, Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    opad_key: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance keyed with `key`.
    ///
    /// Keys longer than the digest block size are first hashed, per
    /// RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let hashed = D::digest_oneshot(key);
            key_block[..hashed.len()].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let ipad_key: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        let opad_key: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();

        let mut inner = D::new();
        inner.update(&ipad_key);
        Hmac { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the instance and returns the MAC tag
    /// (`D::OUTPUT_LEN` bytes).
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot HMAC of `message` under `key`.
    pub fn mac(key: &[u8], message: &[u8]) -> Vec<u8> {
        let mut h = Hmac::<D>::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time-ish tag comparison (length check plus full scan).
    ///
    /// The simulator does not model micro-architectural timing channels,
    /// but the full-scan comparison documents intent and avoids trivially
    /// short-circuiting comparisons in security-relevant paths.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, message);
        if expected.len() != tag.len() {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc2202_sha1_test_case_1() {
        let key = [0x0b; 20];
        let tag = Hmac::<Sha1>::mac(&key, b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_sha1_test_case_2() {
        let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_sha1_long_key() {
        // Test case 6: 80-byte key (longer than the 64-byte block).
        let key = [0xaa; 80];
        let tag = Hmac::<Sha1>::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&tag), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn rfc4231_sha256_test_case_1() {
        let key = [0x0b; 20];
        let tag = Hmac::<Sha256>::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_sha256_test_case_2() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_sha256_test_case_3() {
        // 20-byte 0xaa key, 50 bytes of 0xdd data.
        let tag = Hmac::<Sha256>::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_sha256_large_key_and_data() {
        // Test case 7: 131-byte key, long message.
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = Hmac::<Sha256>::mac(&key, msg);
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let tag = Hmac::<Sha256>::mac(b"k", b"hello world");
        let mut h = Hmac::<Sha256>::new(b"k");
        h.update(b"hello");
        h.update(b" ");
        h.update(b"world");
        assert_eq!(h.finalize(), tag);
    }

    #[test]
    fn verify_accepts_good_and_rejects_bad() {
        let tag = Hmac::<Sha1>::mac(b"k", b"m");
        assert!(Hmac::<Sha1>::verify(b"k", b"m", &tag));
        let mut bad = tag.clone();
        bad[0] ^= 1;
        assert!(!Hmac::<Sha1>::verify(b"k", b"m", &bad));
        assert!(!Hmac::<Sha1>::verify(b"k", b"m", &tag[..19]));
        assert!(!Hmac::<Sha1>::verify(b"other", b"m", &tag));
    }
}
