//! Probabilistic prime generation (Miller–Rabin) for RSA key generation.

use crate::bignum::BigUint;
use crate::drbg::Drbg;
use crate::error::CryptoError;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Number of Miller–Rabin rounds. 40 rounds gives a failure probability
/// below 2^-80 for random candidates, far beyond simulation needs.
const MR_ROUNDS: usize = 40;

/// Tests whether `n` is probably prime using trial division plus
/// Miller–Rabin with witnesses drawn from `rng`.
///
/// # Example
///
/// ```
/// use sea_crypto::{is_probably_prime, BigUint, Drbg};
///
/// let mut rng = Drbg::new(b"witnesses");
/// assert!(is_probably_prime(&BigUint::from_u64(65_537), &mut rng));
/// assert!(!is_probably_prime(&BigUint::from_u64(65_539 * 3), &mut rng));
/// ```
pub fn is_probably_prime(n: &BigUint, rng: &mut Drbg) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n == &BigUint::from_u64(2) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pv = BigUint::from_u64(p);
        if n == &pv {
            return true;
        }
        if n.rem_ref(&pv).is_zero() {
            return false;
        }
    }

    // n - 1 = d * 2^s with d odd
    let one = BigUint::one();
    let n_minus_1 = n.checked_sub(&one).expect("n >= 2");
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }

    let two = BigUint::from_u64(2);
    'witness: for _ in 0..MR_ROUNDS {
        // Witness a in [2, n-2]
        let a = random_below(&n_minus_1, rng);
        let a = if a < two { two.clone() } else { a };
        let mut x = a.modexp(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mul_ref(&x).rem_ref(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// The two most-significant bits are forced to 1 (guaranteeing that the
/// product of two such primes has exactly `2*bits` bits, as RSA key
/// generation requires), and the low bit is forced to 1.
///
/// # Errors
///
/// Returns [`CryptoError::PrimeGenerationFailed`] if no prime is found
/// within the iteration budget, and [`CryptoError::InvalidKeySize`] if
/// `bits < 8`.
pub fn generate_prime(bits: usize, rng: &mut Drbg) -> Result<BigUint, CryptoError> {
    if bits < 8 {
        return Err(CryptoError::InvalidKeySize { bits });
    }
    // Expected gap between primes near 2^bits is ~ bits * ln(2); a budget of
    // 40 * bits candidates makes failure astronomically unlikely.
    let budget = 40 * bits;
    for _ in 0..budget {
        let mut candidate = random_bits(bits, rng);
        // Force top two bits and the low bit.
        candidate = force_bit(candidate, bits - 1);
        candidate = force_bit(candidate, bits - 2);
        candidate = force_bit(candidate, 0);
        if is_probably_prime(&candidate, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

/// Returns a uniformly random value with at most `bits` bits.
pub(crate) fn random_bits(bits: usize, rng: &mut Drbg) -> BigUint {
    let nbytes = bits.div_ceil(8);
    let mut bytes = rng.fill(nbytes);
    let excess = nbytes * 8 - bits;
    if excess > 0 {
        bytes[0] &= 0xFF >> excess;
    }
    BigUint::from_bytes_be(&bytes)
}

/// Returns a uniformly random value in `[0, bound)` by rejection sampling.
pub(crate) fn random_below(bound: &BigUint, rng: &mut Drbg) -> BigUint {
    assert!(!bound.is_zero(), "random_below bound must be positive");
    let bits = bound.bit_len();
    loop {
        let candidate = random_bits(bits, rng);
        if &candidate < bound {
            return candidate;
        }
    }
}

fn force_bit(v: BigUint, bit: usize) -> BigUint {
    if v.bit(bit) {
        v
    } else {
        v.add_ref(&BigUint::one().shl_bits(bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let mut rng = Drbg::new(b"t");
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 211, 65_537] {
            assert!(
                is_probably_prime(&BigUint::from_u64(p), &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = Drbg::new(b"t");
        for c in [0u64, 1, 4, 6, 9, 15, 91, 221, 65_539 * 3] {
            assert!(
                !is_probably_prime(&BigUint::from_u64(c), &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut rng = Drbg::new(b"t");
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(
                !is_probably_prime(&BigUint::from_u64(c), &mut rng),
                "Carmichael {c} should be composite"
            );
        }
    }

    #[test]
    fn generated_primes_have_exact_bit_length() {
        let mut rng = Drbg::new(b"gen");
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(bits, &mut rng).unwrap();
            assert_eq!(p.bit_len(), bits, "bits={bits}");
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "second-highest bit forced");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p1 = generate_prime(64, &mut Drbg::new(b"same")).unwrap();
        let p2 = generate_prime(64, &mut Drbg::new(b"same")).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn tiny_bit_count_is_error() {
        let mut rng = Drbg::new(b"t");
        assert_eq!(
            generate_prime(4, &mut rng),
            Err(CryptoError::InvalidKeySize { bits: 4 })
        );
    }

    #[test]
    fn random_below_stays_below() {
        let mut rng = Drbg::new(b"t");
        let bound = BigUint::from_u64(1000);
        for _ in 0..50 {
            assert!(random_below(&bound, &mut rng) < bound);
        }
    }

    #[test]
    fn random_bits_respects_width() {
        let mut rng = Drbg::new(b"t");
        for bits in [1usize, 7, 8, 9, 63, 64, 65] {
            for _ in 0..10 {
                assert!(random_bits(bits, &mut rng).bit_len() <= bits);
            }
        }
    }
}
