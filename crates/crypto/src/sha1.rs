//! SHA-1 as specified by RFC 3174 (reference \[12\] of the paper).
//!
//! The TPM v1.2 specification uses SHA-1 for every PCR extension
//! (`v_{t+1} <- H(v_t || m)`) and for the measurement of the Secure Loader
//! Block during `SKINIT`/`SENTER`. This module is a complete, incremental
//! implementation validated against the RFC 3174 / FIPS 180 test vectors.

use crate::digest::Digest;

/// Length in bytes of a SHA-1 digest.
pub const SHA1_DIGEST_LEN: usize = 20;

const BLOCK_LEN: usize = 64;

/// Incremental SHA-1 hasher.
///
/// # Example
///
/// ```
/// use sea_crypto::Sha1;
///
/// let d = Sha1::digest(b"abc");
/// assert_eq!(
///     d,
///     [
///         0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e,
///         0x25, 0x71, 0x78, 0x50, 0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d,
///     ]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes (SHA-1 limits to 2^64 bits; a u64 byte
    /// count is more than sufficient for simulation workloads).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the RFC 3174 initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// One-shot SHA-1 of `data`, returning the fixed-size digest array.
    pub fn digest(data: &[u8]) -> [u8; SHA1_DIGEST_LEN] {
        let mut h = Sha1::new();
        h.update_bytes(data);
        h.finalize_fixed()
    }

    /// Absorbs `data` into the hash state.
    pub fn update_bytes(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Consumes the hasher, returning the digest as a fixed-size array.
    pub fn finalize_fixed(mut self) -> [u8; SHA1_DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Append the 0x80 terminator, zero padding, then the 64-bit length.
        self.update_bytes(&[0x80]);
        while self.buf_len != 56 {
            self.update_bytes(&[0]);
        }
        // Manually absorb the length so `self.len` bookkeeping is irrelevant.
        let mut final_block = [0u8; 8];
        final_block.copy_from_slice(&bit_len.to_be_bytes());
        self.buf[56..64].copy_from_slice(&final_block);
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; SHA1_DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = SHA1_DIGEST_LEN;
    const BLOCK_LEN: usize = BLOCK_LEN;

    fn new() -> Self {
        Sha1::new()
    }

    fn update(&mut self, data: &[u8]) {
        self.update_bytes(data);
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc3174_test_vector_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn rfc3174_test_vector_two_blocks() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn rfc3174_test_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn padding_boundary_lengths_are_consistent() {
        // Message lengths straddling the 55/56-byte padding boundary
        // (where the length word no longer fits the current block) must
        // agree between incremental and one-shot computation, and all
        // differ from each other.
        let mut digests = Vec::new();
        for len in [54usize, 55, 56, 57, 63, 64, 65] {
            let data = vec![0x80u8; len];
            let mut h = Sha1::new();
            for b in &data {
                h.update_bytes(&[*b]);
            }
            let inc = h.finalize_fixed();
            assert_eq!(inc, Sha1::digest(&data), "len {len}");
            digests.push(inc);
        }
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j]);
            }
        }
    }

    #[test]
    fn incremental_matches_oneshot_at_block_boundaries() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha1::new();
            h.update_bytes(&data[..split]);
            h.update_bytes(&data[split..]);
            assert_eq!(h.finalize_fixed(), Sha1::digest(&data), "split {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for b in data {
            h.update_bytes(&[*b]);
        }
        assert_eq!(h.finalize_fixed(), Sha1::digest(data));
    }

    #[test]
    fn digest_trait_agrees_with_inherent_api() {
        let via_trait = <Sha1 as Digest>::digest_oneshot(b"xyz");
        assert_eq!(via_trait.as_slice(), Sha1::digest(b"xyz").as_slice());
    }
}
