//! TPM sealed storage: the construction behind `TPM_Seal`/`TPM_Unseal`.
//!
//! §2.1.2 of the paper: "data can be encrypted using an asymmetric key
//! whose private component never leaves the TPM ... The TPM will only
//! unseal (decrypt) the data when the PCRs contain the same values
//! specified by the seal command."
//!
//! The model uses the standard hybrid construction real TPM stacks use:
//! a fresh symmetric key is RSA-OAEP-encrypted under the Storage Root Key
//! and the payload is stream-encrypted and MACed under keys derived from
//! it. The PCR *composite digest* at seal time is bound into the MAC, and
//! `TPM_Unseal` recomputes the composite from the live PCR bank before
//! releasing the plaintext.

use sea_crypto::{
    CryptoError, Drbg, Hmac, OaepLabel, RsaPrivateKey, RsaPublicKey, Sha1Digest, Sha256,
};

use crate::error::TpmError;
use crate::pcr::PcrIndex;

/// Length of the per-blob symmetric key. Sized to fit the OAEP capacity
/// of even the demo 512-bit SRK (`k − 2·hLen − 2 = 22` bytes).
const SYM_KEY_LEN: usize = 16;

/// What a sealed blob is bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SealSelection {
    /// Bound to a selection of ordinary PCRs.
    Pcrs(Vec<PcrIndex>),
    /// Bound to the sealing PAL's secure-execution PCR (§5.4.4): the blob
    /// records the *measurement-derived value*, not the handle, so the
    /// PAL can unseal under a different handle on its next execution.
    SePcr,
}

impl SealSelection {
    fn encode(&self) -> Vec<u8> {
        match self {
            SealSelection::Pcrs(idx) => {
                let mut out = vec![0x00, idx.len() as u8];
                out.extend(idx.iter().map(|i| i.0));
                out
            }
            SealSelection::SePcr => vec![0x01],
        }
    }
}

/// An opaque blob produced by `TPM_Seal`.
///
/// The blob is bound to (a) the sealing TPM's SRK, (b) the PCR composite
/// at seal time, and (c) the seal "label" distinguishing ordinary from
/// sePCR-bound blobs. Any mismatch at unseal time yields
/// [`TpmError::WrongPcrState`] or [`TpmError::InvalidBlob`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    pub(crate) selection: SealSelection,
    pub(crate) composite: Sha1Digest,
    pub(crate) enc_key: Vec<u8>,
    pub(crate) ciphertext: Vec<u8>,
    pub(crate) mac: Vec<u8>,
}

impl SealedBlob {
    /// Size of the blob in bytes (for trace/bench reporting).
    pub fn byte_len(&self) -> usize {
        self.selection.encode().len()
            + self.composite.len()
            + self.enc_key.len()
            + self.ciphertext.len()
            + self.mac.len()
    }

    /// Whether this blob is bound to a sePCR rather than ordinary PCRs.
    pub fn is_sepcr_bound(&self) -> bool {
        self.selection == SealSelection::SePcr
    }

    /// The PCR indices this blob is bound to (empty for sePCR blobs).
    pub fn pcr_selection(&self) -> &[PcrIndex] {
        match &self.selection {
            SealSelection::Pcrs(v) => v,
            SealSelection::SePcr => &[],
        }
    }

    /// Serializes the blob for storage by the untrusted OS (disk,
    /// network, …). The format is length-prefixed and versioned; any
    /// mutation is caught either here or by the unseal-time MAC.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = b"SEALv1".to_vec();
        let sel = self.selection.encode();
        for part in [
            &sel[..],
            &self.composite[..],
            &self.enc_key,
            &self.ciphertext,
            &self.mac,
        ] {
            out.extend_from_slice(&(part.len() as u32).to_be_bytes());
            out.extend_from_slice(part);
        }
        out
    }

    /// Deserializes a blob written by [`SealedBlob::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`TpmError::InvalidBlob`] for malformed input. (Structural
    /// validity does not imply authenticity — that is the unseal-time
    /// MAC's job.)
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TpmError> {
        let rest = bytes.strip_prefix(b"SEALv1").ok_or(TpmError::InvalidBlob)?;
        let mut cursor = rest;
        let mut next = || -> Result<Vec<u8>, TpmError> {
            if cursor.len() < 4 {
                return Err(TpmError::InvalidBlob);
            }
            let len = u32::from_be_bytes(cursor[..4].try_into().expect("4 bytes")) as usize;
            cursor = &cursor[4..];
            if cursor.len() < len {
                return Err(TpmError::InvalidBlob);
            }
            let part = cursor[..len].to_vec();
            cursor = &cursor[len..];
            Ok(part)
        };
        let sel_bytes = next()?;
        let composite_bytes = next()?;
        let enc_key = next()?;
        let ciphertext = next()?;
        let mac = next()?;

        let selection = match sel_bytes.split_first() {
            Some((0x00, rest)) => {
                let n = *rest.first().ok_or(TpmError::InvalidBlob)? as usize;
                let idx = rest.get(1..1 + n).ok_or(TpmError::InvalidBlob)?;
                SealSelection::Pcrs(idx.iter().map(|&i| PcrIndex(i)).collect())
            }
            Some((0x01, [])) => SealSelection::SePcr,
            _ => return Err(TpmError::InvalidBlob),
        };
        let composite: Sha1Digest = composite_bytes
            .try_into()
            .map_err(|_| TpmError::InvalidBlob)?;
        Ok(SealedBlob {
            selection,
            composite,
            enc_key,
            ciphertext,
            mac,
        })
    }
}

const OAEP_LABEL: &[u8] = b"TPM_SEAL";

fn derive(key: &[u8], purpose: &[u8]) -> Vec<u8> {
    Hmac::<Sha256>::mac(key, purpose)
}

fn keystream(key: &[u8], len: usize) -> Vec<u8> {
    let mut stream_rng = Drbg::new(&derive(key, b"stream"));
    stream_rng.fill(len)
}

fn mac_input(selection: &SealSelection, composite: &Sha1Digest, ciphertext: &[u8]) -> Vec<u8> {
    let mut m = selection.encode();
    m.extend_from_slice(composite);
    m.extend_from_slice(ciphertext);
    m
}

/// Builds a sealed blob binding `data` to `composite` under the SRK's
/// public half.
pub(crate) fn seal_payload(
    srk_public: &RsaPublicKey,
    rng: &mut Drbg,
    selection: SealSelection,
    composite: Sha1Digest,
    data: &[u8],
) -> Result<SealedBlob, CryptoError> {
    let sym_key = rng.fill(SYM_KEY_LEN);
    let enc_key = srk_public.encrypt_oaep(&sym_key, &OaepLabel(OAEP_LABEL.to_vec()), rng)?;
    let stream = keystream(&sym_key, data.len());
    let ciphertext: Vec<u8> = data.iter().zip(&stream).map(|(d, s)| d ^ s).collect();
    let mac = Hmac::<Sha256>::mac(
        &derive(&sym_key, b"mac"),
        &mac_input(&selection, &composite, &ciphertext),
    );
    Ok(SealedBlob {
        selection,
        composite,
        enc_key,
        ciphertext,
        mac,
    })
}

/// Opens a sealed blob, verifying its MAC and that `current_composite`
/// (recomputed by the caller from the live PCR bank or sePCR) matches
/// the composite recorded at seal time.
pub(crate) fn unseal_payload(
    srk: &RsaPrivateKey,
    blob: &SealedBlob,
    current_composite: &Sha1Digest,
) -> Result<Vec<u8>, TpmError> {
    let sym_key = srk
        .decrypt_oaep(&blob.enc_key, &OaepLabel(OAEP_LABEL.to_vec()))
        .map_err(|_| TpmError::InvalidBlob)?;
    if sym_key.len() != SYM_KEY_LEN {
        return Err(TpmError::InvalidBlob);
    }
    let ok = Hmac::<Sha256>::verify(
        &derive(&sym_key, b"mac"),
        &mac_input(&blob.selection, &blob.composite, &blob.ciphertext),
        &blob.mac,
    );
    if !ok {
        return Err(TpmError::InvalidBlob);
    }
    // The integrity check passed, so the stored composite is authentic;
    // now enforce the sealed-storage policy.
    if &blob.composite != current_composite {
        return Err(TpmError::WrongPcrState);
    }
    let stream = keystream(&sym_key, blob.ciphertext.len());
    Ok(blob
        .ciphertext
        .iter()
        .zip(&stream)
        .map(|(c, s)| c ^ s)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srk() -> RsaPrivateKey {
        RsaPrivateKey::generate(512, &mut Drbg::new(b"test srk")).unwrap()
    }

    fn composite(tag: u8) -> Sha1Digest {
        let mut c = [0u8; 20];
        c[0] = tag;
        c
    }

    #[test]
    fn roundtrip() {
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let sel = SealSelection::Pcrs(vec![PcrIndex(17)]);
        let blob =
            seal_payload(key.public_key(), &mut rng, sel, composite(1), b"pal state").unwrap();
        let out = unseal_payload(&key, &blob, &composite(1)).unwrap();
        assert_eq!(out, b"pal state");
    }

    #[test]
    fn wrong_composite_is_policy_failure() {
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::Pcrs(vec![PcrIndex(17)]),
            composite(1),
            b"data",
        )
        .unwrap();
        assert_eq!(
            unseal_payload(&key, &blob, &composite(2)),
            Err(TpmError::WrongPcrState)
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let mut blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::SePcr,
            composite(1),
            b"data",
        )
        .unwrap();
        blob.ciphertext[0] ^= 1;
        assert_eq!(
            unseal_payload(&key, &blob, &composite(1)),
            Err(TpmError::InvalidBlob)
        );
    }

    #[test]
    fn tampered_composite_rejected_by_mac() {
        // An attacker cannot retarget a blob at a different platform
        // state by editing the recorded composite: the MAC covers it.
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let mut blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::Pcrs(vec![PcrIndex(17)]),
            composite(1),
            b"data",
        )
        .unwrap();
        blob.composite = composite(2);
        assert_eq!(
            unseal_payload(&key, &blob, &composite(2)),
            Err(TpmError::InvalidBlob)
        );
    }

    #[test]
    fn wrong_srk_rejected() {
        let key = srk();
        let other = RsaPrivateKey::generate(512, &mut Drbg::new(b"other srk")).unwrap();
        let mut rng = Drbg::new(b"rng");
        let blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::SePcr,
            composite(1),
            b"data",
        )
        .unwrap();
        assert_eq!(
            unseal_payload(&other, &blob, &composite(1)),
            Err(TpmError::InvalidBlob)
        );
    }

    #[test]
    fn selection_is_bound_into_mac() {
        // Rewriting a PCR-bound blob as sePCR-bound must fail even with a
        // matching composite value.
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let mut blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::Pcrs(vec![PcrIndex(17)]),
            composite(1),
            b"data",
        )
        .unwrap();
        blob.selection = SealSelection::SePcr;
        assert_eq!(
            unseal_payload(&key, &blob, &composite(1)),
            Err(TpmError::InvalidBlob)
        );
    }

    #[test]
    fn large_payload_roundtrips() {
        // The hybrid construction has no size limit, unlike raw OAEP.
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::SePcr,
            composite(1),
            &data,
        )
        .unwrap();
        assert_eq!(unseal_payload(&key, &blob, &composite(1)).unwrap(), data);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::SePcr,
            composite(1),
            b"",
        )
        .unwrap();
        assert_eq!(
            unseal_payload(&key, &blob, &composite(1)).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn serialization_roundtrip_both_flavours() {
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        for sel in [
            SealSelection::Pcrs(vec![PcrIndex(17), PcrIndex(18)]),
            SealSelection::SePcr,
        ] {
            let blob =
                seal_payload(key.public_key(), &mut rng, sel, composite(3), b"payload").unwrap();
            let bytes = blob.to_bytes();
            let back = SealedBlob::from_bytes(&bytes).unwrap();
            assert_eq!(back, blob);
            // And it still unseals after the disk round trip.
            assert_eq!(
                unseal_payload(&key, &back, &composite(3)).unwrap(),
                b"payload"
            );
        }
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert_eq!(SealedBlob::from_bytes(b""), Err(TpmError::InvalidBlob));
        assert_eq!(
            SealedBlob::from_bytes(b"SEALv1"),
            Err(TpmError::InvalidBlob)
        );
        assert_eq!(
            SealedBlob::from_bytes(b"WRONGMAGIC..."),
            Err(TpmError::InvalidBlob)
        );
        // Truncation anywhere is caught.
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::SePcr,
            composite(1),
            b"data",
        )
        .unwrap();
        let bytes = blob.to_bytes();
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                SealedBlob::from_bytes(&bytes[..cut]),
                Err(TpmError::InvalidBlob),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn blob_accessors() {
        let key = srk();
        let mut rng = Drbg::new(b"rng");
        let blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::Pcrs(vec![PcrIndex(17), PcrIndex(18)]),
            composite(1),
            b"data",
        )
        .unwrap();
        assert!(!blob.is_sepcr_bound());
        assert_eq!(blob.pcr_selection(), &[PcrIndex(17), PcrIndex(18)]);
        assert!(blob.byte_len() > 4 + 20 + 32);
        let sepcr_blob = seal_payload(
            key.public_key(),
            &mut rng,
            SealSelection::SePcr,
            composite(1),
            b"data",
        )
        .unwrap();
        assert!(sepcr_blob.is_sepcr_bound());
        assert!(sepcr_blob.pcr_selection().is_empty());
    }
}
