//! The assembled TPM device.
//!
//! [`Tpm`] wires together the PCR bank, sealed storage, quoting, the
//! `TPM_HASH_*` interface driven by `SKINIT`, the proposed sePCR bank,
//! and the per-vendor timing model. Every command returns a [`Timed`]
//! value so callers account its cost on the virtual clock.

use sea_crypto::{Drbg, RsaPrivateKey, RsaPublicKey, Sha1, Sha1Digest, Signature};
use sea_hw::{CpuId, Layer, Obs, SimDuration, TpmKind};

use crate::error::TpmError;
use crate::lock::TpmLock;
use crate::nvram::Nvram;
use crate::pcr::{PcrBank, PcrIndex, PcrValue};
use crate::quote::{quote_digest, Quote, QuoteSource, WireQuote};
use crate::seal::{seal_payload, unseal_payload, SealSelection, SealedBlob};
use crate::sepcr::{SePcrBank, SePcrHandle};
use crate::timing::{TpmOp, TpmTimingModel};

/// A command result annotated with its virtual-time cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timed<T> {
    /// The command's result value.
    pub value: T,
    /// Virtual time the command occupied the TPM (and, for `TPM_HASH_*`,
    /// the LPC bus and issuing CPU).
    pub elapsed: SimDuration,
}

impl<T> Timed<T> {
    fn new(value: T, elapsed: SimDuration) -> Self {
        Timed { value, elapsed }
    }

    /// Maps the inner value, preserving the cost.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Timed<U> {
        Timed {
            value: f(self.value),
            elapsed: self.elapsed,
        }
    }
}

/// Who is issuing a locality-sensitive command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Ordinary software (any ring) — cannot reset dynamic PCRs.
    Software,
    /// The CPU itself (`SKINIT`/`SENTER`/`SLAUNCH` microcode). The paper:
    /// "Only a hardware command from the CPU can reset PCR 17" (§2.1.3).
    Cpu,
}

/// RSA strength of the TPM's SRK and AIK.
///
/// Virtual-time costs come from [`TpmTimingModel`] regardless of the key
/// size, so tests can use [`KeyStrength::Demo512`] for speed while the
/// sealed-storage and attestation semantics stay fully real.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyStrength {
    /// 512-bit keys: fast test configuration.
    #[default]
    Demo512,
    /// 1024-bit keys.
    Standard1024,
    /// 2048-bit keys, as the TPM v1.2 specification mandates for the SRK.
    Spec2048,
}

impl KeyStrength {
    fn bits(self) -> usize {
        match self {
            KeyStrength::Demo512 => 512,
            KeyStrength::Standard1024 => 1024,
            KeyStrength::Spec2048 => 2048,
        }
    }
}

/// An in-progress `TPM_HASH_START … TPM_HASH_DATA … TPM_HASH_END`
/// sequence.
#[derive(Debug, Clone)]
struct HashSession {
    hasher: Sha1,
    bytes: usize,
}

/// The TPM device.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone)]
pub struct Tpm {
    kind: TpmKind,
    pcrs: PcrBank,
    sepcrs: SePcrBank,
    srk: RsaPrivateKey,
    aik: RsaPrivateKey,
    rng: Drbg,
    noise: Drbg,
    timing: TpmTimingModel,
    nominal_timing: bool,
    lock: TpmLock,
    hash_session: Option<HashSession>,
    armed_fault: Option<bool>,
    nvram: Nvram,
    obs: Obs,
    /// Quote signatures pre-computed by [`Tpm::prepare_sepcr_quotes`],
    /// keyed by quote digest. Consumed by [`Tpm::sepcr_quote`] on a
    /// digest match; semantically invisible (the batch signer is
    /// byte-identical to the one-at-a-time signer).
    prepared_sigs: Vec<(Sha1Digest, Signature)>,
}

impl Tpm {
    /// Creates a TPM of the given chip `kind`, generating fresh SRK and
    /// AIK keypairs deterministically from `seed`.
    ///
    /// The sePCR bank starts empty (baseline hardware); use
    /// [`Tpm::with_sepcrs`] for the proposed hardware.
    ///
    /// # Panics
    ///
    /// Panics for [`TpmKind::None`] — absent TPMs are represented by not
    /// constructing one.
    pub fn new(kind: TpmKind, strength: KeyStrength, seed: &[u8]) -> Self {
        let mut key_rng = Drbg::new(&[seed, b"/keys"].concat());
        let srk = RsaPrivateKey::generate(strength.bits(), &mut key_rng)
            .expect("valid key size by construction");
        let aik = RsaPrivateKey::generate(strength.bits(), &mut key_rng)
            .expect("valid key size by construction");
        Tpm {
            kind,
            pcrs: PcrBank::new(),
            sepcrs: SePcrBank::new(0),
            srk,
            aik,
            rng: Drbg::new(&[seed, b"/rng"].concat()),
            noise: Drbg::new(&[seed, b"/noise"].concat()),
            timing: TpmTimingModel::for_kind(kind),
            nominal_timing: false,
            lock: TpmLock::new(),
            hash_session: None,
            armed_fault: None,
            nvram: Nvram::new(seed),
            obs: Obs::null(),
            prepared_sigs: Vec::new(),
        }
    }

    /// Creates a TPM with *pre-generated* SRK and AIK keypairs — the
    /// manufacture-time key-injection path.
    ///
    /// [`Tpm::new`] derives both keys from `seed`, which costs two RSA
    /// key generations per TPM; a fleet of a thousand simulated
    /// platforms would pay that thousands of times per sweep. Fleet
    /// provisioning generates each platform's identity once (see
    /// `sea-fleet`'s key vault), burns it in here, and reuses it across
    /// runs. `seed` still drives the RNG, noise, and NVRAM streams, so
    /// two TPMs with the same keys but different seeds remain
    /// distinguishable in their entropy output.
    ///
    /// # Panics
    ///
    /// Panics for [`TpmKind::None`], as [`Tpm::new`] does.
    pub fn with_keys(kind: TpmKind, srk: RsaPrivateKey, aik: RsaPrivateKey, seed: &[u8]) -> Self {
        assert!(
            kind.is_present(),
            "an absent TPM is represented by not constructing one"
        );
        Tpm {
            kind,
            pcrs: PcrBank::new(),
            sepcrs: SePcrBank::new(0),
            srk,
            aik,
            rng: Drbg::new(&[seed, b"/rng"].concat()),
            noise: Drbg::new(&[seed, b"/noise"].concat()),
            timing: TpmTimingModel::for_kind(kind),
            nominal_timing: false,
            lock: TpmLock::new(),
            hash_session: None,
            armed_fault: None,
            nvram: Nvram::new(seed),
            obs: Obs::null(),
            prepared_sigs: Vec::new(),
        }
    }

    /// Installs the observability handle the timing model emits leaf
    /// spans through. The default is the null sink; bare-TPM benchmarks
    /// (Figure 3) install a recording sink here, while full platforms
    /// attribute TPM costs at the charge sites in `sea-core` instead —
    /// installing both would double-count.
    pub fn install_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Equips the TPM with `count` secure-execution PCRs (builder-style).
    pub fn with_sepcrs(mut self, count: u16) -> Self {
        self.sepcrs = SePcrBank::new(count);
        self
    }

    /// The chip model this TPM simulates.
    pub fn kind(&self) -> TpmKind {
        self.kind
    }

    /// The timing model in effect.
    pub fn timing(&self) -> &TpmTimingModel {
        &self.timing
    }

    /// Replaces the timing model (used by the §5.7 speed-up ablation).
    pub fn set_timing(&mut self, timing: TpmTimingModel) {
        self.timing = timing;
    }

    /// Pins every command latency to the model's *mean* instead of
    /// sampling calibrated jitter.
    ///
    /// The concurrent session engine requires this: with jitter, a
    /// command's sampled cost depends on how many draws preceded it on
    /// the shared noise stream — i.e. on thread interleaving. Nominal
    /// timing makes each session's cost a pure function of that session,
    /// which is what makes parallel batches byte-identical to serial
    /// ones. Jitter stays on (the default) for the single-session
    /// experiments whose error bars Figure 3 reports.
    pub fn set_nominal_timing(&mut self, on: bool) {
        self.nominal_timing = on;
    }

    /// Whether latencies are pinned to their means.
    pub fn nominal_timing(&self) -> bool {
        self.nominal_timing
    }

    /// The public half of the Attestation Identity Key, which an external
    /// verifier obtains through the Privacy-CA certificate chain (§2.1.1).
    pub fn aik_public(&self) -> &RsaPublicKey {
        self.aik.public_key()
    }

    /// The public half of the Storage Root Key. Callers use it to
    /// establish transport sessions (§3.3) via
    /// [`crate::establish_transport`].
    pub fn srk_public(&self) -> &RsaPublicKey {
        self.srk.public_key()
    }

    /// TPM-side acceptance of a transport session: decrypts the
    /// session secret the caller produced with
    /// [`crate::establish_transport`] against this TPM's SRK.
    ///
    /// # Errors
    ///
    /// [`TpmError::InvalidBlob`] for secrets encrypted to another TPM or
    /// tampered in flight.
    pub fn accept_transport(
        &mut self,
        encrypted_secret: &[u8],
    ) -> Result<crate::transport::TransportEndpoint, TpmError> {
        crate::transport::accept(&self.srk, encrypted_secret)
    }

    /// Read-only view of the PCR bank.
    pub fn pcrs(&self) -> &PcrBank {
        &self.pcrs
    }

    /// Read-only view of the sePCR bank.
    pub fn sepcrs(&self) -> &SePcrBank {
        &self.sepcrs
    }

    /// The hardware TPM lock (§5.4.5).
    pub fn lock_mut(&mut self) -> &mut TpmLock {
        &mut self.lock
    }

    /// Applies power-cycle semantics: static PCRs to zero, dynamic PCRs
    /// to −1, every sePCR back to Free with a zero chain, hash session
    /// dropped, the TPM lock released, pending injected faults cleared
    /// (a reboot un-wedges the chip). The NVRAM half — keys, monotonic
    /// counters, stored blobs — survives untouched; sealed blobs remain
    /// unsealable exactly when their PCR bindings are re-established.
    pub fn reboot(&mut self) {
        self.pcrs.reboot();
        self.sepcrs.platform_reset();
        self.hash_session = None;
        self.lock = TpmLock::new();
        self.armed_fault = None;
        self.prepared_sigs.clear();
    }

    /// Read-only view of the non-volatile storage.
    pub fn nvram(&self) -> &Nvram {
        &self.nvram
    }

    /// Mutable view of the non-volatile storage (counter bumps, blob
    /// writes by the platform's durable session engine).
    pub fn nvram_mut(&mut self) -> &mut Nvram {
        &mut self.nvram
    }

    /// Arms a one-shot injected transport fault: the next gated command
    /// fails with [`TpmError::TransportFault`] before the TPM processes
    /// anything, then the fault clears. Teardown paths (`sepcr_free`,
    /// `sepcr_skill`, `sepcr_rebind`) and the CPU-microcode `TPM_HASH_*`
    /// interface are deliberately not gated, so recovery can always
    /// complete.
    ///
    /// The gate fires *before* any timing-noise draw, so injected
    /// faults never perturb the sampled costs of the commands that do
    /// succeed — faulted and fault-free runs stay cost-identical
    /// command for command.
    pub fn arm_transport_fault(&mut self, retryable: bool) {
        self.armed_fault = Some(retryable);
    }

    /// Clears a pending injected transport fault, if any.
    pub fn disarm_transport_fault(&mut self) {
        self.armed_fault = None;
    }

    fn transport_gate(&mut self) -> Result<(), TpmError> {
        match self.armed_fault.take() {
            Some(retryable) => Err(TpmError::TransportFault { retryable }),
            None => Ok(()),
        }
    }

    fn cost(&mut self, op: TpmOp) -> SimDuration {
        let d = if self.nominal_timing {
            self.timing.mean(op)
        } else {
            self.timing.sample(op, &mut self.noise)
        };
        self.obs.leaf(Layer::Tpm, op.label(), d);
        d
    }

    // ---------------------------------------------------------------
    // Ordinary TPM v1.2 commands
    // ---------------------------------------------------------------

    /// `TPM_PCR_Read`.
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] for indices ≥ 24.
    pub fn pcr_read(&mut self, index: PcrIndex) -> Result<Timed<PcrValue>, TpmError> {
        self.transport_gate()?;
        let v = self.pcrs.read(index)?;
        let cost = self.cost(TpmOp::PcrRead);
        Ok(Timed::new(v, cost))
    }

    /// `TPM_Extend`: `v ← SHA-1(v ‖ m)`.
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] for indices ≥ 24.
    pub fn extend(
        &mut self,
        index: PcrIndex,
        measurement: &Sha1Digest,
    ) -> Result<Timed<PcrValue>, TpmError> {
        self.transport_gate()?;
        let v = self.pcrs.extend(index, measurement)?;
        let cost = self.cost(TpmOp::PcrExtend);
        Ok(Timed::new(v, cost))
    }

    /// `TPM_Seal`: binds `data` to the *current* values of `selection`.
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] for a bad selection;
    /// [`TpmError::Crypto`] on internal failure.
    pub fn seal(
        &mut self,
        data: &[u8],
        selection: &[PcrIndex],
    ) -> Result<Timed<SealedBlob>, TpmError> {
        self.transport_gate()?;
        let composite = self.pcrs.composite(selection)?;
        let blob = seal_payload(
            self.srk.public_key(),
            &mut self.rng,
            SealSelection::Pcrs(selection.to_vec()),
            composite,
            data,
        )?;
        let cost = self.cost(TpmOp::Seal);
        Ok(Timed::new(blob, cost))
    }

    /// `TPM_Unseal`: releases the plaintext only if the live PCR values
    /// still match the blob's recorded composite.
    ///
    /// # Errors
    ///
    /// [`TpmError::WrongPcrState`] on composite mismatch;
    /// [`TpmError::InvalidBlob`] for tampered or foreign blobs (including
    /// sePCR-bound blobs, which must go through [`Tpm::sepcr_unseal`]).
    pub fn unseal(&mut self, blob: &SealedBlob) -> Result<Timed<Vec<u8>>, TpmError> {
        self.transport_gate()?;
        if blob.is_sepcr_bound() {
            return Err(TpmError::InvalidBlob);
        }
        let current = self.pcrs.composite(blob.pcr_selection())?;
        let data = unseal_payload(&self.srk, blob, &current)?;
        let cost = self.cost(TpmOp::Unseal);
        Ok(Timed::new(data, cost))
    }

    /// `TPM_Quote`: signs the current values of `selection` and the
    /// verifier's `nonce` with the AIK.
    ///
    /// Returns the canonical serialized wire format ([`WireQuote`]),
    /// not the in-memory [`Quote`] struct: what leaves the TPM is
    /// exactly what a remote verifier receives, so platform and
    /// verifier cannot silently share representation assumptions.
    /// Platform-side callers that need the parsed form go through
    /// [`Quote::from_wire`].
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] for a bad selection.
    pub fn quote(
        &mut self,
        nonce: &[u8],
        selection: &[PcrIndex],
    ) -> Result<Timed<WireQuote>, TpmError> {
        self.transport_gate()?;
        let values: Result<Vec<PcrValue>, TpmError> =
            selection.iter().map(|&i| self.pcrs.read(i)).collect();
        let source = QuoteSource::Pcrs {
            selection: selection.to_vec(),
            values: values?,
        };
        let digest = quote_digest(&source, nonce);
        let sig = self
            .aik
            .sign_pkcs1v15_batch(&[digest])?
            .pop()
            .expect("a batch of one digest yields one signature");
        let cost = self.cost(TpmOp::Quote);
        Ok(Timed::new(
            Quote::new(source, nonce.to_vec(), sig).to_wire(),
            cost,
        ))
    }

    /// `TPM_GetRandom`.
    pub fn get_random(&mut self, bytes: usize) -> Timed<Vec<u8>> {
        let out = self.rng.fill(bytes);
        let blocks = bytes.max(1).div_ceil(128) as u64;
        let cost = self.cost(TpmOp::GetRandom128) * blocks;
        Timed::new(out, cost)
    }

    // ---------------------------------------------------------------
    // The TPM_HASH_* interface driven by SKINIT / SENTER
    // ---------------------------------------------------------------

    /// `TPM_HASH_START`: begins a hardware-initiated measurement. Resets
    /// the dynamic PCRs to zero — which is why "the only way to reset
    /// PCR 17 is by executing another SKINIT instruction" (§2.2.1).
    ///
    /// # Errors
    ///
    /// [`TpmError::LocalityDenied`] unless issued from [`Locality::Cpu`].
    pub fn hash_start(&mut self, locality: Locality) -> Result<Timed<()>, TpmError> {
        if locality != Locality::Cpu {
            return Err(TpmError::LocalityDenied);
        }
        self.pcrs.dynamic_reset();
        self.hash_session = Some(HashSession {
            hasher: Sha1::new(),
            bytes: 0,
        });
        Ok(Timed::new((), SimDuration::from_us(1)))
    }

    /// `TPM_HASH_DATA`: absorbs PAL/ACMod bytes. The cost reflects the
    /// LPC long wait cycles measured in Table 1 (~2.71 µs per byte on
    /// 2007 chips).
    ///
    /// # Errors
    ///
    /// [`TpmError::NoHashSession`] without a preceding `TPM_HASH_START`.
    pub fn hash_data(&mut self, data: &[u8]) -> Result<Timed<()>, TpmError> {
        let session = self.hash_session.as_mut().ok_or(TpmError::NoHashSession)?;
        session.hasher.update_bytes(data);
        session.bytes += data.len();
        let cost = self.timing.hash_time(data.len());
        Ok(Timed::new((), cost))
    }

    /// `TPM_HASH_END`: finalizes the measurement and extends it into
    /// PCR 17, returning the new PCR 17 value.
    ///
    /// # Errors
    ///
    /// [`TpmError::NoHashSession`] without a preceding `TPM_HASH_START`.
    pub fn hash_end(&mut self) -> Result<Timed<PcrValue>, TpmError> {
        let session = self.hash_session.take().ok_or(TpmError::NoHashSession)?;
        let digest = session.hasher.finalize_fixed();
        let v = self
            .pcrs
            .extend(PcrIndex(17), &digest)
            .expect("PCR 17 exists");
        Ok(Timed::new(v, SimDuration::from_us(1)))
    }

    // ---------------------------------------------------------------
    // Proposed sePCR commands (§5.4)
    // ---------------------------------------------------------------

    /// `SLAUNCH` measurement path: hashes the PAL image, allocates a free
    /// sePCR, extends the measurement into it, and binds it to `owner`.
    /// The cost is the full `TPM_HASH_*` stream of the image (the PAL is
    /// measured **once**, at launch — not on every context switch).
    ///
    /// # Errors
    ///
    /// [`TpmError::NoFreeSePcr`] when the bank is exhausted.
    pub fn slaunch_measure(
        &mut self,
        pal_image: &[u8],
        owner: CpuId,
    ) -> Result<Timed<SePcrHandle>, TpmError> {
        self.transport_gate()?;
        let measurement = Sha1::digest(pal_image);
        let handle = self.sepcrs.allocate(&measurement, owner)?;
        let cost = self.timing.hash_time(pal_image.len());
        Ok(Timed::new(handle, cost))
    }

    /// sePCR variant of `TPM_Extend`, owner-gated.
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrAccessDenied`] from a non-owner CPU;
    /// [`TpmError::SePcrWrongState`] outside Exclusive.
    pub fn sepcr_extend(
        &mut self,
        handle: SePcrHandle,
        cpu: CpuId,
        measurement: &Sha1Digest,
    ) -> Result<Timed<PcrValue>, TpmError> {
        self.transport_gate()?;
        let v = self.sepcrs.extend(handle, cpu, measurement)?;
        let cost = self.cost(TpmOp::PcrExtend);
        Ok(Timed::new(v, cost))
    }

    /// sePCR variant of `TPM_Seal` (§5.4.4): the blob binds to the
    /// sePCR's *value* (the PAL's measurement chain), so the PAL can
    /// unseal it in a future execution under a different handle.
    ///
    /// # Errors
    ///
    /// As for [`Tpm::sepcr_extend`], plus [`TpmError::Crypto`].
    pub fn sepcr_seal(
        &mut self,
        handle: SePcrHandle,
        cpu: CpuId,
        data: &[u8],
    ) -> Result<Timed<SealedBlob>, TpmError> {
        self.transport_gate()?;
        let value = self.sepcrs.read_exclusive(handle, cpu)?;
        let composite = sepcr_composite(&value);
        let blob = seal_payload(
            self.srk.public_key(),
            &mut self.rng,
            SealSelection::SePcr,
            composite,
            data,
        )?;
        let cost = self.cost(TpmOp::Seal);
        Ok(Timed::new(blob, cost))
    }

    /// sePCR variant of `TPM_Unseal`: releases the plaintext only if the
    /// invoking PAL's current sePCR chain matches the sealing chain.
    ///
    /// # Errors
    ///
    /// [`TpmError::InvalidBlob`] for non-sePCR blobs or tampering;
    /// [`TpmError::WrongPcrState`] if a different PAL tries to unseal.
    pub fn sepcr_unseal(
        &mut self,
        handle: SePcrHandle,
        cpu: CpuId,
        blob: &SealedBlob,
    ) -> Result<Timed<Vec<u8>>, TpmError> {
        self.transport_gate()?;
        if !blob.is_sepcr_bound() {
            return Err(TpmError::InvalidBlob);
        }
        let value = self.sepcrs.read_exclusive(handle, cpu)?;
        let composite = sepcr_composite(&value);
        let data = unseal_payload(&self.srk, blob, &composite)?;
        let cost = self.cost(TpmOp::Unseal);
        Ok(Timed::new(data, cost))
    }

    /// `SFREE` path: moves the PAL's sePCR to the Quote state (§5.5).
    ///
    /// # Errors
    ///
    /// As for [`Tpm::sepcr_extend`].
    pub fn sepcr_release_to_quote(
        &mut self,
        handle: SePcrHandle,
        cpu: CpuId,
    ) -> Result<Timed<()>, TpmError> {
        self.transport_gate()?;
        self.sepcrs.release_to_quote(handle, cpu)?;
        Ok(Timed::new((), SimDuration::from_us(1)))
    }

    /// `TPM_Quote` over a sePCR in the Quote state — invocable by
    /// *untrusted* code, which received the handle as PAL output (§5.4.3).
    ///
    /// Returns the canonical serialized wire format; see [`Tpm::quote`].
    /// This is also the form the discrete-event executor's ordered TPM
    /// lock path hands back, so DES-scheduled quotes cross the same
    /// byte boundary as thread-pool ones.
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Quote.
    pub fn sepcr_quote(
        &mut self,
        handle: SePcrHandle,
        nonce: &[u8],
    ) -> Result<Timed<WireQuote>, TpmError> {
        self.transport_gate()?;
        let value = self.sepcrs.read_for_quote(handle)?;
        let source = QuoteSource::SePcr { value };
        let digest = quote_digest(&source, nonce);
        // Consume a signature pre-computed by `prepare_sepcr_quotes`,
        // or fall back to a batch of one. Either way the bytes are what
        // `sign_pkcs1v15` would produce, so which path ran is invisible
        // to verifiers and to the golden differential suite.
        let sig = match self.prepared_sigs.iter().position(|(d, _)| *d == digest) {
            Some(at) => self.prepared_sigs.swap_remove(at).1,
            None => self
                .aik
                .sign_pkcs1v15_batch(&[digest])?
                .pop()
                .expect("a batch of one digest yields one signature"),
        };
        let cost = self.cost(TpmOp::Quote);
        Ok(Timed::new(
            Quote::new(source, nonce.to_vec(), sig).to_wire(),
            cost,
        ))
    }

    /// Pre-signs the quote digests for a cohort of sePCRs about to be
    /// quoted together, sharing one CRT/Montgomery context across the
    /// whole batch ([`RsaPrivateKey::sign_pkcs1v15_batch`]).
    ///
    /// Best-effort and semantically invisible: handles not in the Quote
    /// state are skipped, signing failures leave the cache untouched,
    /// no virtual time is charged and no observability is emitted —
    /// [`Tpm::sepcr_quote`] charges the full per-quote cost whether or
    /// not it finds its signature prepared, because the batch form is
    /// byte-identical to the one-at-a-time signer. Cached signatures
    /// for digests no longer requested are dropped; a reboot clears
    /// the cache entirely.
    pub fn prepare_sepcr_quotes(&mut self, requests: &[(SePcrHandle, [u8; 8])]) {
        let mut digests: Vec<Sha1Digest> = Vec::new();
        for (handle, nonce) in requests {
            let Ok(value) = self.sepcrs.read_for_quote(*handle) else {
                continue;
            };
            let source = QuoteSource::SePcr { value };
            let digest = quote_digest(&source, nonce);
            if !digests.contains(&digest) {
                digests.push(digest);
            }
        }
        self.prepared_sigs.retain(|(d, _)| digests.contains(d));
        let missing: Vec<Sha1Digest> = digests
            .into_iter()
            .filter(|d| !self.prepared_sigs.iter().any(|(c, _)| c == d))
            .collect();
        if missing.is_empty() {
            return;
        }
        if let Ok(sigs) = self.aik.sign_pkcs1v15_batch(&missing) {
            self.prepared_sigs.extend(missing.into_iter().zip(sigs));
        }
    }

    /// `TPM_SEPCR_Free`: recycles a quoted sePCR (§5.4.3).
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Quote.
    pub fn sepcr_free(&mut self, handle: SePcrHandle) -> Result<Timed<()>, TpmError> {
        self.sepcrs.free(handle)?;
        Ok(Timed::new((), SimDuration::from_us(1)))
    }

    /// `SKILL` path: extends the kill constant and frees the slot (§5.5).
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Exclusive.
    pub fn sepcr_skill(&mut self, handle: SePcrHandle) -> Result<Timed<()>, TpmError> {
        self.sepcrs.skill(handle)?;
        let cost = self.cost(TpmOp::PcrExtend);
        Ok(Timed::new((), cost))
    }

    /// Hardware resume path: rebinds a suspended PAL's sePCR to the CPU
    /// about to resume it.
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Exclusive.
    pub fn sepcr_rebind(&mut self, handle: SePcrHandle, cpu: CpuId) -> Result<(), TpmError> {
        self.sepcrs.rebind_owner(handle, cpu)
    }
}

/// Composite digest for a sePCR-bound seal: domain-separated from the
/// ordinary PCR composite.
fn sepcr_composite(value: &PcrValue) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update_bytes(b"sePCR-composite");
    h.update_bytes(value.as_bytes());
    h.finalize_fixed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpm() -> Tpm {
        Tpm::new(TpmKind::Broadcom, KeyStrength::Demo512, b"test tpm")
    }

    fn tpm_with_sepcrs(n: u16) -> Tpm {
        tpm().with_sepcrs(n)
    }

    #[test]
    fn seal_unseal_roundtrip_with_timing() {
        let mut t = tpm();
        t.extend(PcrIndex(17), &Sha1::digest(b"pal")).unwrap();
        let sealed = t.seal(b"secret", &[PcrIndex(17)]).unwrap();
        // Broadcom Seal ≈ 20 ms.
        assert!((sealed.elapsed.as_ms_f64() - 20.0).abs() < 5.0);
        let out = t.unseal(&sealed.value).unwrap();
        assert_eq!(out.value, b"secret");
        // Broadcom Unseal ≈ 905 ms.
        assert!((out.elapsed.as_ms_f64() - 905.0).abs() < 100.0);
    }

    #[test]
    fn unseal_fails_after_pcr_change() {
        let mut t = tpm();
        t.extend(PcrIndex(17), &Sha1::digest(b"pal")).unwrap();
        let sealed = t.seal(b"secret", &[PcrIndex(17)]).unwrap().value;
        t.extend(PcrIndex(17), &Sha1::digest(b"other code"))
            .unwrap();
        assert_eq!(t.unseal(&sealed).unwrap_err(), TpmError::WrongPcrState);
    }

    #[test]
    fn unseal_fails_after_reboot() {
        let mut t = tpm();
        t.hash_start(Locality::Cpu).unwrap();
        t.hash_data(b"pal image").unwrap();
        t.hash_end().unwrap();
        let sealed = t.seal(b"secret", &[PcrIndex(17)]).unwrap().value;
        t.reboot();
        // PCR 17 is now −1: composite differs.
        assert_eq!(t.unseal(&sealed).unwrap_err(), TpmError::WrongPcrState);
    }

    #[test]
    fn quote_roundtrip_and_verification() {
        let mut t = tpm();
        t.extend(PcrIndex(17), &Sha1::digest(b"pal")).unwrap();
        let q = t.quote(b"verifier nonce", &[PcrIndex(17)]).unwrap();
        // The TPM hands back wire bytes; the verifier parses them.
        let parsed = Quote::from_wire(&q.value).unwrap();
        assert!(parsed.verify_signature(t.aik_public()));
        assert!((q.elapsed.as_ms_f64() - 880.0).abs() < 100.0);
    }

    #[test]
    fn injected_keys_match_generated_identity() {
        // A TPM provisioned via key injection is indistinguishable, at
        // the attestation boundary, from one that generated the same
        // keys itself from the matching seed.
        let generated = tpm();
        let mut key_rng = Drbg::new(&[b"test tpm".as_slice(), b"/keys"].concat());
        let srk = RsaPrivateKey::generate(512, &mut key_rng).unwrap();
        let aik = RsaPrivateKey::generate(512, &mut key_rng).unwrap();
        assert_eq!(srk.public_key(), generated.srk_public());
        let mut injected = Tpm::with_keys(TpmKind::Broadcom, srk, aik, b"test tpm");
        assert_eq!(injected.aik_public(), generated.aik_public());
        injected
            .extend(PcrIndex(17), &Sha1::digest(b"pal"))
            .unwrap();
        let q = injected.quote(b"n", &[PcrIndex(17)]).unwrap();
        let parsed = Quote::from_wire(&q.value).unwrap();
        assert!(parsed.verify_signature(generated.aik_public()));
    }

    #[test]
    fn hash_interface_models_skinit() {
        let mut t = tpm();
        // Software cannot open the session (cannot reset PCR 17).
        assert_eq!(
            t.hash_start(Locality::Software).unwrap_err(),
            TpmError::LocalityDenied
        );
        assert_eq!(t.hash_data(b"x").unwrap_err(), TpmError::NoHashSession);
        assert_eq!(t.hash_end().unwrap_err(), TpmError::NoHashSession);

        t.hash_start(Locality::Cpu).unwrap();
        let pal = vec![0xAB; 64 * 1024];
        let data_cost = t.hash_data(&pal).unwrap().elapsed;
        // Table 1: 64 KB through a 2007 TPM ≈ 177.52 ms.
        assert!((data_cost.as_ms_f64() - 177.52).abs() < 0.2);
        let v = t.hash_end().unwrap().value;
        // PCR 17 = extend(0, SHA1(pal)).
        let expected = PcrValue::ZERO.extended(&Sha1::digest(&pal));
        assert_eq!(v, expected);
        assert_eq!(t.pcr_read(PcrIndex(17)).unwrap().value, expected);
    }

    #[test]
    fn hash_start_resets_all_dynamic_pcrs() {
        let mut t = tpm();
        t.extend(PcrIndex(20), &Sha1::digest(b"junk")).unwrap();
        t.hash_start(Locality::Cpu).unwrap();
        for i in 17..=23u8 {
            assert_eq!(t.pcr_read(PcrIndex(i)).unwrap().value, PcrValue::ZERO);
        }
        t.hash_end().unwrap();
    }

    #[test]
    fn get_random_is_timed_and_random() {
        let mut t = tpm();
        let a = t.get_random(128);
        let b = t.get_random(128);
        assert_ne!(a.value, b.value);
        assert_eq!(a.value.len(), 128);
        // Broadcom GetRandom-128B ≈ 25 ms (±2% calibrated jitter).
        assert!((a.elapsed.as_ms_f64() - 25.0).abs() < 3.0);
    }

    #[test]
    fn sepcr_seal_binds_to_measurement_not_handle() {
        let mut t = tpm_with_sepcrs(3);
        let pal = b"the same PAL image";
        // First execution: seal some state.
        let h1 = t.slaunch_measure(pal, CpuId(0)).unwrap().value;
        let blob = t
            .sepcr_seal(h1, CpuId(0), b"persistent state")
            .unwrap()
            .value;
        t.sepcr_release_to_quote(h1, CpuId(0)).unwrap();
        // Slot 0 stays in Quote state and slot 1 goes to a different PAL,
        // so the next launch of our PAL lands in a *different* slot.
        let h_other = t.slaunch_measure(b"other PAL", CpuId(1)).unwrap().value;
        // Second execution of the same PAL: different handle, same chain.
        let h2 = t.slaunch_measure(pal, CpuId(0)).unwrap().value;
        assert_ne!(h1, h2);
        let out = t.sepcr_unseal(h2, CpuId(0), &blob).unwrap().value;
        assert_eq!(out, b"persistent state");
        // The *other* PAL cannot unseal it: wrong measurement chain.
        assert_eq!(
            t.sepcr_unseal(h_other, CpuId(1), &blob).unwrap_err(),
            TpmError::WrongPcrState
        );
    }

    #[test]
    fn sepcr_blobs_and_pcr_blobs_do_not_cross() {
        let mut t = tpm_with_sepcrs(1);
        let h = t.slaunch_measure(b"pal", CpuId(0)).unwrap().value;
        let sepcr_blob = t.sepcr_seal(h, CpuId(0), b"a").unwrap().value;
        let pcr_blob = t.seal(b"b", &[PcrIndex(17)]).unwrap().value;
        assert_eq!(t.unseal(&sepcr_blob).unwrap_err(), TpmError::InvalidBlob);
        assert_eq!(
            t.sepcr_unseal(h, CpuId(0), &pcr_blob).unwrap_err(),
            TpmError::InvalidBlob
        );
    }

    #[test]
    fn sepcr_quote_lifecycle_and_verification() {
        let mut t = tpm_with_sepcrs(1);
        let pal = b"quoted PAL";
        let h = t.slaunch_measure(pal, CpuId(0)).unwrap().value;
        // Quote is not possible while Exclusive.
        assert!(t.sepcr_quote(h, b"n").is_err());
        t.sepcr_release_to_quote(h, CpuId(0)).unwrap();
        let q = Quote::from_wire(&t.sepcr_quote(h, b"n").unwrap().value).unwrap();
        assert!(q.verify_signature(t.aik_public()));
        match q.source() {
            QuoteSource::SePcr { value } => {
                assert_eq!(*value, PcrValue::ZERO.extended(&Sha1::digest(pal)));
            }
            other => panic!("unexpected source {other:?}"),
        }
        t.sepcr_free(h).unwrap();
        assert_eq!(t.sepcrs().free_count(), 1);
    }

    #[test]
    fn slaunch_measure_cost_matches_hash_rate() {
        let mut t = tpm_with_sepcrs(1);
        let pal = vec![0u8; 64 * 1024];
        let timed = t.slaunch_measure(&pal, CpuId(0)).unwrap();
        assert!((timed.elapsed.as_ms_f64() - 177.52).abs() < 0.2);
    }

    #[test]
    fn sepcr_exhaustion_surfaces_no_free_error() {
        let mut t = tpm_with_sepcrs(1);
        t.slaunch_measure(b"a", CpuId(0)).unwrap();
        assert_eq!(
            t.slaunch_measure(b"b", CpuId(1)).unwrap_err(),
            TpmError::NoFreeSePcr
        );
    }

    #[test]
    fn reboot_clears_hash_session_and_lock() {
        let mut t = tpm();
        t.hash_start(Locality::Cpu).unwrap();
        t.lock_mut().acquire(CpuId(1)).unwrap();
        t.reboot();
        assert_eq!(t.hash_data(b"x").unwrap_err(), TpmError::NoHashSession);
        assert_eq!(t.lock_mut().holder(), None);
    }

    #[test]
    fn reboot_frees_sepcrs_and_preserves_nvram() {
        let mut t = tpm_with_sepcrs(2);
        // One Exclusive, one Quote slot held across the power loss.
        let h0 = t.slaunch_measure(b"running", CpuId(0)).unwrap().value;
        let h1 = t.slaunch_measure(b"done", CpuId(1)).unwrap().value;
        t.sepcr_release_to_quote(h1, CpuId(1)).unwrap();
        // NVRAM carries a counter bump and a stored blob.
        t.nvram_mut().increment_counter(7);
        t.nvram_mut().store_blob(1, b"journal bytes");

        t.reboot();

        // Volatile half: every sePCR slot is Free again; the old
        // handles confer nothing.
        assert_eq!(t.sepcrs().free_count(), 2);
        assert!(t.sepcr_extend(h0, CpuId(0), &Sha1::digest(b"x")).is_err());
        assert!(t.sepcr_quote(h1, b"nonce").is_err());
        // Persistent half: counters and blobs survived.
        assert_eq!(t.nvram().counter(7), 1);
        assert_eq!(t.nvram().read_blob(1), Some(&b"journal bytes"[..]));
    }

    #[test]
    fn sealed_blob_in_nvram_survives_reboot_and_unseals() {
        // The durable engine's checkpoint strategy end-to-end: seal to
        // the empty PCR selection (binds to nothing, so a reboot cannot
        // invalidate it), park the bytes in NVRAM, lose power, read the
        // blob back and unseal it on the rebooted TPM.
        let mut t = tpm();
        let sealed = t.seal(b"write-ahead journal", &[]).unwrap().value;
        t.nvram_mut().store_blob(2, &sealed.to_bytes());
        t.reboot();
        let raw = t.nvram().read_blob(2).expect("blob survives").to_vec();
        let blob = SealedBlob::from_bytes(&raw).unwrap();
        let opened = t.unseal(&blob).unwrap().value;
        assert_eq!(opened, b"write-ahead journal");
    }

    #[test]
    fn deterministic_construction() {
        let a = Tpm::new(TpmKind::Infineon, KeyStrength::Demo512, b"seed");
        let b = Tpm::new(TpmKind::Infineon, KeyStrength::Demo512, b"seed");
        assert_eq!(a.aik_public(), b.aik_public());
    }

    #[test]
    fn transport_fault_is_one_shot_and_typed() {
        let mut t = tpm_with_sepcrs(2);
        t.arm_transport_fault(true);
        assert_eq!(
            t.pcr_read(PcrIndex(17)).unwrap_err(),
            TpmError::TransportFault { retryable: true }
        );
        // One-shot: the retry goes through.
        t.pcr_read(PcrIndex(17)).unwrap();
        t.arm_transport_fault(false);
        let err = t.slaunch_measure(b"pal", CpuId(0)).unwrap_err();
        assert_eq!(err, TpmError::TransportFault { retryable: false });
        assert!(!err.is_retryable());
        // The faulted SLAUNCH allocated nothing: no sePCR slot leaked.
        assert_eq!(t.sepcrs().free_count(), 2);
        // Teardown paths are never gated: SKILL always completes.
        let h = t.slaunch_measure(b"pal", CpuId(0)).unwrap().value;
        t.arm_transport_fault(true);
        t.sepcr_skill(h).unwrap();
        assert_eq!(t.sepcrs().free_count(), 2);
        // A reboot un-wedges the chip.
        t.arm_transport_fault(false);
        t.reboot();
        t.pcr_read(PcrIndex(17)).unwrap();
        // Disarm clears a pending fault without a reboot.
        t.arm_transport_fault(true);
        t.disarm_transport_fault();
        t.pcr_read(PcrIndex(17)).unwrap();
    }

    #[test]
    fn injected_faults_do_not_perturb_successful_command_costs() {
        // Satellite regression: the transport gate fires before any
        // timing-noise draw, so a jittered TPM that suffers faults must
        // charge the *same* sampled cost for each successful command as
        // an identical TPM that never faulted.
        let mut clean = tpm_with_sepcrs(2);
        let mut faulty = tpm_with_sepcrs(2);
        assert!(!clean.nominal_timing());
        let digest = Sha1::digest(b"m");

        let mut clean_costs = Vec::new();
        let mut faulty_costs = Vec::new();
        for i in 0..6u8 {
            // Interleave an injected fault before every other command on
            // the faulty TPM.
            if i % 2 == 0 {
                faulty.arm_transport_fault(true);
                assert!(faulty.extend(PcrIndex(17), &digest).is_err());
            }
            clean_costs.push(clean.extend(PcrIndex(17), &digest).unwrap().elapsed);
            faulty_costs.push(faulty.extend(PcrIndex(17), &digest).unwrap().elapsed);
            clean_costs.push(clean.seal(b"s", &[PcrIndex(17)]).unwrap().elapsed);
            faulty_costs.push(faulty.seal(b"s", &[PcrIndex(17)]).unwrap().elapsed);
        }
        assert_eq!(clean_costs, faulty_costs);
        // And the command *results* agree too (same PCR chain).
        assert_eq!(
            clean.pcr_read(PcrIndex(17)).unwrap().value,
            faulty.pcr_read(PcrIndex(17)).unwrap().value
        );
    }

    #[test]
    fn nominal_timing_and_fault_injection_compose() {
        // Same property with nominal timing pinned (the concurrent
        // engine's configuration): costs are means, faults or not.
        let mut t = tpm();
        t.set_nominal_timing(true);
        let digest = Sha1::digest(b"m");
        let before = t.extend(PcrIndex(17), &digest).unwrap().elapsed;
        t.arm_transport_fault(true);
        assert!(t.extend(PcrIndex(17), &digest).is_err());
        let after = t.extend(PcrIndex(17), &digest).unwrap().elapsed;
        assert_eq!(before, after);
        assert_eq!(after, t.timing().mean(TpmOp::PcrExtend));
    }

    #[test]
    fn timed_map_preserves_cost() {
        let t = Timed::new(3u32, SimDuration::from_ms(7));
        let u = t.map(|v| v * 2);
        assert_eq!(u.value, 6);
        assert_eq!(u.elapsed, SimDuration::from_ms(7));
    }
}
