//! sePCR *sets* — the second §6 extension.
//!
//! "It is a straightforward extension to group sePCRs into sets and bind
//! a set of sePCRs to each PAL. The TPM operations that accept an sePCR
//! as an argument will need to be modified appropriately. Some will be
//! indexed by the sePCR set itself (e.g., SLAUNCH will need to cause all
//! sePCRs in a set to reset), some by a subset of the sePCRs in a set
//! (e.g., TPM Quote), and others by the individual sePCRs inside a set
//! (e.g., TPM Extend)."
//!
//! A set gives a PAL several parallel measurement chains — e.g. one for
//! its code, one for configuration, one for input batches — and lets a
//! quote cover any subset, exactly as multi-PCR quotes do for the static
//! bank.

use sea_crypto::{Sha1, Sha1Digest};
use sea_hw::CpuId;

use crate::error::TpmError;
use crate::pcr::PcrValue;
use crate::sepcr::{SePcrBank, SePcrHandle, SePcrState};

/// Handle naming an allocated sePCR set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SePcrSetHandle(pub u16);

/// A bank of sePCRs grouped into fixed-size sets.
///
/// # Example
///
/// ```
/// use sea_tpm::SePcrSetBank;
/// use sea_crypto::Sha1;
/// use sea_hw::CpuId;
///
/// // 8 sePCRs grouped into sets of 2 → up to 4 concurrent PALs.
/// let mut bank = SePcrSetBank::new(8, 2);
/// let set = bank.allocate(&Sha1::digest(b"pal"), CpuId(0)).unwrap();
/// // Member 0 carries the launch measurement; member 1 is a fresh chain.
/// bank.extend_member(set, 1, CpuId(0), &Sha1::digest(b"config")).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SePcrSetBank {
    inner: SePcrBank,
    set_size: u16,
    /// `sets[s]` = member handles of set `s`, if allocated.
    sets: Vec<Option<Vec<SePcrHandle>>>,
}

impl SePcrSetBank {
    /// Creates a bank of `total` sePCRs grouped into sets of `set_size`.
    ///
    /// # Panics
    ///
    /// Panics unless `set_size > 0` and `set_size` divides `total`.
    pub fn new(total: u16, set_size: u16) -> Self {
        assert!(set_size > 0, "sets need at least one member");
        assert!(
            total.is_multiple_of(set_size),
            "total sePCRs must be a multiple of the set size"
        );
        SePcrSetBank {
            inner: SePcrBank::new(total),
            set_size,
            sets: vec![None; (total / set_size) as usize],
        }
    }

    /// Number of sets this bank can hold concurrently.
    pub fn set_capacity(&self) -> u16 {
        self.sets.len() as u16
    }

    /// Number of members per set.
    pub fn set_size(&self) -> u16 {
        self.set_size
    }

    /// Number of currently unallocated sets.
    pub fn free_sets(&self) -> u16 {
        self.sets.iter().filter(|s| s.is_none()).count() as u16
    }

    /// `SLAUNCH` path: allocates a whole set, resetting every member and
    /// extending the PAL `measurement` into member 0.
    ///
    /// # Errors
    ///
    /// [`TpmError::NoFreeSePcr`] when no complete set is free.
    pub fn allocate(
        &mut self,
        measurement: &Sha1Digest,
        owner: CpuId,
    ) -> Result<SePcrSetHandle, TpmError> {
        let slot = self
            .sets
            .iter()
            .position(|s| s.is_none())
            .ok_or(TpmError::NoFreeSePcr)?;
        if self.inner.free_count() < self.set_size {
            return Err(TpmError::NoFreeSePcr);
        }
        let mut members = Vec::with_capacity(self.set_size as usize);
        // Member 0 carries the launch measurement; the rest start as
        // fresh zero chains (allocated with an identity measurement of
        // the member index so chains are domain-separated).
        members.push(self.inner.allocate(measurement, owner)?);
        for i in 1..self.set_size {
            let tag = Sha1::digest(&[b"sePCR-set-member".as_slice(), &[i as u8]].concat());
            members.push(self.inner.allocate(&tag, owner)?);
        }
        self.sets[slot] = Some(members);
        Ok(SePcrSetHandle(slot as u16))
    }

    fn members(&self, set: SePcrSetHandle) -> Result<&[SePcrHandle], TpmError> {
        self.sets
            .get(set.0 as usize)
            .and_then(|s| s.as_deref())
            .ok_or(TpmError::NoSuchSePcr(SePcrHandle(set.0)))
    }

    fn member(&self, set: SePcrSetHandle, idx: u16) -> Result<SePcrHandle, TpmError> {
        self.members(set)?
            .get(idx as usize)
            .copied()
            .ok_or(TpmError::NoSuchSePcr(SePcrHandle(idx)))
    }

    /// `TPM_Extend`, indexed by an individual member.
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::extend`], plus invalid set/member handles.
    pub fn extend_member(
        &mut self,
        set: SePcrSetHandle,
        idx: u16,
        cpu: CpuId,
        measurement: &Sha1Digest,
    ) -> Result<PcrValue, TpmError> {
        let handle = self.member(set, idx)?;
        self.inner.extend(handle, cpu, measurement)
    }

    /// Reads one member's value from the owning CPU.
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::read_exclusive`].
    pub fn read_member(
        &self,
        set: SePcrSetHandle,
        idx: u16,
        cpu: CpuId,
    ) -> Result<PcrValue, TpmError> {
        let handle = self.member(set, idx)?;
        self.inner.read_exclusive(handle, cpu)
    }

    /// `SFREE` path: moves every member to the Quote state.
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::release_to_quote`].
    pub fn release_to_quote(&mut self, set: SePcrSetHandle, cpu: CpuId) -> Result<(), TpmError> {
        let members = self.members(set)?.to_vec();
        for h in members {
            self.inner.release_to_quote(h, cpu)?;
        }
        Ok(())
    }

    /// Composite digest over a *subset* of the set's members, in the
    /// Quote state — the value a set-aware `TPM_Quote` would sign.
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] if any selected member is not in
    /// the Quote state; invalid handles as above.
    pub fn quote_composite(
        &self,
        set: SePcrSetHandle,
        subset: &[u16],
    ) -> Result<Sha1Digest, TpmError> {
        let mut h = Sha1::new();
        h.update_bytes(b"sePCR-set-quote");
        for &idx in subset {
            let handle = self.member(set, idx)?;
            let value = self.inner.read_for_quote(handle)?;
            h.update_bytes(&[idx as u8]);
            h.update_bytes(value.as_bytes());
        }
        Ok(h.finalize_fixed())
    }

    /// `TPM_SEPCR_Free` for the whole set.
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::free`].
    pub fn free(&mut self, set: SePcrSetHandle) -> Result<(), TpmError> {
        let members = self.members(set)?.to_vec();
        for h in &members {
            self.inner.free(*h)?;
        }
        self.sets[set.0 as usize] = None;
        Ok(())
    }

    /// `SKILL` for the whole set: every member is branded and freed.
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::skill`].
    pub fn skill(&mut self, set: SePcrSetHandle) -> Result<(), TpmError> {
        let members = self.members(set)?.to_vec();
        for h in &members {
            self.inner.skill(*h)?;
        }
        self.sets[set.0 as usize] = None;
        Ok(())
    }

    /// State of a member (diagnostics).
    ///
    /// # Errors
    ///
    /// Invalid handles as above.
    pub fn member_state(&self, set: SePcrSetHandle, idx: u16) -> Result<SePcrState, TpmError> {
        let handle = self.member(set, idx)?;
        self.inner.state(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(label: &[u8]) -> Sha1Digest {
        Sha1::digest(label)
    }

    #[test]
    fn allocate_binds_whole_set() {
        let mut bank = SePcrSetBank::new(8, 2);
        assert_eq!(bank.set_capacity(), 4);
        assert_eq!(bank.free_sets(), 4);
        let set = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        assert_eq!(bank.free_sets(), 3);
        // Member 0 carries the PAL chain; member 1 a distinct fresh one.
        let v0 = bank.read_member(set, 0, CpuId(0)).unwrap();
        let v1 = bank.read_member(set, 1, CpuId(0)).unwrap();
        assert_eq!(v0, PcrValue::ZERO.extended(&m(b"pal")));
        assert_ne!(v0, v1);
        assert_eq!(bank.member_state(set, 0).unwrap(), SePcrState::Exclusive);
    }

    #[test]
    fn members_extend_independently() {
        let mut bank = SePcrSetBank::new(4, 2);
        let set = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        let before1 = bank.read_member(set, 1, CpuId(0)).unwrap();
        bank.extend_member(set, 1, CpuId(0), &m(b"config")).unwrap();
        assert_ne!(bank.read_member(set, 1, CpuId(0)).unwrap(), before1);
        // Member 0 untouched.
        assert_eq!(
            bank.read_member(set, 0, CpuId(0)).unwrap(),
            PcrValue::ZERO.extended(&m(b"pal"))
        );
    }

    #[test]
    fn owner_enforcement_applies_per_member() {
        let mut bank = SePcrSetBank::new(4, 2);
        let set = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        assert!(matches!(
            bank.extend_member(set, 0, CpuId(1), &m(b"x")),
            Err(TpmError::SePcrAccessDenied { .. })
        ));
        assert!(bank.read_member(set, 1, CpuId(1)).is_err());
    }

    #[test]
    fn quote_covers_subsets() {
        let mut bank = SePcrSetBank::new(6, 3);
        let set = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        bank.extend_member(set, 1, CpuId(0), &m(b"cfg")).unwrap();
        // Quoting before release fails.
        assert!(bank.quote_composite(set, &[0]).is_err());
        bank.release_to_quote(set, CpuId(0)).unwrap();
        let q01 = bank.quote_composite(set, &[0, 1]).unwrap();
        let q0 = bank.quote_composite(set, &[0]).unwrap();
        let q10 = bank.quote_composite(set, &[1, 0]).unwrap();
        assert_ne!(q01, q0);
        assert_ne!(q01, q10, "subset order is part of the composite");
        // Bad member index rejected.
        assert!(bank.quote_composite(set, &[3]).is_err());
    }

    #[test]
    fn capacity_is_in_sets_not_sepcrs() {
        let mut bank = SePcrSetBank::new(4, 2);
        let a = bank.allocate(&m(b"a"), CpuId(0)).unwrap();
        let _b = bank.allocate(&m(b"b"), CpuId(1)).unwrap();
        assert_eq!(
            bank.allocate(&m(b"c"), CpuId(2)),
            Err(TpmError::NoFreeSePcr)
        );
        // Free one set and the slot becomes available again.
        bank.release_to_quote(a, CpuId(0)).unwrap();
        bank.free(a).unwrap();
        assert!(bank.allocate(&m(b"c"), CpuId(2)).is_ok());
    }

    #[test]
    fn skill_brands_and_frees_whole_set() {
        let mut bank = SePcrSetBank::new(4, 2);
        let set = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        bank.skill(set).unwrap();
        assert_eq!(bank.free_sets(), 2);
        // The set handle is dead.
        assert!(bank.read_member(set, 0, CpuId(0)).is_err());
        assert!(bank.free(set).is_err());
    }

    #[test]
    fn invalid_handles_rejected() {
        let mut bank = SePcrSetBank::new(4, 2);
        let ghost = SePcrSetHandle(9);
        assert!(bank.release_to_quote(ghost, CpuId(0)).is_err());
        assert!(bank.quote_composite(ghost, &[0]).is_err());
        assert!(bank.skill(ghost).is_err());
        let set = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        assert!(bank.extend_member(set, 7, CpuId(0), &m(b"x")).is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of the set size")]
    fn ragged_bank_panics() {
        let _ = SePcrSetBank::new(5, 2);
    }
}
