//! Platform Configuration Registers with TPM v1.2 reset semantics.
//!
//! §2.1.3 of the paper: PCRs 0–16 are *static* (only a reboot resets
//! them, to zero); PCRs 17–23 are *dynamic* — a reboot sets them to −1
//! (all ones) "so that an external verifier can distinguish between a
//! reboot and a dynamic reset", while a late launch resets them to zero
//! before extending the launched code's measurement into PCR 17.

use std::fmt;

use sea_crypto::{Sha1, Sha1Digest, SHA1_DIGEST_LEN};

use crate::error::TpmError;

/// Number of PCRs in a v1.2 TPM.
pub const NUM_PCRS: u8 = 24;

/// First dynamically resettable PCR.
pub const DYNAMIC_PCR_FIRST: u8 = 17;

/// Last dynamically resettable PCR.
pub const DYNAMIC_PCR_LAST: u8 = 23;

/// Index of a PCR (0–23).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PcrIndex(pub u8);

impl PcrIndex {
    /// Whether this PCR is dynamically resettable (17–23).
    pub fn is_dynamic(self) -> bool {
        (DYNAMIC_PCR_FIRST..=DYNAMIC_PCR_LAST).contains(&self.0)
    }
}

impl fmt::Display for PcrIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCR{}", self.0)
    }
}

/// The 20-byte contents of a PCR.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PcrValue(pub Sha1Digest);

impl PcrValue {
    /// The all-zeroes value (post-reset / post-dynamic-reset).
    pub const ZERO: PcrValue = PcrValue([0u8; SHA1_DIGEST_LEN]);

    /// The all-ones (−1) value dynamic PCRs take at reboot.
    pub const MINUS_ONE: PcrValue = PcrValue([0xFFu8; SHA1_DIGEST_LEN]);

    /// The extend operation: `v ← SHA-1(v ‖ m)`.
    pub fn extended(&self, measurement: &Sha1Digest) -> PcrValue {
        let mut h = Sha1::new();
        h.update_bytes(&self.0);
        h.update_bytes(measurement);
        PcrValue(h.finalize_fixed())
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &Sha1Digest {
        &self.0
    }
}

impl fmt::Debug for PcrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PcrValue(")?;
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl fmt::Display for PcrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// The bank of 24 PCRs.
///
/// # Example
///
/// ```
/// use sea_tpm::{PcrBank, PcrIndex, PcrValue};
///
/// let mut bank = PcrBank::new();
/// // After power-on, dynamic PCRs read −1.
/// assert_eq!(bank.read(PcrIndex(17)).unwrap(), PcrValue::MINUS_ONE);
/// // A late launch resets them to zero before measuring.
/// bank.dynamic_reset();
/// assert_eq!(bank.read(PcrIndex(17)).unwrap(), PcrValue::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcrBank {
    values: [PcrValue; NUM_PCRS as usize],
}

impl Default for PcrBank {
    fn default() -> Self {
        Self::new()
    }
}

impl PcrBank {
    /// A bank in the post-reboot state: static PCRs zero, dynamic PCRs −1.
    pub fn new() -> Self {
        let mut bank = PcrBank {
            values: [PcrValue::ZERO; NUM_PCRS as usize],
        };
        bank.reboot();
        bank
    }

    /// Applies reboot semantics: static → 0, dynamic → −1.
    pub fn reboot(&mut self) {
        for (i, v) in self.values.iter_mut().enumerate() {
            *v = if PcrIndex(i as u8).is_dynamic() {
                PcrValue::MINUS_ONE
            } else {
                PcrValue::ZERO
            };
        }
    }

    /// Resets the dynamic PCRs (17–23) to zero — what `TPM_HASH_START`
    /// does at the start of a late launch. Only hardware may trigger
    /// this; the [`crate::Tpm`] wrapper enforces locality.
    pub fn dynamic_reset(&mut self) {
        for i in DYNAMIC_PCR_FIRST..=DYNAMIC_PCR_LAST {
            self.values[i as usize] = PcrValue::ZERO;
        }
    }

    /// Reads a PCR.
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] for indices ≥ 24.
    pub fn read(&self, index: PcrIndex) -> Result<PcrValue, TpmError> {
        self.values
            .get(index.0 as usize)
            .copied()
            .ok_or(TpmError::PcrOutOfRange(index))
    }

    /// Extends `measurement` into a PCR: `v ← SHA-1(v ‖ m)`.
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] for indices ≥ 24.
    pub fn extend(
        &mut self,
        index: PcrIndex,
        measurement: &Sha1Digest,
    ) -> Result<PcrValue, TpmError> {
        let slot = self
            .values
            .get_mut(index.0 as usize)
            .ok_or(TpmError::PcrOutOfRange(index))?;
        *slot = slot.extended(measurement);
        Ok(*slot)
    }

    /// The composite digest over a PCR selection: `SHA-1(i₁‖v₁‖…‖iₙ‖vₙ)`.
    /// This is the value sealed storage binds to and quotes sign.
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] if the selection names an invalid PCR.
    pub fn composite(&self, selection: &[PcrIndex]) -> Result<Sha1Digest, TpmError> {
        let mut h = Sha1::new();
        for &idx in selection {
            let v = self.read(idx)?;
            h.update_bytes(&[idx.0]);
            h.update_bytes(v.as_bytes());
        }
        Ok(h.finalize_fixed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reboot_state_distinguishes_static_and_dynamic() {
        let bank = PcrBank::new();
        for i in 0..DYNAMIC_PCR_FIRST {
            assert_eq!(bank.read(PcrIndex(i)).unwrap(), PcrValue::ZERO);
        }
        for i in DYNAMIC_PCR_FIRST..=DYNAMIC_PCR_LAST {
            assert_eq!(bank.read(PcrIndex(i)).unwrap(), PcrValue::MINUS_ONE);
        }
    }

    #[test]
    fn dynamic_reset_zeroes_only_dynamic() {
        let mut bank = PcrBank::new();
        let m = Sha1::digest(b"boot event");
        bank.extend(PcrIndex(0), &m).unwrap();
        let static_val = bank.read(PcrIndex(0)).unwrap();
        bank.dynamic_reset();
        assert_eq!(bank.read(PcrIndex(17)).unwrap(), PcrValue::ZERO);
        assert_eq!(bank.read(PcrIndex(0)).unwrap(), static_val);
    }

    #[test]
    fn extend_is_order_sensitive() {
        let mut a = PcrBank::new();
        let mut b = PcrBank::new();
        let m1 = Sha1::digest(b"one");
        let m2 = Sha1::digest(b"two");
        a.extend(PcrIndex(0), &m1).unwrap();
        a.extend(PcrIndex(0), &m2).unwrap();
        b.extend(PcrIndex(0), &m2).unwrap();
        b.extend(PcrIndex(0), &m1).unwrap();
        assert_ne!(a.read(PcrIndex(0)).unwrap(), b.read(PcrIndex(0)).unwrap());
    }

    #[test]
    fn extend_records_full_history() {
        // A PCR extended with the same measurement twice differs from one
        // extended once: the chain encodes multiplicity.
        let mut once = PcrBank::new();
        let mut twice = PcrBank::new();
        let m = Sha1::digest(b"event");
        once.extend(PcrIndex(5), &m).unwrap();
        twice.extend(PcrIndex(5), &m).unwrap();
        twice.extend(PcrIndex(5), &m).unwrap();
        assert_ne!(
            once.read(PcrIndex(5)).unwrap(),
            twice.read(PcrIndex(5)).unwrap()
        );
    }

    #[test]
    fn reboot_vs_dynamic_reset_distinguishable() {
        // §2.1.3: a verifier can tell −1 (reboot) from 0 (dynamic reset).
        let mut bank = PcrBank::new();
        assert_eq!(bank.read(PcrIndex(17)).unwrap(), PcrValue::MINUS_ONE);
        bank.dynamic_reset();
        assert_eq!(bank.read(PcrIndex(17)).unwrap(), PcrValue::ZERO);
        bank.reboot();
        assert_eq!(bank.read(PcrIndex(17)).unwrap(), PcrValue::MINUS_ONE);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut bank = PcrBank::new();
        assert_eq!(
            bank.read(PcrIndex(24)),
            Err(TpmError::PcrOutOfRange(PcrIndex(24)))
        );
        assert!(bank.extend(PcrIndex(200), &[0u8; 20]).is_err());
        assert!(bank.composite(&[PcrIndex(0), PcrIndex(99)]).is_err());
    }

    #[test]
    fn composite_depends_on_selection_and_values() {
        let mut bank = PcrBank::new();
        let c_17 = bank.composite(&[PcrIndex(17)]).unwrap();
        let c_17_18 = bank.composite(&[PcrIndex(17), PcrIndex(18)]).unwrap();
        assert_ne!(c_17, c_17_18);
        bank.extend(PcrIndex(17), &Sha1::digest(b"pal")).unwrap();
        assert_ne!(bank.composite(&[PcrIndex(17)]).unwrap(), c_17);
    }

    #[test]
    fn pcr_value_display_roundtrip() {
        let v = PcrValue::ZERO;
        assert_eq!(v.to_string(), "0".repeat(40));
        assert!(format!("{v:?}").starts_with("PcrValue(0000"));
    }

    #[test]
    fn dynamic_index_classification() {
        assert!(!PcrIndex(16).is_dynamic());
        assert!(PcrIndex(17).is_dynamic());
        assert!(PcrIndex(23).is_dynamic());
    }
}
