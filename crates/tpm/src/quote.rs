//! TPM attestation: `TPM_Quote` structures and verification.
//!
//! §2.1.1: a quote is "essentially a digital signature on the current
//! platform state" under an Attestation Identity Key. The external
//! verifier checks the AIK signature, recomputes the PCR composite, and
//! decides whether the reported values correspond to a genuine late
//! launch of the expected PAL.

use sea_crypto::{RsaPrivateKey, RsaPublicKey, Sha1, Sha1Digest, Signature};

use crate::error::TpmError;
use crate::pcr::{PcrIndex, PcrValue};

/// What a quote reports: ordinary PCRs or a secure-execution PCR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuoteSource {
    /// A selection of ordinary PCRs with their values at quote time.
    Pcrs {
        /// The quoted PCR indices.
        selection: Vec<PcrIndex>,
        /// The corresponding values, in selection order.
        values: Vec<PcrValue>,
    },
    /// A secure-execution PCR (proposed hardware, §5.4.3). The handle is
    /// deliberately *not* part of the signed state: the identity of a PAL
    /// is its measurement chain, not which slot it happened to occupy.
    SePcr {
        /// The sePCR value at quote time.
        value: PcrValue,
    },
}

impl QuoteSource {
    /// Decodes the canonical encoding produced by `encode`.
    fn decode(bytes: &[u8]) -> Result<Self, TpmError> {
        match bytes.split_first() {
            Some((0x00, rest)) => {
                let n = *rest.first().ok_or(TpmError::InvalidBlob)? as usize;
                let mut selection = Vec::with_capacity(n);
                let mut values = Vec::with_capacity(n);
                let mut cursor = &rest[1..];
                for _ in 0..n {
                    if cursor.len() < 21 {
                        return Err(TpmError::InvalidBlob);
                    }
                    selection.push(PcrIndex(cursor[0]));
                    let digest: [u8; 20] = cursor[1..21].try_into().expect("20 bytes");
                    values.push(PcrValue(digest));
                    cursor = &cursor[21..];
                }
                if !cursor.is_empty() {
                    return Err(TpmError::InvalidBlob);
                }
                Ok(QuoteSource::Pcrs { selection, values })
            }
            Some((0x01, rest)) => {
                let digest: [u8; 20] = rest.try_into().map_err(|_| TpmError::InvalidBlob)?;
                Ok(QuoteSource::SePcr {
                    value: PcrValue(digest),
                })
            }
            _ => Err(TpmError::InvalidBlob),
        }
    }

    /// Canonical byte encoding covered by the quote signature.
    fn encode(&self) -> Vec<u8> {
        match self {
            QuoteSource::Pcrs { selection, values } => {
                let mut out = vec![0x00, selection.len() as u8];
                for (idx, val) in selection.iter().zip(values) {
                    out.push(idx.0);
                    out.extend_from_slice(val.as_bytes());
                }
                out
            }
            QuoteSource::SePcr { value } => {
                let mut out = vec![0x01];
                out.extend_from_slice(value.as_bytes());
                out
            }
        }
    }
}

/// A signed attestation of platform state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    source: QuoteSource,
    nonce: Vec<u8>,
    signature: Signature,
}

const QUOTE_TAG: &[u8] = b"TPM_QUOTE_v1";

/// Magic prefix of the canonical quote wire format.
pub const WIRE_QUOTE_MAGIC: [u8; 4] = *b"SEAQ";

/// Version of the canonical quote wire format. Bump on any change to
/// the field order or framing; a verifier must reject versions it does
/// not understand rather than guess.
pub const WIRE_QUOTE_VERSION: u16 = 2;

/// The canonical serialized form of a [`Quote`] — what actually crosses
/// the wire to a remote verifier.
///
/// The TPM emits *this* (not the in-memory [`Quote`] struct), so the
/// platform and the verifier cannot silently share representation
/// assumptions: both sides must go through the byte format. Layout
/// (all lengths big-endian):
///
/// ```text
/// [0..4)   magic  "SEAQ"                      (WIRE_QUOTE_MAGIC)
/// [4..6)   format version, u16                (WIRE_QUOTE_VERSION)
/// then 3 length-prefixed fields, in this order:
///   u32 len ‖ source encoding   (tagged: 0x00 PCR selection, 0x01 sePCR)
///   u32 len ‖ nonce
///   u32 len ‖ AIK signature
/// ```
///
/// Trailing bytes after the last field are a framing error. A
/// `WireQuote` is an *unvalidated* container — [`Quote::from_wire`]
/// performs the structural checks, [`Quote::verify_signature`] the
/// cryptographic one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQuote(Vec<u8>);

impl WireQuote {
    /// Wraps raw bytes received from the wire (unvalidated).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        WireQuote(bytes)
    }

    /// The serialized quote.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the wrapper, yielding the serialized quote.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Serialized length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the container is empty (never true for TPM output).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The digest an AIK signs for a quote.
pub(crate) fn quote_digest(source: &QuoteSource, nonce: &[u8]) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update_bytes(QUOTE_TAG);
    h.update_bytes(&source.encode());
    h.update_bytes(&(nonce.len() as u32).to_be_bytes());
    h.update_bytes(nonce);
    h.finalize_fixed()
}

impl Quote {
    /// Assembles a quote from its parts (called by the TPM).
    pub(crate) fn new(source: QuoteSource, nonce: Vec<u8>, signature: Signature) -> Self {
        Quote {
            source,
            nonce,
            signature,
        }
    }

    /// The reported platform state.
    pub fn source(&self) -> &QuoteSource {
        &self.source
    }

    /// The verifier-supplied anti-replay nonce.
    pub fn nonce(&self) -> &[u8] {
        &self.nonce
    }

    /// The raw AIK signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Verifies the AIK signature over the reported state and nonce.
    ///
    /// This is only the *cryptographic* check; deciding whether the
    /// reported values correspond to a trusted PAL is the verifier's
    /// policy (see `sea-core`'s `Verifier`).
    pub fn verify_signature(&self, aik: &RsaPublicKey) -> bool {
        let digest = quote_digest(&self.source, &self.nonce);
        aik.verify_pkcs1v15(&digest, &self.signature)
    }

    /// Re-issues this quote over a fresh verifier nonce — the
    /// platform-side retry path. The reported state is unchanged (the
    /// sePCR value is whatever the session left it at); only the
    /// anti-replay nonce and the signature differ, so a verifier whose
    /// nonces are single-use can be answered again without replaying a
    /// consumed challenge. The caller supplies the signing AIK, which
    /// after a certificate rotation may be a newer generation than the
    /// one that signed the original quote.
    ///
    /// # Errors
    ///
    /// [`TpmError::InvalidBlob`] if the AIK is too small to sign a
    /// SHA-1 digest.
    pub fn reissue(&self, nonce: &[u8], aik: &RsaPrivateKey) -> Result<Quote, TpmError> {
        let nonce = nonce.to_vec();
        let signature = aik
            .sign_pkcs1v15(&quote_digest(&self.source, &nonce))
            .map_err(|_| TpmError::InvalidBlob)?;
        Ok(Quote {
            source: self.source.clone(),
            nonce,
            signature,
        })
    }

    /// Serializes the quote into the canonical wire format (see
    /// [`WireQuote`] for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = WIRE_QUOTE_MAGIC.to_vec();
        out.extend_from_slice(&WIRE_QUOTE_VERSION.to_be_bytes());
        let src = self.source.encode();
        for part in [&src[..], &self.nonce, &self.signature.0] {
            out.extend_from_slice(&(part.len() as u32).to_be_bytes());
            out.extend_from_slice(part);
        }
        out
    }

    /// Serializes the quote for transmission to a remote verifier.
    pub fn to_wire(&self) -> WireQuote {
        WireQuote(self.to_bytes())
    }

    /// Deserializes a quote written by [`Quote::to_bytes`]. Structural
    /// validity only — authenticity comes from
    /// [`Quote::verify_signature`].
    ///
    /// # Errors
    ///
    /// [`TpmError::InvalidBlob`] for malformed input: wrong magic, an
    /// unsupported format version, a truncated field, trailing bytes,
    /// or an undecodable source encoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TpmError> {
        let rest = bytes
            .strip_prefix(&WIRE_QUOTE_MAGIC[..])
            .ok_or(TpmError::InvalidBlob)?;
        if rest.len() < 2 {
            return Err(TpmError::InvalidBlob);
        }
        let version = u16::from_be_bytes(rest[..2].try_into().expect("2 bytes"));
        if version != WIRE_QUOTE_VERSION {
            return Err(TpmError::InvalidBlob);
        }
        let mut cursor = &rest[2..];
        let mut next = || -> Result<Vec<u8>, TpmError> {
            if cursor.len() < 4 {
                return Err(TpmError::InvalidBlob);
            }
            let len = u32::from_be_bytes(cursor[..4].try_into().expect("4 bytes")) as usize;
            cursor = &cursor[4..];
            if cursor.len() < len {
                return Err(TpmError::InvalidBlob);
            }
            let part = cursor[..len].to_vec();
            cursor = &cursor[len..];
            Ok(part)
        };
        let src = next()?;
        let nonce = next()?;
        let signature = Signature(next()?);
        if !cursor.is_empty() {
            return Err(TpmError::InvalidBlob);
        }
        let source = QuoteSource::decode(&src)?;
        Ok(Quote {
            source,
            nonce,
            signature,
        })
    }

    /// Parses a quote received over the wire.
    ///
    /// # Errors
    ///
    /// As for [`Quote::from_bytes`].
    pub fn from_wire(wire: &WireQuote) -> Result<Self, TpmError> {
        Self::from_bytes(wire.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_crypto::{Drbg, RsaPrivateKey};

    fn aik() -> RsaPrivateKey {
        RsaPrivateKey::generate(512, &mut Drbg::new(b"test aik")).unwrap()
    }

    fn sample_source() -> QuoteSource {
        QuoteSource::Pcrs {
            selection: vec![PcrIndex(17)],
            values: vec![PcrValue::ZERO],
        }
    }

    fn signed(aik: &RsaPrivateKey, source: QuoteSource, nonce: &[u8]) -> Quote {
        let digest = quote_digest(&source, nonce);
        let sig = aik.sign_pkcs1v15(&digest).unwrap();
        Quote::new(source, nonce.to_vec(), sig)
    }

    #[test]
    fn valid_quote_verifies() {
        let key = aik();
        let q = signed(&key, sample_source(), b"nonce-1");
        assert!(q.verify_signature(key.public_key()));
        assert_eq!(q.nonce(), b"nonce-1");
    }

    #[test]
    fn reissue_carries_state_under_a_fresh_nonce() {
        let key = aik();
        let q = signed(&key, sample_source(), b"nonce-1");
        let again = q.reissue(b"nonce-2", &key).expect("reissue");
        assert_eq!(again.source(), q.source());
        assert_eq!(again.nonce(), b"nonce-2");
        assert!(again.verify_signature(key.public_key()));
        // A different signing key produces a quote the original AIK
        // no longer verifies — the rotation case.
        let rotated = RsaPrivateKey::generate(512, &mut Drbg::new(b"rotated")).unwrap();
        let under_new_key = q.reissue(b"nonce-3", &rotated).expect("reissue");
        assert!(!under_new_key.verify_signature(key.public_key()));
        assert!(under_new_key.verify_signature(rotated.public_key()));
        // The wire roundtrip is unchanged.
        let parsed = Quote::from_bytes(&again.to_bytes()).expect("roundtrip");
        assert_eq!(parsed, again);
    }

    #[test]
    fn wrong_aik_rejected() {
        let key = aik();
        let other = RsaPrivateKey::generate(512, &mut Drbg::new(b"other")).unwrap();
        let q = signed(&key, sample_source(), b"nonce-1");
        assert!(!q.verify_signature(other.public_key()));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let key = aik();
        let mut q = signed(&key, sample_source(), b"nonce-1");
        q.nonce = b"nonce-2".to_vec();
        assert!(!q.verify_signature(key.public_key()));
    }

    #[test]
    fn tampered_values_rejected() {
        let key = aik();
        let mut q = signed(&key, sample_source(), b"nonce-1");
        if let QuoteSource::Pcrs { values, .. } = &mut q.source {
            values[0] = PcrValue::MINUS_ONE;
        }
        assert!(!q.verify_signature(key.public_key()));
    }

    #[test]
    fn serialization_roundtrip_preserves_verifiability() {
        let key = aik();
        for source in [
            sample_source(),
            QuoteSource::SePcr {
                value: PcrValue::MINUS_ONE,
            },
            QuoteSource::Pcrs {
                selection: vec![PcrIndex(17), PcrIndex(18)],
                values: vec![PcrValue::ZERO, PcrValue::MINUS_ONE],
            },
        ] {
            let q = signed(&key, source, b"wire-nonce");
            let bytes = q.to_bytes();
            let back = Quote::from_bytes(&bytes).unwrap();
            assert_eq!(back, q);
            assert!(back.verify_signature(key.public_key()));
        }
    }

    #[test]
    fn deserialization_rejects_malformed_input() {
        assert!(Quote::from_bytes(b"").is_err());
        assert!(Quote::from_bytes(b"SEAQ").is_err());
        assert!(Quote::from_bytes(b"NOPEv1xxxx").is_err());
        let key = aik();
        let bytes = signed(&key, sample_source(), b"n").to_bytes();
        for cut in [5, bytes.len() / 2, bytes.len() - 1] {
            assert!(Quote::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes are a framing error, not silently ignored.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Quote::from_bytes(&padded).is_err());
        // A wire-tampered quote still parses (structure intact) but the
        // signature no longer verifies.
        let mut tampered = bytes.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        let parsed = Quote::from_bytes(&tampered).unwrap();
        assert!(!parsed.verify_signature(key.public_key()));
    }

    #[test]
    fn wire_format_has_versioned_header() {
        let key = aik();
        let q = signed(&key, sample_source(), b"n");
        let wire = q.to_wire();
        assert_eq!(&wire.as_bytes()[..4], b"SEAQ");
        assert_eq!(
            u16::from_be_bytes(wire.as_bytes()[4..6].try_into().unwrap()),
            WIRE_QUOTE_VERSION
        );
        assert!(!wire.is_empty());
        assert_eq!(wire.len(), wire.as_bytes().len());
        // Round-trips through the wire type.
        assert_eq!(Quote::from_wire(&wire).unwrap(), q);
        assert_eq!(
            WireQuote::from_bytes(wire.clone().into_bytes()).as_bytes(),
            wire.as_bytes()
        );
        // An unknown version is rejected outright, even with an intact
        // body: the verifier must not guess at framing.
        let mut future = wire.into_bytes();
        future[5] = 0x63;
        assert_eq!(
            Quote::from_bytes(&future).unwrap_err(),
            TpmError::InvalidBlob
        );
    }

    #[test]
    fn sepcr_and_pcr_sources_are_domain_separated() {
        // A PCR-source quote cannot be reinterpreted as a sePCR quote of
        // the same bytes: the encodings carry distinct tags.
        let a = QuoteSource::Pcrs {
            selection: vec![PcrIndex(0)],
            values: vec![PcrValue::ZERO],
        };
        let b = QuoteSource::SePcr {
            value: PcrValue::ZERO,
        };
        assert_ne!(quote_digest(&a, b"n"), quote_digest(&b, b"n"));
    }

    #[test]
    fn nonce_length_is_bound() {
        // Shifting bytes between nonce and state must change the digest.
        let s = QuoteSource::SePcr {
            value: PcrValue::ZERO,
        };
        assert_ne!(quote_digest(&s, b"ab"), quote_digest(&s, b"a"));
    }
}
