//! Measured (trusted) boot over the static PCRs — the §2.1.1 background
//! that motivates minimal-TCB execution.
//!
//! "As originally envisioned, the verifier must assess a list of all
//! software loaded since boot time (including the OS) and its
//! configuration information, and decide whether the platform should be
//! trusted." This module implements that original vision — an event log
//! whose entries are extended into static PCRs, and a verifier that
//! replays the log against a quote — so the repository can demonstrate
//! *why* judging a whole boot chain is so much harder than judging one
//! PAL measurement.

use sea_crypto::{Sha1, Sha1Digest};

use crate::error::TpmError;
use crate::pcr::{PcrIndex, PcrValue, DYNAMIC_PCR_FIRST};
use crate::tpm::Tpm;

/// One measured boot event (an entry in the stored measurement log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootEvent {
    /// The static PCR the event was extended into (0–16).
    pub pcr: PcrIndex,
    /// Human-readable description ("BIOS", "bootloader", "kernel", …).
    pub description: String,
    /// SHA-1 measurement of the loaded component.
    pub digest: Sha1Digest,
}

/// The stored measurement log a trusted-boot attestation ships alongside
/// the quote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<BootEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog { events: Vec::new() }
    }

    /// The recorded events, in measurement order.
    pub fn events(&self) -> &[BootEvent] {
        &self.events
    }

    /// Measures `component` into `pcr` on `tpm` and appends the
    /// corresponding log entry — what each boot stage does for the next
    /// (Arbaugh-style chain, reference \[4\]/\[19\] of the paper).
    ///
    /// # Errors
    ///
    /// [`TpmError::PcrOutOfRange`] for dynamic or invalid PCRs: boot
    /// measurements belong in the static bank.
    pub fn measure(
        &mut self,
        tpm: &mut Tpm,
        pcr: PcrIndex,
        description: &str,
        component: &[u8],
    ) -> Result<(), TpmError> {
        if pcr.0 >= DYNAMIC_PCR_FIRST {
            return Err(TpmError::PcrOutOfRange(pcr));
        }
        let digest = Sha1::digest(component);
        tpm.extend(pcr, &digest)?;
        self.events.push(BootEvent {
            pcr,
            description: description.to_owned(),
            digest,
        });
        Ok(())
    }

    /// Replays the log: computes the PCR values the log *claims* (the
    /// chain of extends from zero, per PCR).
    pub fn replay(&self) -> Vec<(PcrIndex, PcrValue)> {
        let mut out: Vec<(PcrIndex, PcrValue)> = Vec::new();
        for event in &self.events {
            match out.iter_mut().find(|(p, _)| *p == event.pcr) {
                Some((_, v)) => *v = v.extended(&event.digest),
                None => out.push((event.pcr, PcrValue::ZERO.extended(&event.digest))),
            }
        }
        out
    }

    /// Verifies the log against live PCR values (as reported in a
    /// quote): every claimed chain must match the reported value.
    ///
    /// Note what this does *not* give the verifier: a judgement. It
    /// still has to decide whether every one of the listed components —
    /// BIOS build, bootloader, multi-million-line kernel, config files —
    /// is trustworthy. That assessment burden is the paper's motivation
    /// for the minimal TCB.
    pub fn matches(&self, reported: &[(PcrIndex, PcrValue)]) -> bool {
        let replayed = self.replay();
        replayed
            .iter()
            .all(|(pcr, expected)| reported.iter().any(|(rp, rv)| rp == pcr && rv == expected))
    }
}

/// Arbaugh-style *secure boot* (paper reference \[4\]): each layer
/// verifies the next against a known-good policy **before** transferring
/// control, aborting the boot otherwise.
///
/// Contrast with [`EventLog`] trusted boot: secure boot enforces a local
/// policy but produces nothing an external party can verify ("this
/// architecture does not allow a system to attest its configuration to
/// an external party", §7) — which is why the paper's lineage runs
/// through trusted boot and late launch instead.
#[derive(Debug, Clone, Default)]
pub struct SecureBootPolicy {
    approved: Vec<Sha1Digest>,
}

/// Outcome of a secure-boot stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecureBootOutcome {
    /// The component matched the policy; control transfers.
    Continue,
    /// Unknown component; the boot halts here.
    Abort,
}

impl SecureBootPolicy {
    /// Creates a policy trusting exactly the given component images.
    pub fn new(approved_components: &[&[u8]]) -> Self {
        SecureBootPolicy {
            approved: approved_components
                .iter()
                .map(|c| Sha1::digest(c))
                .collect(),
        }
    }

    /// The verify-before-load step a boot stage runs on its successor.
    pub fn check(&self, component: &[u8]) -> SecureBootOutcome {
        if self.approved.contains(&Sha1::digest(component)) {
            SecureBootOutcome::Continue
        } else {
            SecureBootOutcome::Abort
        }
    }

    /// Runs a whole boot chain, returning how many stages loaded before
    /// an abort (all of them, if the chain is clean).
    pub fn run_chain(&self, chain: &[&[u8]]) -> (usize, SecureBootOutcome) {
        for (i, component) in chain.iter().enumerate() {
            if self.check(component) == SecureBootOutcome::Abort {
                return (i, SecureBootOutcome::Abort);
            }
        }
        (chain.len(), SecureBootOutcome::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpm::KeyStrength;
    use sea_hw::TpmKind;

    fn tpm() -> Tpm {
        Tpm::new(TpmKind::Infineon, KeyStrength::Demo512, b"boot tpm")
    }

    fn boot_chain(tpm: &mut Tpm) -> EventLog {
        let mut log = EventLog::new();
        log.measure(tpm, PcrIndex(0), "BIOS", b"bios v1.02")
            .unwrap();
        log.measure(tpm, PcrIndex(4), "bootloader", b"grub 0.97")
            .unwrap();
        log.measure(tpm, PcrIndex(8), "kernel", b"vmlinuz-2.6.23")
            .unwrap();
        log.measure(tpm, PcrIndex(8), "initrd", b"initrd.img")
            .unwrap();
        log
    }

    fn read_pcrs(tpm: &mut Tpm, idxs: &[u8]) -> Vec<(PcrIndex, PcrValue)> {
        idxs.iter()
            .map(|&i| (PcrIndex(i), tpm.pcr_read(PcrIndex(i)).unwrap().value))
            .collect()
    }

    #[test]
    fn log_replay_matches_live_pcrs() {
        let mut t = tpm();
        let log = boot_chain(&mut t);
        assert_eq!(log.events().len(), 4);
        let reported = read_pcrs(&mut t, &[0, 4, 8]);
        assert!(log.matches(&reported));
    }

    #[test]
    fn log_tampering_detected() {
        let mut t = tpm();
        let mut log = boot_chain(&mut t);
        // The compromised OS edits the log to hide the real kernel.
        let mut events: Vec<BootEvent> = log.events().to_vec();
        events[2].digest = Sha1::digest(b"vmlinuz-clean-looking");
        log = EventLog { events };
        let reported = read_pcrs(&mut t, &[0, 4, 8]);
        assert!(!log.matches(&reported));
    }

    #[test]
    fn omitted_event_detected() {
        let mut t = tpm();
        let log = boot_chain(&mut t);
        // Hide the initrd measurement.
        let truncated = EventLog {
            events: log.events()[..3].to_vec(),
        };
        let reported = read_pcrs(&mut t, &[0, 4, 8]);
        assert!(!truncated.matches(&reported));
    }

    #[test]
    fn boot_measurements_rejected_on_dynamic_pcrs() {
        let mut t = tpm();
        let mut log = EventLog::new();
        assert_eq!(
            log.measure(&mut t, PcrIndex(17), "sneaky", b"x")
                .unwrap_err(),
            TpmError::PcrOutOfRange(PcrIndex(17))
        );
    }

    #[test]
    fn quoted_boot_state_verifies_end_to_end() {
        let mut t = tpm();
        let log = boot_chain(&mut t);
        let quote = crate::quote::Quote::from_wire(
            &t.quote(b"nonce", &[PcrIndex(0), PcrIndex(4), PcrIndex(8)])
                .unwrap()
                .value,
        )
        .unwrap();
        assert!(quote.verify_signature(t.aik_public()));
        // Extract the reported values from the quote and check the log.
        if let crate::quote::QuoteSource::Pcrs { selection, values } = quote.source() {
            let reported: Vec<(PcrIndex, PcrValue)> = selection
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect();
            assert!(log.matches(&reported));
        } else {
            panic!("expected a PCR quote");
        }
    }

    #[test]
    fn secure_boot_loads_clean_chains_and_halts_on_tampering() {
        let policy = SecureBootPolicy::new(&[b"bios-ok", b"loader-ok", b"kernel-ok"]);
        // Clean chain boots fully.
        let (stages, outcome) = policy.run_chain(&[b"bios-ok", b"loader-ok", b"kernel-ok"]);
        assert_eq!((stages, outcome), (3, SecureBootOutcome::Continue));
        // A tampered kernel halts the boot at stage 2 — locally enforced,
        // but nothing here is attestable to a remote party.
        let (stages, outcome) = policy.run_chain(&[b"bios-ok", b"loader-ok", b"kernel-rooted"]);
        assert_eq!((stages, outcome), (2, SecureBootOutcome::Abort));
        // Empty policy rejects everything.
        assert_eq!(
            SecureBootPolicy::default().check(b"anything"),
            SecureBootOutcome::Abort
        );
    }

    #[test]
    fn replay_accumulates_per_pcr_chains() {
        let mut t = tpm();
        let log = boot_chain(&mut t);
        let replayed = log.replay();
        // Three distinct PCRs touched; PCR 8 extended twice.
        assert_eq!(replayed.len(), 3);
        let pcr8 = replayed.iter().find(|(p, _)| *p == PcrIndex(8)).unwrap().1;
        let expected = PcrValue::ZERO
            .extended(&Sha1::digest(b"vmlinuz-2.6.23"))
            .extended(&Sha1::digest(b"initrd.img"));
        assert_eq!(pcr8, expected);
    }
}
