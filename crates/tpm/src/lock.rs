//! Hardware TPM arbitration (§5.4.5).
//!
//! "Today's TPM-to-CPU communication architecture assumes the use of
//! software locking ... With the introduction of SLAUNCH, we require a
//! hardware mechanism to arbitrate TPM access from PALs executing on
//! multiple CPUs. A simple arbitration mechanism is hardware locking."

use sea_hw::CpuId;

use crate::error::TpmError;

/// The proposed hardware TPM lock.
///
/// # Example
///
/// ```
/// use sea_tpm::TpmLock;
/// use sea_hw::CpuId;
///
/// let mut lock = TpmLock::new();
/// lock.acquire(CpuId(0)).unwrap();
/// assert!(lock.acquire(CpuId(1)).is_err()); // other CPUs must wait
/// lock.release(CpuId(0)).unwrap();
/// assert!(lock.acquire(CpuId(1)).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TpmLock {
    holder: Option<CpuId>,
}

impl TpmLock {
    /// Creates an unheld lock.
    pub fn new() -> Self {
        TpmLock { holder: None }
    }

    /// The CPU currently holding the lock, if any.
    pub fn holder(&self) -> Option<CpuId> {
        self.holder
    }

    /// Attempts to take the lock for `cpu`. Re-acquisition by the current
    /// holder is a no-op (the hardware sees one requester).
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if another CPU holds the lock — the caller
    /// "wait\[s\] until the TPM is free to attempt communication".
    pub fn acquire(&mut self, cpu: CpuId) -> Result<(), TpmError> {
        match self.holder {
            None => {
                self.holder = Some(cpu);
                Ok(())
            }
            Some(h) if h == cpu => Ok(()),
            Some(h) => Err(TpmError::LockHeld { holder: h }),
        }
    }

    /// Releases the lock.
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if `cpu` is not the holder (a CPU cannot
    /// release another CPU's lock).
    pub fn release(&mut self, cpu: CpuId) -> Result<(), TpmError> {
        match self.holder {
            Some(h) if h == cpu => {
                self.holder = None;
                Ok(())
            }
            Some(h) => Err(TpmError::LockHeld { holder: h }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_acquisition() {
        let mut lock = TpmLock::new();
        assert_eq!(lock.holder(), None);
        lock.acquire(CpuId(0)).unwrap();
        assert_eq!(lock.holder(), Some(CpuId(0)));
        assert_eq!(
            lock.acquire(CpuId(1)),
            Err(TpmError::LockHeld { holder: CpuId(0) })
        );
    }

    #[test]
    fn reentrant_for_holder() {
        let mut lock = TpmLock::new();
        lock.acquire(CpuId(2)).unwrap();
        assert!(lock.acquire(CpuId(2)).is_ok());
    }

    #[test]
    fn only_holder_releases() {
        let mut lock = TpmLock::new();
        lock.acquire(CpuId(0)).unwrap();
        assert!(lock.release(CpuId(1)).is_err());
        lock.release(CpuId(0)).unwrap();
        assert_eq!(lock.holder(), None);
        // Releasing an unheld lock is harmless.
        assert!(lock.release(CpuId(0)).is_ok());
    }
}
