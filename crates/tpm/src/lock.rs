//! Hardware TPM arbitration (§5.4.5).
//!
//! "Today's TPM-to-CPU communication architecture assumes the use of
//! software locking ... With the introduction of SLAUNCH, we require a
//! hardware mechanism to arbitrate TPM access from PALs executing on
//! multiple CPUs. A simple arbitration mechanism is hardware locking."

use std::sync::atomic::{AtomicU32, Ordering};

use sea_hw::{CpuId, SimTime};

use crate::error::TpmError;

/// The proposed hardware TPM lock.
///
/// # Example
///
/// ```
/// use sea_tpm::TpmLock;
/// use sea_hw::CpuId;
///
/// let mut lock = TpmLock::new();
/// lock.acquire(CpuId(0)).unwrap();
/// assert!(lock.acquire(CpuId(1)).is_err()); // other CPUs must wait
/// lock.release(CpuId(0)).unwrap();
/// assert!(lock.acquire(CpuId(1)).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TpmLock {
    holder: Option<CpuId>,
}

impl TpmLock {
    /// Creates an unheld lock.
    pub fn new() -> Self {
        TpmLock { holder: None }
    }

    /// The CPU currently holding the lock, if any.
    pub fn holder(&self) -> Option<CpuId> {
        self.holder
    }

    /// Attempts to take the lock for `cpu`. Re-acquisition by the current
    /// holder is a no-op (the hardware sees one requester).
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if another CPU holds the lock — the caller
    /// "wait\[s\] until the TPM is free to attempt communication".
    pub fn acquire(&mut self, cpu: CpuId) -> Result<(), TpmError> {
        match self.holder {
            None => {
                self.holder = Some(cpu);
                Ok(())
            }
            Some(h) if h == cpu => Ok(()),
            Some(h) => Err(TpmError::LockHeld { holder: h }),
        }
    }

    /// Releases the lock.
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if `cpu` is not the holder (a CPU cannot
    /// release another CPU's lock).
    pub fn release(&mut self, cpu: CpuId) -> Result<(), TpmError> {
        match self.holder {
            Some(h) if h == cpu => {
                self.holder = None;
                Ok(())
            }
            Some(h) => Err(TpmError::LockHeld { holder: h }),
            None => Ok(()),
        }
    }
}

/// Sentinel for "no holder" in [`SharedTpmLock`]'s packed word.
const UNHELD: u32 = u32::MAX;

/// The hardware TPM lock as real CPUs would race for it: a single
/// atomic word, safe to share across the concurrent session engine's
/// worker threads.
///
/// Semantics match [`TpmLock`] exactly — exclusive, reentrant for the
/// holder, releasable only by the holder — but acquisition is a
/// compare-and-swap, so two threads contending for the TPM resolve the
/// race in hardware rather than by data-race UB.
///
/// # Example
///
/// ```
/// use sea_tpm::SharedTpmLock;
/// use sea_hw::CpuId;
///
/// let lock = SharedTpmLock::new();
/// lock.acquire(CpuId(0)).unwrap();
/// assert!(lock.acquire(CpuId(1)).is_err()); // other CPUs must wait
/// lock.release(CpuId(0)).unwrap();
/// assert!(lock.acquire(CpuId(1)).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct SharedTpmLock {
    /// The holding CPU's id, or [`UNHELD`].
    holder: AtomicU32,
}

impl SharedTpmLock {
    /// Creates an unheld lock.
    pub fn new() -> Self {
        SharedTpmLock {
            holder: AtomicU32::new(UNHELD),
        }
    }

    /// The CPU currently holding the lock, if any.
    pub fn holder(&self) -> Option<CpuId> {
        match self.holder.load(Ordering::SeqCst) {
            UNHELD => None,
            cpu => Some(CpuId(cpu as u16)),
        }
    }

    /// Attempts to take the lock for `cpu` with one compare-and-swap.
    /// Re-acquisition by the current holder is a no-op.
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if another CPU holds the lock.
    pub fn acquire(&self, cpu: CpuId) -> Result<(), TpmError> {
        let me = cpu.0 as u32;
        match self
            .holder
            .compare_exchange(UNHELD, me, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Ok(()),
            Err(current) if current == me => Ok(()),
            Err(current) => Err(TpmError::LockHeld {
                holder: CpuId(current as u16),
            }),
        }
    }

    /// Releases the lock.
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if `cpu` is not the holder.
    pub fn release(&self, cpu: CpuId) -> Result<(), TpmError> {
        let me = cpu.0 as u32;
        match self
            .holder
            .compare_exchange(me, UNHELD, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Ok(()),
            Err(UNHELD) => Ok(()),
            Err(current) => Err(TpmError::LockHeld {
                holder: CpuId(current as u16),
            }),
        }
    }
}

/// The hardware TPM lock as a *virtual-time* resource: CPUs file
/// requests stamped with the virtual instant they reached the TPM, and
/// the arbiter grants in deterministic `(time, cpu)` order.
///
/// [`SharedTpmLock`] resolves contention by whichever OS thread's
/// compare-and-swap lands first — correct, but host-scheduling-
/// dependent. A discrete-event executor has no racing threads, so the
/// grant order can instead be a pure function of the event timeline:
/// earliest requester wins, ties broken by the lower CPU id. This is
/// the same policy the paper's hardware arbiter could implement with a
/// fixed-priority daisy chain, and it makes TPM serialization
/// replayable.
///
/// # Example
///
/// ```
/// use sea_tpm::EventOrderedTpmLock;
/// use sea_hw::{CpuId, SimTime};
///
/// let mut arbiter = EventOrderedTpmLock::new();
/// arbiter.request(SimTime::from_ns(20), CpuId(1));
/// arbiter.request(SimTime::from_ns(10), CpuId(3));
/// arbiter.request(SimTime::from_ns(10), CpuId(2));
/// // Earliest request wins; equal times resolve to the lower CPU id.
/// assert_eq!(arbiter.grant(), Some(CpuId(2)));
/// assert_eq!(arbiter.grant(), None); // held until released
/// arbiter.release(CpuId(2)).unwrap();
/// assert_eq!(arbiter.grant(), Some(CpuId(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventOrderedTpmLock {
    holder: Option<CpuId>,
    /// Pending requests as `(request time, cpu)`, unsorted; `grant`
    /// selects the minimum, so the queue never depends on arrival
    /// order beyond the timestamps themselves.
    pending: Vec<(SimTime, CpuId)>,
}

impl EventOrderedTpmLock {
    /// Creates an unheld arbiter with no pending requests.
    pub fn new() -> Self {
        Self::default()
    }

    /// The CPU currently granted the TPM, if any.
    pub fn holder(&self) -> Option<CpuId> {
        self.holder
    }

    /// Number of CPUs waiting for a grant.
    pub fn waiting(&self) -> usize {
        self.pending.len()
    }

    /// Files a request from `cpu` stamped `at`. Duplicate requests from
    /// the same CPU keep the earliest stamp (hardware sees one request
    /// line per CPU).
    pub fn request(&mut self, at: SimTime, cpu: CpuId) {
        if self.holder == Some(cpu) {
            return; // reentrant: the holder already owns the TPM
        }
        match self.pending.iter_mut().find(|(_, c)| *c == cpu) {
            Some(slot) => slot.0 = slot.0.min(at),
            None => self.pending.push((at, cpu)),
        }
    }

    /// Grants the lock to the best pending requester — earliest stamp,
    /// ties to the lowest CPU id — if the TPM is free. Returns the
    /// winner, or `None` if the lock is held or nobody is waiting.
    pub fn grant(&mut self) -> Option<CpuId> {
        if self.holder.is_some() || self.pending.is_empty() {
            return None;
        }
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, c))| (t, c))
            .map(|(i, _)| i)?;
        let (_, cpu) = self.pending.swap_remove(best);
        self.holder = Some(cpu);
        Some(cpu)
    }

    /// Releases the grant.
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if `cpu` is not the holder.
    pub fn release(&mut self, cpu: CpuId) -> Result<(), TpmError> {
        match self.holder {
            Some(h) if h == cpu => {
                self.holder = None;
                Ok(())
            }
            Some(h) => Err(TpmError::LockHeld { holder: h }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_acquisition() {
        let mut lock = TpmLock::new();
        assert_eq!(lock.holder(), None);
        lock.acquire(CpuId(0)).unwrap();
        assert_eq!(lock.holder(), Some(CpuId(0)));
        assert_eq!(
            lock.acquire(CpuId(1)),
            Err(TpmError::LockHeld { holder: CpuId(0) })
        );
    }

    #[test]
    fn reentrant_for_holder() {
        let mut lock = TpmLock::new();
        lock.acquire(CpuId(2)).unwrap();
        assert!(lock.acquire(CpuId(2)).is_ok());
    }

    #[test]
    fn only_holder_releases() {
        let mut lock = TpmLock::new();
        lock.acquire(CpuId(0)).unwrap();
        assert!(lock.release(CpuId(1)).is_err());
        lock.release(CpuId(0)).unwrap();
        assert_eq!(lock.holder(), None);
        // Releasing an unheld lock is harmless.
        assert!(lock.release(CpuId(0)).is_ok());
    }

    #[test]
    fn shared_lock_matches_serial_semantics() {
        let lock = SharedTpmLock::new();
        assert_eq!(lock.holder(), None);
        lock.acquire(CpuId(0)).unwrap();
        assert_eq!(lock.holder(), Some(CpuId(0)));
        // Reentrant for the holder, exclusive against everyone else.
        assert!(lock.acquire(CpuId(0)).is_ok());
        assert_eq!(
            lock.acquire(CpuId(1)),
            Err(TpmError::LockHeld { holder: CpuId(0) })
        );
        // Only the holder releases; releasing unheld is harmless.
        assert!(lock.release(CpuId(1)).is_err());
        lock.release(CpuId(0)).unwrap();
        assert!(lock.release(CpuId(0)).is_ok());
        assert!(lock.acquire(CpuId(1)).is_ok());
    }

    #[test]
    fn event_ordered_grants_resolve_time_then_cpu() {
        let mut arb = EventOrderedTpmLock::new();
        arb.request(SimTime::from_ns(50), CpuId(0));
        arb.request(SimTime::from_ns(10), CpuId(9));
        arb.request(SimTime::from_ns(10), CpuId(4));
        assert_eq!(arb.waiting(), 3);
        // t=10 beats t=50; cpu4 beats cpu9 at equal time.
        assert_eq!(arb.grant(), Some(CpuId(4)));
        assert_eq!(arb.holder(), Some(CpuId(4)));
        assert_eq!(arb.grant(), None);
        arb.release(CpuId(4)).unwrap();
        assert_eq!(arb.grant(), Some(CpuId(9)));
        arb.release(CpuId(9)).unwrap();
        assert_eq!(arb.grant(), Some(CpuId(0)));
        arb.release(CpuId(0)).unwrap();
        assert_eq!(arb.grant(), None);
    }

    #[test]
    fn event_ordered_dedupes_requests_and_guards_release() {
        let mut arb = EventOrderedTpmLock::new();
        arb.request(SimTime::from_ns(30), CpuId(1));
        arb.request(SimTime::from_ns(5), CpuId(1)); // earlier stamp wins
        arb.request(SimTime::from_ns(20), CpuId(2));
        assert_eq!(arb.waiting(), 2);
        assert_eq!(arb.grant(), Some(CpuId(1)));
        // The holder re-requesting is a no-op, not a queued duplicate.
        arb.request(SimTime::from_ns(40), CpuId(1));
        assert_eq!(arb.waiting(), 1);
        assert_eq!(
            arb.release(CpuId(2)),
            Err(TpmError::LockHeld { holder: CpuId(1) })
        );
        arb.release(CpuId(1)).unwrap();
        assert!(arb.release(CpuId(1)).is_ok()); // releasing unheld is harmless
        assert_eq!(arb.grant(), Some(CpuId(2)));
    }

    #[test]
    fn shared_lock_admits_exactly_one_winner_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let lock = Arc::new(SharedTpmLock::new());
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16u16)
            .map(|cpu| {
                let lock = Arc::clone(&lock);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    if lock.acquire(CpuId(cpu)).is_ok() {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
        let holder = lock.holder().expect("someone won");
        lock.release(holder).unwrap();
    }
}
