//! Per-CPU sharding of the TPM session resources (§5.4 scaled out).
//!
//! The paper's sePCR design is explicitly *per-session*: each PAL owns
//! one measurement chain and never touches another's (§5.4.2). Nothing in
//! that contract requires every CPU to funnel through one bank-wide lock —
//! only the handful of genuinely-global commands (quote-key operations,
//! NVRAM) need a single arbiter. This module provides the sharded halves
//! of that split:
//!
//! * [`ShardedSePcrBank`] — the sePCR bank cut into per-CPU shards, each
//!   its own serialization point. A CPU allocates from its *home* shard
//!   (`cpu % shards`) and spills to the next shard in deterministic
//!   wrap-around order only when home is exhausted, so concurrent
//!   allocations from distinct CPUs touch distinct locks and the handle
//!   assignment is independent of thread interleaving.
//! * [`ShardedTpmArbiter`] — the TPM command gate with one hardware
//!   request line per CPU. Grant order is the exact `(request time,
//!   CPU id)` policy of [`crate::EventOrderedTpmLock`] — a fixed-priority
//!   merge across the lanes — so replacing the monolithic arbiter cannot
//!   reorder a single grant; each grant also reports the original request
//!   stamp, which is what lets the executor charge *lock wait* separately
//!   from *hold* time.
//!
//! [`crate::SharedTpmLock`] remains the arbiter for global commands; the
//! shards only cover the per-session paths.

use sea_crypto::Sha1Digest;
use sea_hw::{CpuId, SimTime};

use crate::error::TpmError;
use crate::pcr::PcrValue;
use crate::sepcr::{SePcrHandle, SePcrState, SharedSePcrBank};

/// Rewrites a shard-local handle inside an error back into the global
/// handle space, so callers never see shard-internal numbering.
fn globalize(err: TpmError, offset: u16) -> TpmError {
    match err {
        TpmError::NoSuchSePcr(h) => TpmError::NoSuchSePcr(SePcrHandle(h.0 + offset)),
        TpmError::SePcrWrongState(h) => TpmError::SePcrWrongState(SePcrHandle(h.0 + offset)),
        TpmError::SePcrAccessDenied { handle, requester } => TpmError::SePcrAccessDenied {
            handle: SePcrHandle(handle.0 + offset),
            requester,
        },
        other => other,
    }
}

/// A sePCR bank cut into per-CPU shards (see the module docs).
///
/// Handles remain bank-global: shard `s` owns the contiguous slot range
/// `[offsets[s], offsets[s] + counts[s])`, and every operation routes a
/// global [`SePcrHandle`] to the owning shard. With one shard this is
/// behaviorally identical to [`SharedSePcrBank`].
///
/// # Example
///
/// ```
/// use sea_tpm::ShardedSePcrBank;
/// use sea_crypto::Sha1;
/// use sea_hw::CpuId;
///
/// let bank = ShardedSePcrBank::new(4, 2);
/// // CPU 1's home shard is 1 (slots 2..4), so its first handle is slot 2.
/// let h = bank.allocate(&Sha1::digest(b"pal"), CpuId(1)).unwrap();
/// assert_eq!(h.0, 2);
/// bank.release_to_quote(h, CpuId(1)).unwrap();
/// bank.free(h).unwrap();
/// assert_eq!(bank.free_count(), 4);
/// ```
#[derive(Debug)]
pub struct ShardedSePcrBank {
    shards: Vec<SharedSePcrBank>,
    /// First global slot index of each shard.
    offsets: Vec<u16>,
    /// Slot count of each shard.
    counts: Vec<u16>,
}

impl ShardedSePcrBank {
    /// Creates a bank of `total` free sePCRs split across `shards` shards
    /// (clamped to at least one, and to at most one shard per slot when
    /// `total > 0`). Slots distribute as evenly as possible, earlier
    /// shards taking the remainder.
    pub fn new(total: u16, shards: u16) -> Self {
        let shards = shards.max(1).min(total.max(1));
        let base = total / shards;
        let extra = total % shards;
        let mut banks = Vec::with_capacity(shards as usize);
        let mut offsets = Vec::with_capacity(shards as usize);
        let mut counts = Vec::with_capacity(shards as usize);
        let mut offset = 0u16;
        for s in 0..shards {
            let count = base + u16::from(s < extra);
            banks.push(SharedSePcrBank::new(count));
            offsets.push(offset);
            counts.push(count);
            offset += count;
        }
        ShardedSePcrBank {
            shards: banks,
            offsets,
            counts,
        }
    }

    /// Number of shards the bank is cut into.
    pub fn shard_count(&self) -> u16 {
        self.shards.len() as u16
    }

    /// Total number of sePCR slots across all shards.
    pub fn count(&self) -> u16 {
        self.shards.iter().map(|s| s.count()).sum()
    }

    /// Number of Free slots across all shards.
    pub fn free_count(&self) -> u16 {
        self.shards.iter().map(|s| s.free_count()).sum()
    }

    /// The shard a CPU allocates from first.
    pub fn home_shard(&self, cpu: CpuId) -> u16 {
        cpu.0 % self.shard_count()
    }

    /// Routes a global handle to `(shard index, local handle)`.
    fn resolve(&self, handle: SePcrHandle) -> Result<(usize, SePcrHandle), TpmError> {
        for (s, (&offset, &count)) in self.offsets.iter().zip(&self.counts).enumerate() {
            if handle.0 >= offset && handle.0 < offset + count {
                return Ok((s, SePcrHandle(handle.0 - offset)));
            }
        }
        Err(TpmError::NoSuchSePcr(handle))
    }

    /// Runs `f` against the shard owning `handle`, translating any
    /// handle-carrying error back to global numbering.
    fn on_shard<T>(
        &self,
        handle: SePcrHandle,
        f: impl FnOnce(&SharedSePcrBank, SePcrHandle) -> Result<T, TpmError>,
    ) -> Result<T, TpmError> {
        let (s, local) = self.resolve(handle)?;
        f(&self.shards[s], local).map_err(|e| globalize(e, self.offsets[s]))
    }

    /// `SLAUNCH` allocation from `owner`'s home shard, spilling to the
    /// next shards in wrap-around order only when earlier ones are full.
    ///
    /// # Errors
    ///
    /// [`TpmError::NoFreeSePcr`] when every shard is exhausted.
    pub fn allocate(
        &self,
        measurement: &Sha1Digest,
        owner: CpuId,
    ) -> Result<SePcrHandle, TpmError> {
        let n = self.shards.len();
        let home = self.home_shard(owner) as usize;
        for i in 0..n {
            let s = (home + i) % n;
            match self.shards[s].allocate(measurement, owner) {
                Ok(local) => return Ok(SePcrHandle(self.offsets[s] + local.0)),
                Err(TpmError::NoFreeSePcr) => continue,
                Err(other) => return Err(globalize(other, self.offsets[s])),
            }
        }
        Err(TpmError::NoFreeSePcr)
    }

    /// Current state of a slot. See [`crate::SePcrBank::state`].
    ///
    /// # Errors
    ///
    /// [`TpmError::NoSuchSePcr`] for an invalid handle.
    pub fn state(&self, handle: SePcrHandle) -> Result<SePcrState, TpmError> {
        self.on_shard(handle, |b, h| b.state(h))
    }

    /// The CPU bound to a slot. See [`crate::SePcrBank::owner`].
    ///
    /// # Errors
    ///
    /// [`TpmError::NoSuchSePcr`] for an invalid handle.
    pub fn owner(&self, handle: SePcrHandle) -> Result<Option<CpuId>, TpmError> {
        self.on_shard(handle, |b, h| b.owner(h))
    }

    /// Owner-checked Exclusive read. See [`crate::SePcrBank::read_exclusive`].
    ///
    /// # Errors
    ///
    /// As for [`crate::SePcrBank::read_exclusive`].
    pub fn read_exclusive(
        &self,
        handle: SePcrHandle,
        requester: CpuId,
    ) -> Result<PcrValue, TpmError> {
        self.on_shard(handle, |b, h| b.read_exclusive(h, requester))
    }

    /// Owner-checked extend. See [`crate::SePcrBank::extend`].
    ///
    /// # Errors
    ///
    /// As for [`crate::SePcrBank::extend`].
    pub fn extend(
        &self,
        handle: SePcrHandle,
        requester: CpuId,
        measurement: &Sha1Digest,
    ) -> Result<PcrValue, TpmError> {
        self.on_shard(handle, |b, h| b.extend(h, requester, measurement))
    }

    /// Resume-path owner rebind. See [`crate::SePcrBank::rebind_owner`].
    ///
    /// # Errors
    ///
    /// As for [`crate::SePcrBank::rebind_owner`].
    pub fn rebind_owner(&self, handle: SePcrHandle, owner: CpuId) -> Result<(), TpmError> {
        self.on_shard(handle, |b, h| b.rebind_owner(h, owner))
    }

    /// `SFREE`: Exclusive → Quote. See [`crate::SePcrBank::release_to_quote`].
    ///
    /// # Errors
    ///
    /// As for [`crate::SePcrBank::release_to_quote`].
    pub fn release_to_quote(&self, handle: SePcrHandle, requester: CpuId) -> Result<(), TpmError> {
        self.on_shard(handle, |b, h| b.release_to_quote(h, requester))
    }

    /// Quote-state read. See [`crate::SePcrBank::read_for_quote`].
    ///
    /// # Errors
    ///
    /// As for [`crate::SePcrBank::read_for_quote`].
    pub fn read_for_quote(&self, handle: SePcrHandle) -> Result<PcrValue, TpmError> {
        self.on_shard(handle, |b, h| b.read_for_quote(h))
    }

    /// `TPM_SEPCR_Free`: Quote → Free. See [`crate::SePcrBank::free`].
    ///
    /// # Errors
    ///
    /// As for [`crate::SePcrBank::free`].
    pub fn free(&self, handle: SePcrHandle) -> Result<(), TpmError> {
        self.on_shard(handle, |b, h| b.free(h))
    }

    /// `SKILL`. See [`crate::SePcrBank::skill`].
    ///
    /// # Errors
    ///
    /// As for [`crate::SePcrBank::skill`].
    pub fn skill(&self, handle: SePcrHandle) -> Result<(), TpmError> {
        self.on_shard(handle, |b, h| b.skill(h))
    }

    /// Platform reset: every shard returns to all-Free.
    /// See [`crate::SePcrBank::platform_reset`].
    pub fn platform_reset(&self) {
        for shard in &self.shards {
            shard.platform_reset();
        }
    }
}

/// One granted TPM command slot: who won, and when they asked.
///
/// The request stamp is what turns the arbiter into an observability
/// source — `grant time - requested` is exactly the virtual time the CPU
/// spent queued behind other TPM commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpmGrant {
    /// The CPU the TPM is granted to.
    pub cpu: CpuId,
    /// The virtual instant that CPU filed its request.
    pub requested: SimTime,
}

/// The TPM command gate with one hardware request line per CPU.
///
/// Functionally equivalent to [`crate::EventOrderedTpmLock`] — grants
/// resolve in `(request time, CPU id)` order, requests are reentrant for
/// the holder, duplicate requests keep the earliest stamp, only the
/// holder releases — but structured as per-CPU lanes the way the paper's
/// daisy-chained hardware arbiter would be, and each grant carries its
/// request stamp so callers can attribute lock-wait time.
///
/// # Example
///
/// ```
/// use sea_tpm::ShardedTpmArbiter;
/// use sea_hw::{CpuId, SimTime};
///
/// let mut arbiter = ShardedTpmArbiter::new();
/// arbiter.request(SimTime::from_ns(20), CpuId(1));
/// arbiter.request(SimTime::from_ns(10), CpuId(3));
/// arbiter.request(SimTime::from_ns(10), CpuId(2));
/// // Earliest request wins; equal times resolve to the lower CPU id.
/// let grant = arbiter.grant().unwrap();
/// assert_eq!(grant.cpu, CpuId(2));
/// assert_eq!(grant.requested, SimTime::from_ns(10));
/// assert_eq!(arbiter.grant(), None); // held until released
/// arbiter.release(CpuId(2)).unwrap();
/// assert_eq!(arbiter.grant().unwrap().cpu, CpuId(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardedTpmArbiter {
    /// Request lanes indexed by CPU id: `Some(stamp)` when that CPU's
    /// request line is raised. Grown on demand.
    lanes: Vec<Option<SimTime>>,
    granted: Option<TpmGrant>,
}

impl ShardedTpmArbiter {
    /// Creates an idle arbiter with no raised request lines.
    pub fn new() -> Self {
        Self::default()
    }

    /// The CPU currently granted the TPM, if any.
    pub fn holder(&self) -> Option<CpuId> {
        self.granted.map(|g| g.cpu)
    }

    /// The current grant (holder plus its request stamp), if any.
    pub fn granted(&self) -> Option<TpmGrant> {
        self.granted
    }

    /// Number of CPUs with a raised request line.
    pub fn waiting(&self) -> usize {
        self.lanes.iter().filter(|l| l.is_some()).count()
    }

    /// Raises `cpu`'s request line stamped `at`. A raised line keeps its
    /// earliest stamp (the hardware has one line per CPU); a request from
    /// the current holder is a no-op.
    pub fn request(&mut self, at: SimTime, cpu: CpuId) {
        if self.holder() == Some(cpu) {
            return; // reentrant: the holder already owns the TPM
        }
        let lane = cpu.0 as usize;
        if lane >= self.lanes.len() {
            self.lanes.resize(lane + 1, None);
        }
        self.lanes[lane] = Some(match self.lanes[lane] {
            Some(existing) => existing.min(at),
            None => at,
        });
    }

    /// Grants the TPM to the best raised line — earliest stamp, ties to
    /// the lowest CPU id — if it is free. Returns the grant (including
    /// the winner's request stamp), or `None` if the TPM is held or no
    /// line is raised.
    pub fn grant(&mut self) -> Option<TpmGrant> {
        if self.granted.is_some() {
            return None;
        }
        // Scanning lanes in ascending CPU order with a strict `<` makes
        // the tie-break to the lower CPU id structural.
        let mut best: Option<(SimTime, usize)> = None;
        for (lane, stamp) in self.lanes.iter().enumerate() {
            if let Some(t) = stamp {
                if best.is_none_or(|(bt, _)| *t < bt) {
                    best = Some((*t, lane));
                }
            }
        }
        let (requested, lane) = best?;
        self.lanes[lane] = None;
        let grant = TpmGrant {
            cpu: CpuId(lane as u16),
            requested,
        };
        self.granted = Some(grant);
        Some(grant)
    }

    /// Releases the grant.
    ///
    /// # Errors
    ///
    /// [`TpmError::LockHeld`] if `cpu` is not the holder (releasing an
    /// unheld arbiter is harmless).
    pub fn release(&mut self, cpu: CpuId) -> Result<(), TpmError> {
        match self.granted {
            Some(g) if g.cpu == cpu => {
                self.granted = None;
                Ok(())
            }
            Some(g) => Err(TpmError::LockHeld { holder: g.cpu }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::EventOrderedTpmLock;
    use sea_crypto::Sha1;

    fn m(label: &[u8]) -> Sha1Digest {
        Sha1::digest(label)
    }

    #[test]
    fn shards_distribute_slots_and_sum_counts() {
        let bank = ShardedSePcrBank::new(10, 4);
        assert_eq!(bank.shard_count(), 4);
        assert_eq!(bank.count(), 10);
        assert_eq!(bank.free_count(), 10);
        // 10 = 3 + 3 + 2 + 2, earlier shards take the remainder.
        assert_eq!(bank.counts, vec![3, 3, 2, 2]);
        assert_eq!(bank.offsets, vec![0, 3, 6, 8]);
        // Degenerate parameters clamp instead of panicking.
        assert_eq!(ShardedSePcrBank::new(2, 8).shard_count(), 2);
        assert_eq!(ShardedSePcrBank::new(0, 0).count(), 0);
    }

    #[test]
    fn allocation_starts_at_the_home_shard_and_spills_in_order() {
        let bank = ShardedSePcrBank::new(4, 2); // shard 0: slots 0-1, shard 1: slots 2-3
        assert_eq!(bank.allocate(&m(b"a"), CpuId(0)).unwrap(), SePcrHandle(0));
        assert_eq!(bank.allocate(&m(b"b"), CpuId(1)).unwrap(), SePcrHandle(2));
        assert_eq!(bank.allocate(&m(b"c"), CpuId(2)).unwrap(), SePcrHandle(1));
        // CPU 3's home shard 1 is full: spill wraps to shard 0... also full
        // except — shard 0 has slot 1 taken, slot 0 taken; shard 1 slot 3 free.
        assert_eq!(bank.allocate(&m(b"d"), CpuId(3)).unwrap(), SePcrHandle(3));
        assert_eq!(
            bank.allocate(&m(b"e"), CpuId(0)).err(),
            Some(TpmError::NoFreeSePcr)
        );
        assert_eq!(bank.free_count(), 0);
    }

    #[test]
    fn lifecycle_routes_through_global_handles() {
        let bank = ShardedSePcrBank::new(4, 2);
        let h = bank.allocate(&m(b"pal"), CpuId(1)).unwrap();
        assert_eq!(h, SePcrHandle(2)); // shard 1's first slot
        assert_eq!(bank.state(h).unwrap(), SePcrState::Exclusive);
        assert_eq!(bank.owner(h).unwrap(), Some(CpuId(1)));
        let v = bank.read_exclusive(h, CpuId(1)).unwrap();
        let v2 = bank.extend(h, CpuId(1), &m(b"input")).unwrap();
        assert_ne!(v, v2);
        bank.rebind_owner(h, CpuId(3)).unwrap();
        assert_eq!(bank.owner(h).unwrap(), Some(CpuId(3)));
        bank.release_to_quote(h, CpuId(3)).unwrap();
        assert_eq!(bank.read_for_quote(h).unwrap(), v2);
        bank.free(h).unwrap();
        assert_eq!(bank.state(h).unwrap(), SePcrState::Free);
    }

    #[test]
    fn errors_name_global_handles() {
        let bank = ShardedSePcrBank::new(4, 2);
        let h = bank.allocate(&m(b"pal"), CpuId(1)).unwrap(); // global slot 2
                                                              // Wrong-state error from shard 1 must carry the global handle.
        assert_eq!(
            bank.read_for_quote(h).err(),
            Some(TpmError::SePcrWrongState(h))
        );
        assert_eq!(
            bank.read_exclusive(h, CpuId(0)).err(),
            Some(TpmError::SePcrAccessDenied {
                handle: h,
                requester: CpuId(0)
            })
        );
        // Out-of-range handles are rejected at the routing layer.
        assert_eq!(
            bank.state(SePcrHandle(4)).err(),
            Some(TpmError::NoSuchSePcr(SePcrHandle(4)))
        );
    }

    #[test]
    fn skill_and_platform_reset_cover_all_shards() {
        let bank = ShardedSePcrBank::new(4, 4);
        let h0 = bank.allocate(&m(b"a"), CpuId(0)).unwrap();
        let h1 = bank.allocate(&m(b"b"), CpuId(1)).unwrap();
        bank.skill(h0).unwrap();
        assert_eq!(bank.state(h0).unwrap(), SePcrState::Free);
        bank.release_to_quote(h1, CpuId(1)).unwrap();
        bank.platform_reset();
        assert_eq!(bank.free_count(), 4);
        assert_eq!(bank.state(h1).unwrap(), SePcrState::Free);
    }

    #[test]
    fn concurrent_home_shard_allocations_are_interleaving_independent() {
        use std::sync::Arc;

        // One slot per CPU, one shard per CPU: every thread must land in
        // its own home shard no matter how the OS schedules them.
        let bank = Arc::new(ShardedSePcrBank::new(16, 16));
        let handles: Vec<_> = (0..16u16)
            .map(|cpu| {
                let bank = Arc::clone(&bank);
                std::thread::spawn(move || bank.allocate(&m(b"pal"), CpuId(cpu)).unwrap())
            })
            .collect();
        for (cpu, t) in handles.into_iter().enumerate() {
            let h = t.join().unwrap();
            assert_eq!(h, SePcrHandle(cpu as u16), "cpu {cpu} left its home shard");
        }
        assert_eq!(bank.free_count(), 0);
    }

    #[test]
    fn arbiter_grant_order_matches_the_event_ordered_lock() {
        // Drive both arbiters through the same pseudorandom schedule of
        // request/grant/release steps and demand identical grant streams.
        let mut sharded = ShardedTpmArbiter::new();
        let mut reference = EventOrderedTpmLock::new();
        let mut sharded_grants = Vec::new();
        let mut reference_grants = Vec::new();
        let mut state = 0x5EED_CAFE_u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..500 {
            match rand() % 3 {
                0 => {
                    let at = SimTime::from_ns(rand() % 64);
                    let cpu = CpuId((rand() % 8) as u16);
                    sharded.request(at, cpu);
                    reference.request(at, cpu);
                }
                1 => {
                    let s = sharded.grant().map(|g| g.cpu);
                    let r = reference.grant();
                    assert_eq!(s, r);
                    sharded_grants.extend(s);
                    reference_grants.extend(r);
                }
                _ => {
                    if let Some(h) = sharded.holder() {
                        assert_eq!(reference.holder(), Some(h));
                        sharded.release(h).unwrap();
                        reference.release(h).unwrap();
                    }
                }
            }
            assert_eq!(sharded.holder(), reference.holder());
            assert_eq!(sharded.waiting(), reference.waiting());
        }
        assert_eq!(sharded_grants, reference_grants);
        assert!(!sharded_grants.is_empty(), "schedule exercised no grants");
    }

    #[test]
    fn arbiter_reports_request_stamps_and_dedupes_lanes() {
        let mut arb = ShardedTpmArbiter::new();
        arb.request(SimTime::from_ns(30), CpuId(1));
        arb.request(SimTime::from_ns(5), CpuId(1)); // earlier stamp wins
        arb.request(SimTime::from_ns(20), CpuId(2));
        assert_eq!(arb.waiting(), 2);
        let g = arb.grant().unwrap();
        assert_eq!(
            g,
            TpmGrant {
                cpu: CpuId(1),
                requested: SimTime::from_ns(5)
            }
        );
        assert_eq!(arb.granted(), Some(g));
        // The holder re-requesting is a no-op, not a queued duplicate.
        arb.request(SimTime::from_ns(40), CpuId(1));
        assert_eq!(arb.waiting(), 1);
        assert_eq!(
            arb.release(CpuId(2)),
            Err(TpmError::LockHeld { holder: CpuId(1) })
        );
        arb.release(CpuId(1)).unwrap();
        assert!(arb.release(CpuId(1)).is_ok()); // releasing unheld is harmless
        assert_eq!(arb.grant().unwrap().requested, SimTime::from_ns(20));
    }
}
