//! Non-volatile TPM storage — the state that survives a platform reset.
//!
//! §2.1.3–§2.1.4 split TPM state into two halves. The volatile half —
//! PCR banks, the sePCR bank, transport sessions, the command lock —
//! is rebuilt from scratch at every reboot. The persistent half lives
//! in NVRAM inside the TPM package and survives arbitrary power loss:
//!
//! * the endorsement/storage key material (modelled as the seed every
//!   key on this TPM is derived from),
//! * monotonic counters ("a trusted source of randomness, a monotonic
//!   counter, and the ability to perform cryptographic operations" are
//!   what the paper keeps *inside* the TCB for exactly this reason),
//! * opaque blobs the platform stores by index — the durable session
//!   engine keeps its sealed write-ahead journal here, which is what
//!   makes crash recovery possible at all.
//!
//! [`Nvram`] is deliberately free of policy: it neither seals nor
//! authorises. Sealing happens above it ([`crate::Tpm::seal`] binds to
//! PCR state); NVRAM just keeps the resulting bytes across resets.

use std::collections::BTreeMap;

/// The TPM's non-volatile storage. Everything in here survives
/// [`crate::Tpm::reboot`]; nothing in here is cleared by power loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nvram {
    ek_seed: Vec<u8>,
    counters: BTreeMap<u32, u64>,
    blobs: BTreeMap<u32, Vec<u8>>,
}

impl Nvram {
    /// Fresh NVRAM for a TPM manufactured from `seed`: the endorsement
    /// seed is burned in, all counters read zero, no blobs are stored.
    pub fn new(seed: &[u8]) -> Self {
        Nvram {
            ek_seed: seed.to_vec(),
            counters: BTreeMap::new(),
            blobs: BTreeMap::new(),
        }
    }

    /// The endorsement seed burned in at manufacture. Key derivation
    /// (SRK, AIK) starts here, which is why identical seeds rebuild
    /// identical keys after a reset.
    pub fn ek_seed(&self) -> &[u8] {
        &self.ek_seed
    }

    /// Current value of monotonic counter `id` (zero if never bumped).
    pub fn counter(&self, id: u32) -> u64 {
        self.counters.get(&id).copied().unwrap_or(0)
    }

    /// Increments monotonic counter `id` and returns the new value.
    /// Counters never decrease and never reset — that is the whole
    /// point of keeping them in NVRAM.
    pub fn increment_counter(&mut self, id: u32) -> u64 {
        let v = self.counters.entry(id).or_insert(0);
        *v += 1;
        *v
    }

    /// Stores an opaque blob at `index`, replacing any previous
    /// occupant.
    pub fn store_blob(&mut self, index: u32, bytes: &[u8]) {
        self.blobs.insert(index, bytes.to_vec());
    }

    /// Reads the blob at `index`, if one is stored.
    pub fn read_blob(&self, index: u32) -> Option<&[u8]> {
        self.blobs.get(&index).map(Vec::as_slice)
    }

    /// Deletes the blob at `index`; returns whether one was present.
    pub fn delete_blob(&mut self, index: u32) -> bool {
        self.blobs.remove(&index).is_some()
    }

    /// Number of blobs currently stored.
    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_nvram_has_seed_zero_counters_no_blobs() {
        let nv = Nvram::new(b"ek-seed");
        assert_eq!(nv.ek_seed(), b"ek-seed");
        assert_eq!(nv.counter(0), 0);
        assert_eq!(nv.counter(42), 0);
        assert_eq!(nv.blob_count(), 0);
        assert!(nv.read_blob(0).is_none());
    }

    #[test]
    fn counters_are_monotonic_and_independent() {
        let mut nv = Nvram::new(b"s");
        assert_eq!(nv.increment_counter(1), 1);
        assert_eq!(nv.increment_counter(1), 2);
        assert_eq!(nv.increment_counter(2), 1);
        assert_eq!(nv.counter(1), 2);
        assert_eq!(nv.counter(2), 1);
    }

    #[test]
    fn blobs_store_replace_and_delete() {
        let mut nv = Nvram::new(b"s");
        nv.store_blob(9, b"first");
        assert_eq!(nv.read_blob(9), Some(&b"first"[..]));
        nv.store_blob(9, b"second");
        assert_eq!(nv.read_blob(9), Some(&b"second"[..]));
        assert_eq!(nv.blob_count(), 1);
        assert!(nv.delete_blob(9));
        assert!(!nv.delete_blob(9));
        assert!(nv.read_blob(9).is_none());
    }

    #[test]
    fn clone_is_a_faithful_snapshot() {
        let mut nv = Nvram::new(b"s");
        nv.increment_counter(3);
        nv.store_blob(1, b"journal");
        let snap = nv.clone();
        nv.increment_counter(3);
        nv.delete_blob(1);
        assert_eq!(snap.counter(3), 1);
        assert_eq!(snap.read_blob(1), Some(&b"journal"[..]));
    }
}
