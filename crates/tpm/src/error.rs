//! TPM error type.

use std::error::Error;
use std::fmt;

use crate::pcr::PcrIndex;
use crate::sepcr::SePcrHandle;
use sea_crypto::CryptoError;
use sea_hw::CpuId;

/// Errors returned by TPM commands.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TpmError {
    /// A PCR index outside the bank (valid indices are 0–23).
    PcrOutOfRange(PcrIndex),
    /// The command requires hardware (CPU) locality — e.g. only the CPU's
    /// `SKINIT`/`SLAUNCH` microcode may reset dynamic PCRs via
    /// `TPM_HASH_START` (§2.1.3: "software cannot reset PCR 17").
    LocalityDenied,
    /// `TPM_Unseal` found the platform in a different configuration than
    /// the blob was sealed to (PCR composite mismatch).
    WrongPcrState,
    /// A sealed blob failed structural or cryptographic validation
    /// (tampered, truncated, or produced by a different TPM).
    InvalidBlob,
    /// `SLAUNCH` could not allocate a sePCR: all are in use. "If no sePCR
    /// is available, SLAUNCH must return a failure code" (§5.4.1).
    NoFreeSePcr,
    /// A sePCR command was issued in the wrong life-cycle state (e.g.
    /// quoting a sePCR still in Exclusive, or freeing one in Exclusive).
    SePcrWrongState(SePcrHandle),
    /// A sePCR handle does not exist in this TPM.
    NoSuchSePcr(SePcrHandle),
    /// A CPU other than the sePCR's bound owner attempted an exclusive
    /// command ("other code attempting any TPM commands with the PAL's
    /// sePCR handle will fail", §5.4.2).
    SePcrAccessDenied {
        /// The handle that was addressed.
        handle: SePcrHandle,
        /// The CPU that issued the rejected command.
        requester: CpuId,
    },
    /// The hardware TPM lock is held by another CPU (§5.4.5).
    LockHeld {
        /// The CPU currently holding the lock.
        holder: CpuId,
    },
    /// A `TPM_HASH_DATA`/`TPM_HASH_END` arrived with no open hash session.
    NoHashSession,
    /// The command died on the LPC transport before the TPM processed
    /// it (injected by the fault substrate). Retryable faults are bus
    /// glitches; non-retryable ones model a wedged chip.
    TransportFault {
        /// Whether retrying the command can succeed.
        retryable: bool,
    },
    /// An underlying cryptographic operation failed.
    Crypto(CryptoError),
}

impl TpmError {
    /// Whether a caller may reasonably retry the failed command:
    /// transient transport glitches and the hardware TPM lock being
    /// momentarily held both clear on their own.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TpmError::TransportFault { retryable: true } | TpmError::LockHeld { .. }
        )
    }
}

impl fmt::Display for TpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpmError::PcrOutOfRange(i) => write!(f, "PCR index {} out of range", i.0),
            TpmError::LocalityDenied => {
                write!(f, "command requires hardware (CPU) locality")
            }
            TpmError::WrongPcrState => {
                write!(
                    f,
                    "unseal denied: PCR composite does not match sealed state"
                )
            }
            TpmError::InvalidBlob => write!(f, "sealed blob failed validation"),
            TpmError::NoFreeSePcr => write!(f, "no free sePCR available"),
            TpmError::SePcrWrongState(h) => {
                write!(f, "sePCR {} is in the wrong state for this command", h.0)
            }
            TpmError::NoSuchSePcr(h) => write!(f, "no such sePCR: {}", h.0),
            TpmError::SePcrAccessDenied { handle, requester } => {
                write!(f, "{requester} may not address sePCR {}", handle.0)
            }
            TpmError::LockHeld { holder } => {
                write!(f, "TPM lock is held by {holder}")
            }
            TpmError::NoHashSession => write!(f, "no open TPM_HASH session"),
            TpmError::TransportFault { retryable: true } => {
                write!(f, "transient LPC transport fault (retryable)")
            }
            TpmError::TransportFault { retryable: false } => {
                write!(f, "fatal LPC transport fault (TPM wedged)")
            }
            TpmError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
        }
    }
}

impl Error for TpmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TpmError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for TpmError {
    fn from(e: CryptoError) -> Self {
        TpmError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_for_all_variants() {
        let cases = [
            TpmError::PcrOutOfRange(PcrIndex(24)),
            TpmError::LocalityDenied,
            TpmError::WrongPcrState,
            TpmError::InvalidBlob,
            TpmError::NoFreeSePcr,
            TpmError::SePcrWrongState(SePcrHandle(0)),
            TpmError::NoSuchSePcr(SePcrHandle(9)),
            TpmError::SePcrAccessDenied {
                handle: SePcrHandle(1),
                requester: CpuId(2),
            },
            TpmError::LockHeld { holder: CpuId(0) },
            TpmError::NoHashSession,
            TpmError::TransportFault { retryable: true },
            TpmError::TransportFault { retryable: false },
            TpmError::Crypto(CryptoError::InvalidCiphertext),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn retryability_classification() {
        assert!(TpmError::TransportFault { retryable: true }.is_retryable());
        assert!(TpmError::LockHeld { holder: CpuId(1) }.is_retryable());
        assert!(!TpmError::TransportFault { retryable: false }.is_retryable());
        assert!(!TpmError::NoFreeSePcr.is_retryable());
        assert!(!TpmError::WrongPcrState.is_retryable());
    }

    #[test]
    fn crypto_error_converts_and_sources() {
        let e: TpmError = CryptoError::BadSignature.into();
        assert!(matches!(e, TpmError::Crypto(_)));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&TpmError::LocalityDenied).is_none());
    }
}
