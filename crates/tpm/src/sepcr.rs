//! Secure-execution PCRs (sePCRs) — the paper's proposed TPM extension.
//!
//! §5.4: concurrent PALs need one measurement chain each, but a v1.2 TPM
//! has a single PCR 17. The paper proposes a bank of sePCRs, each bound
//! to one PAL for its lifetime and moving through three states:
//!
//! ```text
//!              SLAUNCH                SFREE              TPM_Quote /
//!   Free ───────────────▶ Exclusive ─────────▶ Quote ─── TPM_SEPCR_Free ──▶ Free
//!                             │
//!                             └────────── SKILL (extend constant) ────────▶ Free
//! ```
//!
//! While Exclusive, only the bound PAL (enforced here by the owning CPU's
//! identity, standing in for the CPU/memory-controller enforcement of
//! §5.4.1) may extend, seal, or unseal against the sePCR. In the Quote
//! state, *untrusted* code may generate the attestation and then free the
//! slot — exactly the hand-off §5.4.3 describes.

use std::fmt;
use std::sync::Mutex;

use sea_crypto::Sha1Digest;
use sea_hw::CpuId;

use crate::error::TpmError;
use crate::pcr::PcrValue;

/// The well-known constant `SKILL` extends into a killed PAL's sePCR so
/// that any later attestation reveals the abnormal termination (§5.5).
pub const SKILL_CONSTANT: Sha1Digest = [0x5Bu8; 20];

/// Handle naming a sePCR slot. Handles "need not be secret" (§5.4.2):
/// possession conveys no authority — the owner binding does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SePcrHandle(pub u16);

impl fmt::Display for SePcrHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sePCR{}", self.0)
    }
}

/// Life-cycle state of a sePCR slot (§5.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SePcrState {
    /// Unallocated; eligible for the next `SLAUNCH`.
    #[default]
    Free,
    /// Bound to a running or suspended PAL; inaccessible to all others.
    Exclusive,
    /// The PAL has terminated; untrusted code may quote and then free.
    Quote,
}

#[derive(Debug, Clone)]
struct SePcrSlot {
    state: SePcrState,
    value: PcrValue,
    owner: Option<CpuId>,
}

/// The bank of secure-execution PCRs.
///
/// "The number of sePCRs present in a TPM establishes the limit for the
/// number of concurrently executing PALs" (§5.4) — [`SePcrBank::allocate`]
/// fails with [`TpmError::NoFreeSePcr`] when the bank is exhausted, which
/// the `ablation_sepcr` bench measures.
#[derive(Debug, Clone)]
pub struct SePcrBank {
    slots: Vec<SePcrSlot>,
}

impl SePcrBank {
    /// Creates a bank of `count` free sePCRs.
    pub fn new(count: u16) -> Self {
        SePcrBank {
            slots: (0..count)
                .map(|_| SePcrSlot {
                    state: SePcrState::Free,
                    value: PcrValue::ZERO,
                    owner: None,
                })
                .collect(),
        }
    }

    /// Total number of sePCR slots.
    pub fn count(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Number of slots currently in the `Free` state.
    pub fn free_count(&self) -> u16 {
        self.slots
            .iter()
            .filter(|s| s.state == SePcrState::Free)
            .count() as u16
    }

    /// `SLAUNCH` path: allocates a free sePCR, resets it to zero, extends
    /// the PAL `measurement`, binds it to `owner`, and returns the handle
    /// (§5.4.1).
    ///
    /// # Errors
    ///
    /// [`TpmError::NoFreeSePcr`] when every slot is Exclusive or Quote.
    pub fn allocate(
        &mut self,
        measurement: &Sha1Digest,
        owner: CpuId,
    ) -> Result<SePcrHandle, TpmError> {
        let (i, slot) = self
            .slots
            .iter_mut()
            .enumerate()
            .find(|(_, s)| s.state == SePcrState::Free)
            .ok_or(TpmError::NoFreeSePcr)?;
        slot.state = SePcrState::Exclusive;
        slot.value = PcrValue::ZERO.extended(measurement);
        slot.owner = Some(owner);
        Ok(SePcrHandle(i as u16))
    }

    fn slot(&self, handle: SePcrHandle) -> Result<&SePcrSlot, TpmError> {
        self.slots
            .get(handle.0 as usize)
            .ok_or(TpmError::NoSuchSePcr(handle))
    }

    fn slot_mut(&mut self, handle: SePcrHandle) -> Result<&mut SePcrSlot, TpmError> {
        self.slots
            .get_mut(handle.0 as usize)
            .ok_or(TpmError::NoSuchSePcr(handle))
    }

    /// Current state of a slot.
    ///
    /// # Errors
    ///
    /// [`TpmError::NoSuchSePcr`] for an invalid handle.
    pub fn state(&self, handle: SePcrHandle) -> Result<SePcrState, TpmError> {
        Ok(self.slot(handle)?.state)
    }

    /// The CPU currently bound to a slot, if any.
    ///
    /// # Errors
    ///
    /// [`TpmError::NoSuchSePcr`] for an invalid handle.
    pub fn owner(&self, handle: SePcrHandle) -> Result<Option<CpuId>, TpmError> {
        Ok(self.slot(handle)?.owner)
    }

    fn check_exclusive_owner(&self, handle: SePcrHandle, requester: CpuId) -> Result<(), TpmError> {
        let slot = self.slot(handle)?;
        if slot.state != SePcrState::Exclusive {
            return Err(TpmError::SePcrWrongState(handle));
        }
        if slot.owner != Some(requester) {
            return Err(TpmError::SePcrAccessDenied { handle, requester });
        }
        Ok(())
    }

    /// Reads a sePCR value from its owning PAL's CPU (Exclusive state).
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrAccessDenied`] from any other CPU;
    /// [`TpmError::SePcrWrongState`] outside Exclusive.
    pub fn read_exclusive(
        &self,
        handle: SePcrHandle,
        requester: CpuId,
    ) -> Result<PcrValue, TpmError> {
        self.check_exclusive_owner(handle, requester)?;
        Ok(self.slot(handle)?.value)
    }

    /// Extends `measurement` into the sePCR, from the owning CPU only
    /// (PALs "access \[their\] own sePCR to invoke TPM Extend to measure
    /// \[their\] inputs", §5.4.2).
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::read_exclusive`].
    pub fn extend(
        &mut self,
        handle: SePcrHandle,
        requester: CpuId,
        measurement: &Sha1Digest,
    ) -> Result<PcrValue, TpmError> {
        self.check_exclusive_owner(handle, requester)?;
        let slot = self.slot_mut(handle)?;
        slot.value = slot.value.extended(measurement);
        Ok(slot.value)
    }

    /// Hardware resume path: rebinds the slot's owner to the CPU now
    /// executing the PAL ("the PAL may execute on a different CPU each
    /// time it is resumed", §5.3.1). Only invoked by `SLAUNCH` microcode
    /// in the model (`sea-core`).
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Exclusive.
    pub fn rebind_owner(&mut self, handle: SePcrHandle, owner: CpuId) -> Result<(), TpmError> {
        let slot = self.slot_mut(handle)?;
        if slot.state != SePcrState::Exclusive {
            return Err(TpmError::SePcrWrongState(handle));
        }
        slot.owner = Some(owner);
        Ok(())
    }

    /// `SFREE` path: Exclusive → Quote, from the owning CPU.
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::read_exclusive`].
    pub fn release_to_quote(
        &mut self,
        handle: SePcrHandle,
        requester: CpuId,
    ) -> Result<(), TpmError> {
        self.check_exclusive_owner(handle, requester)?;
        let slot = self.slot_mut(handle)?;
        slot.state = SePcrState::Quote;
        slot.owner = None;
        Ok(())
    }

    /// Reads a sePCR value in the Quote state (open to untrusted code,
    /// which needs it to build the attestation).
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Quote.
    pub fn read_for_quote(&self, handle: SePcrHandle) -> Result<PcrValue, TpmError> {
        let slot = self.slot(handle)?;
        if slot.state != SePcrState::Quote {
            return Err(TpmError::SePcrWrongState(handle));
        }
        Ok(slot.value)
    }

    /// `TPM_SEPCR_Free` (§5.4.3): Quote → Free, callable from untrusted
    /// code after the quote has been generated.
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Quote.
    pub fn free(&mut self, handle: SePcrHandle) -> Result<(), TpmError> {
        let slot = self.slot_mut(handle)?;
        if slot.state != SePcrState::Quote {
            return Err(TpmError::SePcrWrongState(handle));
        }
        slot.state = SePcrState::Free;
        slot.value = PcrValue::ZERO;
        slot.owner = None;
        Ok(())
    }

    /// `SKILL` path (§5.5): extends [`SKILL_CONSTANT`] into the sePCR of
    /// a misbehaving PAL and frees the slot.
    ///
    /// # Errors
    ///
    /// [`TpmError::SePcrWrongState`] outside Exclusive.
    pub fn skill(&mut self, handle: SePcrHandle) -> Result<(), TpmError> {
        let slot = self.slot_mut(handle)?;
        if slot.state != SePcrState::Exclusive {
            return Err(TpmError::SePcrWrongState(handle));
        }
        slot.value = slot.value.extended(&SKILL_CONSTANT);
        slot.state = SePcrState::Free;
        slot.owner = None;
        Ok(())
    }

    /// Platform reset: every slot — Exclusive, Quote, or Free — returns
    /// to Free with a zero chain and no owner. sePCRs are *volatile*
    /// state: the PALs they were bound to ceased to exist when power
    /// was lost, so no binding may survive into the next boot (the
    /// reset analogue of static PCRs zeroing at reboot). Any session
    /// whose quote had not been generated before the cut loses it; the
    /// durable engine's journal is what brings those sessions back.
    pub fn platform_reset(&mut self) {
        for slot in &mut self.slots {
            slot.state = SePcrState::Free;
            slot.value = PcrValue::ZERO;
            slot.owner = None;
        }
    }
}

/// A [`SePcrBank`] safe to share across the concurrent session engine's
/// worker threads.
///
/// Each operation takes the bank's internal lock for exactly one state
/// transition, modelling the TPM as the serialization point it is in
/// hardware: two CPUs racing `SLAUNCH` both get a sePCR (or a clean
/// [`TpmError::NoFreeSePcr`]) and never observe a torn slot — a slot is
/// atomically Free, Exclusive (with its owner and full chain value), or
/// Quote, never in between.
///
/// # Example
///
/// ```
/// use sea_tpm::SharedSePcrBank;
/// use sea_crypto::Sha1;
/// use sea_hw::CpuId;
///
/// let bank = SharedSePcrBank::new(2);
/// let h = bank.allocate(&Sha1::digest(b"pal"), CpuId(0)).unwrap();
/// bank.release_to_quote(h, CpuId(0)).unwrap();
/// bank.free(h).unwrap();
/// assert_eq!(bank.free_count(), 2);
/// ```
#[derive(Debug)]
pub struct SharedSePcrBank {
    inner: Mutex<SePcrBank>,
}

impl SharedSePcrBank {
    /// Creates a shared bank of `count` free sePCRs.
    pub fn new(count: u16) -> Self {
        SharedSePcrBank {
            inner: Mutex::new(SePcrBank::new(count)),
        }
    }

    /// Wraps an existing bank (e.g. handing a serial platform's bank to
    /// the worker pool).
    pub fn from_bank(bank: SePcrBank) -> Self {
        SharedSePcrBank {
            inner: Mutex::new(bank),
        }
    }

    /// Unwraps back into the serial bank.
    pub fn into_bank(self) -> SePcrBank {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    fn with<T>(&self, f: impl FnOnce(&mut SePcrBank) -> T) -> T {
        // Every transition is all-or-nothing under the lock, so a
        // panicked holder cannot have left a torn slot: recover the
        // bank rather than poisoning every later TPM operation.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Total number of sePCR slots. See [`SePcrBank::count`].
    pub fn count(&self) -> u16 {
        self.with(|b| b.count())
    }

    /// Number of Free slots. See [`SePcrBank::free_count`].
    pub fn free_count(&self) -> u16 {
        self.with(|b| b.free_count())
    }

    /// Atomic `SLAUNCH` allocation. See [`SePcrBank::allocate`].
    ///
    /// # Errors
    ///
    /// [`TpmError::NoFreeSePcr`] when the bank is exhausted.
    pub fn allocate(
        &self,
        measurement: &Sha1Digest,
        owner: CpuId,
    ) -> Result<SePcrHandle, TpmError> {
        self.with(|b| b.allocate(measurement, owner))
    }

    /// Current state of a slot. See [`SePcrBank::state`].
    ///
    /// # Errors
    ///
    /// [`TpmError::NoSuchSePcr`] for an invalid handle.
    pub fn state(&self, handle: SePcrHandle) -> Result<SePcrState, TpmError> {
        self.with(|b| b.state(handle))
    }

    /// The CPU bound to a slot. See [`SePcrBank::owner`].
    ///
    /// # Errors
    ///
    /// [`TpmError::NoSuchSePcr`] for an invalid handle.
    pub fn owner(&self, handle: SePcrHandle) -> Result<Option<CpuId>, TpmError> {
        self.with(|b| b.owner(handle))
    }

    /// Owner-checked Exclusive read. See [`SePcrBank::read_exclusive`].
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::read_exclusive`].
    pub fn read_exclusive(
        &self,
        handle: SePcrHandle,
        requester: CpuId,
    ) -> Result<PcrValue, TpmError> {
        self.with(|b| b.read_exclusive(handle, requester))
    }

    /// Owner-checked extend. See [`SePcrBank::extend`].
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::extend`].
    pub fn extend(
        &self,
        handle: SePcrHandle,
        requester: CpuId,
        measurement: &Sha1Digest,
    ) -> Result<PcrValue, TpmError> {
        self.with(|b| b.extend(handle, requester, measurement))
    }

    /// Resume-path owner rebind. See [`SePcrBank::rebind_owner`].
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::rebind_owner`].
    pub fn rebind_owner(&self, handle: SePcrHandle, owner: CpuId) -> Result<(), TpmError> {
        self.with(|b| b.rebind_owner(handle, owner))
    }

    /// `SFREE`: Exclusive → Quote. See [`SePcrBank::release_to_quote`].
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::release_to_quote`].
    pub fn release_to_quote(&self, handle: SePcrHandle, requester: CpuId) -> Result<(), TpmError> {
        self.with(|b| b.release_to_quote(handle, requester))
    }

    /// Quote-state read. See [`SePcrBank::read_for_quote`].
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::read_for_quote`].
    pub fn read_for_quote(&self, handle: SePcrHandle) -> Result<PcrValue, TpmError> {
        self.with(|b| b.read_for_quote(handle))
    }

    /// `TPM_SEPCR_Free`: Quote → Free. See [`SePcrBank::free`].
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::free`].
    pub fn free(&self, handle: SePcrHandle) -> Result<(), TpmError> {
        self.with(|b| b.free(handle))
    }

    /// `SKILL`. See [`SePcrBank::skill`].
    ///
    /// # Errors
    ///
    /// As for [`SePcrBank::skill`].
    pub fn skill(&self, handle: SePcrHandle) -> Result<(), TpmError> {
        self.with(|b| b.skill(handle))
    }

    /// Platform reset. See [`SePcrBank::platform_reset`].
    pub fn platform_reset(&self) {
        self.with(|b| b.platform_reset());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_crypto::Sha1;

    fn m(label: &[u8]) -> Sha1Digest {
        Sha1::digest(label)
    }

    #[test]
    fn allocate_resets_extends_and_binds() {
        let mut bank = SePcrBank::new(2);
        let h = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        assert_eq!(bank.state(h).unwrap(), SePcrState::Exclusive);
        assert_eq!(bank.owner(h).unwrap(), Some(CpuId(0)));
        // Value is exactly extend(0, measurement) — same chain PCR 17
        // would hold after SKINIT.
        let expected = PcrValue::ZERO.extended(&m(b"pal"));
        assert_eq!(bank.read_exclusive(h, CpuId(0)).unwrap(), expected);
        assert_eq!(bank.free_count(), 1);
    }

    #[test]
    fn exhaustion_fails_allocation() {
        let mut bank = SePcrBank::new(1);
        bank.allocate(&m(b"a"), CpuId(0)).unwrap();
        assert_eq!(
            bank.allocate(&m(b"b"), CpuId(1)),
            Err(TpmError::NoFreeSePcr)
        );
    }

    #[test]
    fn non_owner_is_denied_exclusive_ops() {
        let mut bank = SePcrBank::new(1);
        let h = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        assert!(matches!(
            bank.read_exclusive(h, CpuId(1)),
            Err(TpmError::SePcrAccessDenied { .. })
        ));
        assert!(matches!(
            bank.extend(h, CpuId(1), &m(b"input")),
            Err(TpmError::SePcrAccessDenied { .. })
        ));
        assert!(matches!(
            bank.release_to_quote(h, CpuId(1)),
            Err(TpmError::SePcrAccessDenied { .. })
        ));
    }

    #[test]
    fn lifecycle_free_exclusive_quote_free() {
        let mut bank = SePcrBank::new(1);
        let h = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        // Cannot quote-read or free while Exclusive.
        assert!(matches!(
            bank.read_for_quote(h),
            Err(TpmError::SePcrWrongState(_))
        ));
        assert!(matches!(bank.free(h), Err(TpmError::SePcrWrongState(_))));

        bank.release_to_quote(h, CpuId(0)).unwrap();
        assert_eq!(bank.state(h).unwrap(), SePcrState::Quote);
        // Untrusted code may now read the value...
        let v = bank.read_for_quote(h).unwrap();
        assert_eq!(v, PcrValue::ZERO.extended(&m(b"pal")));
        // ...but exclusive ops are gone.
        assert!(bank.extend(h, CpuId(0), &m(b"late")).is_err());

        bank.free(h).unwrap();
        assert_eq!(bank.state(h).unwrap(), SePcrState::Free);
        assert_eq!(bank.free_count(), 1);
    }

    #[test]
    fn freed_slot_is_reusable_with_fresh_chain() {
        let mut bank = SePcrBank::new(1);
        let h1 = bank.allocate(&m(b"pal-a"), CpuId(0)).unwrap();
        bank.release_to_quote(h1, CpuId(0)).unwrap();
        bank.free(h1).unwrap();
        let h2 = bank.allocate(&m(b"pal-b"), CpuId(1)).unwrap();
        assert_eq!(h1, h2, "slot is recycled");
        // The chain restarted from zero: no residue of pal-a.
        assert_eq!(
            bank.read_exclusive(h2, CpuId(1)).unwrap(),
            PcrValue::ZERO.extended(&m(b"pal-b"))
        );
    }

    #[test]
    fn rebind_owner_moves_pal_between_cpus() {
        let mut bank = SePcrBank::new(1);
        let h = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        bank.rebind_owner(h, CpuId(3)).unwrap();
        assert!(bank.read_exclusive(h, CpuId(0)).is_err());
        assert!(bank.read_exclusive(h, CpuId(3)).is_ok());
    }

    #[test]
    fn skill_extends_constant_and_frees() {
        let mut bank = SePcrBank::new(1);
        let h = bank.allocate(&m(b"pal"), CpuId(0)).unwrap();
        let before = bank.read_exclusive(h, CpuId(0)).unwrap();
        bank.skill(h).unwrap();
        assert_eq!(bank.state(h).unwrap(), SePcrState::Free);
        // Re-allocating shows a fresh chain; the SKILL-extended value was
        // before.extended(SKILL_CONSTANT) while it existed.
        let skilled = before.extended(&SKILL_CONSTANT);
        assert_ne!(skilled, before);
        // SKILL from non-Exclusive states is rejected.
        let h2 = bank.allocate(&m(b"pal2"), CpuId(0)).unwrap();
        bank.release_to_quote(h2, CpuId(0)).unwrap();
        assert!(matches!(bank.skill(h2), Err(TpmError::SePcrWrongState(_))));
    }

    #[test]
    fn platform_reset_frees_every_slot_regardless_of_state() {
        let mut bank = SePcrBank::new(3);
        // Slot 0: Exclusive (a PAL was mid-flight at the cut).
        let h0 = bank.allocate(&m(b"running"), CpuId(0)).unwrap();
        // Slot 1: Quote (terminated, quote not yet pulled).
        let h1 = bank.allocate(&m(b"done"), CpuId(1)).unwrap();
        bank.release_to_quote(h1, CpuId(1)).unwrap();
        // Slot 2 stays Free.
        assert_eq!(bank.free_count(), 1);

        bank.platform_reset();

        assert_eq!(bank.free_count(), 3);
        for h in [h0, h1, SePcrHandle(2)] {
            assert_eq!(bank.state(h).unwrap(), SePcrState::Free);
            assert_eq!(bank.owner(h).unwrap(), None);
        }
        // Chains restart from zero: a fresh allocation shows no residue
        // of the pre-reset PAL.
        let h = bank.allocate(&m(b"after"), CpuId(2)).unwrap();
        assert_eq!(
            bank.read_exclusive(h, CpuId(2)).unwrap(),
            PcrValue::ZERO.extended(&m(b"after"))
        );
    }

    #[test]
    fn invalid_handle_rejected_everywhere() {
        let mut bank = SePcrBank::new(1);
        let bogus = SePcrHandle(7);
        assert!(matches!(bank.state(bogus), Err(TpmError::NoSuchSePcr(_))));
        assert!(bank.read_exclusive(bogus, CpuId(0)).is_err());
        assert!(bank.extend(bogus, CpuId(0), &m(b"x")).is_err());
        assert!(bank.free(bogus).is_err());
        assert!(bank.skill(bogus).is_err());
        assert!(bank.rebind_owner(bogus, CpuId(0)).is_err());
    }

    #[test]
    fn concurrent_pals_get_distinct_slots() {
        let mut bank = SePcrBank::new(3);
        let h1 = bank.allocate(&m(b"a"), CpuId(0)).unwrap();
        let h2 = bank.allocate(&m(b"b"), CpuId(1)).unwrap();
        let h3 = bank.allocate(&m(b"c"), CpuId(2)).unwrap();
        assert_ne!(h1, h2);
        assert_ne!(h2, h3);
        assert_eq!(bank.free_count(), 0);
        // Each PAL sees only its own chain.
        assert_eq!(
            bank.read_exclusive(h2, CpuId(1)).unwrap(),
            PcrValue::ZERO.extended(&m(b"b"))
        );
    }

    #[test]
    fn shared_bank_hands_out_distinct_slots_under_contention() {
        use std::sync::Arc;

        let bank = Arc::new(SharedSePcrBank::new(8));
        let handles: Vec<_> = (0..16u16)
            .map(|cpu| {
                let bank = Arc::clone(&bank);
                std::thread::spawn(move || bank.allocate(&m(&cpu.to_le_bytes()), CpuId(cpu)).ok())
            })
            .collect();
        let won: Vec<SePcrHandle> = handles
            .into_iter()
            .filter_map(|h| h.join().unwrap())
            .collect();
        // Exactly the bank's capacity was handed out, with no slot
        // granted twice.
        assert_eq!(won.len(), 8);
        let mut slots: Vec<u16> = won.iter().map(|h| h.0).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 8);
        assert_eq!(bank.free_count(), 0);
    }

    #[test]
    fn shared_bank_roundtrips_into_serial_bank() {
        let shared = SharedSePcrBank::new(2);
        let h = shared.allocate(&m(b"pal"), CpuId(0)).unwrap();
        shared.extend(h, CpuId(0), &m(b"input")).unwrap();
        let serial = shared.into_bank();
        assert_eq!(serial.state(h).unwrap(), SePcrState::Exclusive);
        assert_eq!(
            serial.read_exclusive(h, CpuId(0)).unwrap(),
            PcrValue::ZERO.extended(&m(b"pal")).extended(&m(b"input"))
        );
    }
}
