//! Per-vendor TPM command latencies, calibrated to Figure 3 and Table 1.
//!
//! The paper benchmarks five operations (PCR Extend, Seal, Quote, Unseal,
//! GetRandom-128B) on four v1.2 TPMs and reports (in prose and Figure 3):
//!
//! * the Broadcom TPM has the **fastest Seal (20.01 ms)** but the
//!   **slowest Quote and Unseal**;
//! * the Infineon TPM has the **best average performance** and an
//!   **Unseal of 390.98 ms**;
//! * switching Broadcom → Infineon saves **1132 ms** on a combined
//!   Quote + Unseal but adds **213 ms** of Seal overhead;
//! * Seal ranges over ≈20–500 ms and Unseal up to ≈900 ms across chips;
//! * the best-per-op composition gives a PAL Use floor of **579.37 ms**
//!   (177 ms SKINIT + 390.98 ms Infineon Unseal + 11.39 ms Broadcom
//!   Seal-of-small-state).
//!
//! The means below satisfy every one of those constraints simultaneously;
//! where Figure 3's exact bar heights are not recoverable from the text,
//! values were chosen to preserve the ordering and ratios (documented in
//! `EXPERIMENTS.md`).

use sea_crypto::Drbg;
use sea_hw::{SimDuration, TpmKind};

/// The TPM operations benchmarked in Figure 3, plus the hash interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpmOp {
    /// `TPM_Extend` — one PCR extension.
    PcrExtend,
    /// `TPM_Seal` under the 2048-bit SRK.
    Seal,
    /// `TPM_Quote` — AIK signature over a PCR composite.
    Quote,
    /// `TPM_Unseal` — SRK private decryption + PCR check.
    Unseal,
    /// `TPM_GetRandom` for 128 bytes.
    GetRandom128,
    /// `TPM_PCR_Read` (fast register read, not shown in Figure 3).
    PcrRead,
}

impl TpmOp {
    /// All Figure 3 operations, in the figure's x-axis order.
    pub const FIGURE3_OPS: [TpmOp; 5] = [
        TpmOp::PcrExtend,
        TpmOp::Seal,
        TpmOp::Quote,
        TpmOp::Unseal,
        TpmOp::GetRandom128,
    ];

    /// Display label as used in Figure 3.
    pub fn label(self) -> &'static str {
        match self {
            TpmOp::PcrExtend => "PCR Extend",
            TpmOp::Seal => "Seal",
            TpmOp::Quote => "Quote",
            TpmOp::Unseal => "Unseal",
            TpmOp::GetRandom128 => "GetRand 128B",
            TpmOp::PcrRead => "PCR Read",
        }
    }
}

/// Latency model for one TPM chip.
///
/// # Example
///
/// ```
/// use sea_tpm::{TpmOp, TpmTimingModel};
/// use sea_hw::TpmKind;
///
/// let broadcom = TpmTimingModel::for_kind(TpmKind::Broadcom);
/// let infineon = TpmTimingModel::for_kind(TpmKind::Infineon);
/// // Broadcom has the fastest Seal but the slowest Unseal (Figure 3).
/// assert!(broadcom.mean(TpmOp::Seal) < infineon.mean(TpmOp::Seal));
/// assert!(broadcom.mean(TpmOp::Unseal) > infineon.mean(TpmOp::Unseal));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpmTimingModel {
    extend_ms: f64,
    seal_ms: f64,
    quote_ms: f64,
    unseal_ms: f64,
    getrandom128_ms: f64,
    /// Effective `TPM_HASH_DATA` cost in ns per byte including LPC long
    /// wait cycles (Table 1: 2708.7 ns/B fitted for the Broadcom chip).
    hash_ns_per_byte: f64,
    /// Relative standard deviation applied to sampled latencies
    /// (Figure 3's error bars over 20 trials are small).
    rel_stddev: f64,
}

/// Fitted `SKINIT` hash rate with a 2007-era TPM attached (Table 1,
/// HP dc5750: 177.52 ms / 64 KiB).
pub(crate) const TPM_HASH_NS_PER_BYTE: f64 = 2708.68;

/// Hash rate of a future TPM running at full LPC bus speed (Table 1,
/// Tyan n3600R: 8.82 ms / 64 KiB): the paper suggests this "may be
/// representative of the performance of future TPMs".
pub(crate) const FAST_HASH_NS_PER_BYTE: f64 = 134.58;

impl TpmTimingModel {
    /// The calibrated model for a given chip.
    ///
    /// # Panics
    ///
    /// Panics for [`TpmKind::None`]: a missing TPM has no timing model.
    pub fn for_kind(kind: TpmKind) -> Self {
        let (extend, seal, quote, unseal, rand, hash) = match kind {
            // Broadcom (HP dc5750): fastest Seal, slowest Quote/Unseal.
            TpmKind::Broadcom => (22.0, 20.01, 880.0, 905.0, 25.0, TPM_HASH_NS_PER_BYTE),
            // Atmel in the Lenovo T60: slow Seal, mid Quote/Unseal.
            TpmKind::AtmelT60 => (12.0, 500.0, 700.0, 800.0, 30.0, TPM_HASH_NS_PER_BYTE),
            // Infineon: best average; Unseal 390.98 ms per the paper.
            TpmKind::Infineon => (8.0, 233.01, 262.0, 390.98, 15.0, TPM_HASH_NS_PER_BYTE),
            // Atmel in the Intel TEP (a different model than the T60's).
            TpmKind::AtmelTep => (25.0, 140.0, 600.0, 650.0, 40.0, TPM_HASH_NS_PER_BYTE),
            // Hypothetical future chip: bus-speed hashing, best-observed
            // command engine (Infineon-class RSA) — used by ablations.
            TpmKind::FutureFast => (8.0, 233.01, 262.0, 390.98, 15.0, FAST_HASH_NS_PER_BYTE),
            TpmKind::None => panic!("TpmKind::None has no timing model"),
        };
        TpmTimingModel {
            extend_ms: extend,
            seal_ms: seal,
            quote_ms: quote,
            unseal_ms: unseal,
            getrandom128_ms: rand,
            hash_ns_per_byte: hash,
            rel_stddev: 0.02,
        }
    }

    /// Mean latency of `op`.
    pub fn mean(&self, op: TpmOp) -> SimDuration {
        let ms = match op {
            TpmOp::PcrExtend => self.extend_ms,
            TpmOp::Seal => self.seal_ms,
            TpmOp::Quote => self.quote_ms,
            TpmOp::Unseal => self.unseal_ms,
            TpmOp::GetRandom128 => self.getrandom128_ms,
            TpmOp::PcrRead => 0.01,
        };
        SimDuration::from_ms_f64(ms)
    }

    /// Samples a latency for `op` with calibrated Gaussian jitter.
    pub fn sample(&self, op: TpmOp, noise: &mut Drbg) -> SimDuration {
        let mean_ms = self.mean(op).as_ms_f64();
        let ms = mean_ms * (1.0 + self.rel_stddev * gaussian(noise));
        SimDuration::from_ms_f64(ms.max(0.0))
    }

    /// `TPM_HASH_DATA` cost for `bytes` bytes (the `SKINIT` rate).
    pub fn hash_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_ns_f64(bytes as f64 * self.hash_ns_per_byte)
    }

    /// The effective hash rate (ns/byte).
    pub fn hash_ns_per_byte(&self) -> f64 {
        self.hash_ns_per_byte
    }

    /// `TPM_GetRandom` latency scaled to `bytes` (Figure 3 reports the
    /// 128-byte point; cost scales with requested bytes, minimum one
    /// internal block).
    pub fn getrandom_time(&self, bytes: usize) -> SimDuration {
        let blocks = bytes.max(1).div_ceil(128) as u64;
        self.mean(TpmOp::GetRandom128) * blocks
    }

    /// A model with every command `factor`× faster (the §5.7 "just make
    /// the TPM faster" ablation).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn sped_up(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "speed-up factor must be positive");
        TpmTimingModel {
            extend_ms: self.extend_ms / factor,
            seal_ms: self.seal_ms / factor,
            quote_ms: self.quote_ms / factor,
            unseal_ms: self.unseal_ms / factor,
            getrandom128_ms: self.getrandom128_ms / factor,
            hash_ns_per_byte: self.hash_ns_per_byte / factor,
            rel_stddev: self.rel_stddev,
        }
    }

    /// Average of the five Figure 3 operation means — the metric by which
    /// the paper calls the Infineon "the best average performance".
    pub fn figure3_average(&self) -> SimDuration {
        let total: SimDuration = TpmOp::FIGURE3_OPS.iter().map(|&op| self.mean(op)).sum();
        total / 5
    }
}

/// Standard normal sample via Box–Muller over the deterministic DRBG.
fn gaussian(noise: &mut Drbg) -> f64 {
    let u1 = (noise.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 2.0);
    let u2 = noise.next_u64() as f64 / u64::MAX as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> [TpmKind; 4] {
        [
            TpmKind::Broadcom,
            TpmKind::AtmelT60,
            TpmKind::Infineon,
            TpmKind::AtmelTep,
        ]
    }

    #[test]
    fn broadcom_fastest_seal_slowest_quote_unseal() {
        let broadcom = TpmTimingModel::for_kind(TpmKind::Broadcom);
        for kind in [TpmKind::AtmelT60, TpmKind::Infineon, TpmKind::AtmelTep] {
            let other = TpmTimingModel::for_kind(kind);
            assert!(
                broadcom.mean(TpmOp::Seal) < other.mean(TpmOp::Seal),
                "{kind:?}"
            );
            assert!(
                broadcom.mean(TpmOp::Quote) > other.mean(TpmOp::Quote),
                "{kind:?}"
            );
            assert!(
                broadcom.mean(TpmOp::Unseal) > other.mean(TpmOp::Unseal),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn infineon_best_average_and_exact_unseal() {
        let infineon = TpmTimingModel::for_kind(TpmKind::Infineon);
        assert!((infineon.mean(TpmOp::Unseal).as_ms_f64() - 390.98).abs() < 1e-6);
        for kind in [TpmKind::Broadcom, TpmKind::AtmelT60, TpmKind::AtmelTep] {
            let other = TpmTimingModel::for_kind(kind);
            assert!(
                infineon.figure3_average() < other.figure3_average(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn broadcom_to_infineon_deltas_match_paper() {
        let b = TpmTimingModel::for_kind(TpmKind::Broadcom);
        let i = TpmTimingModel::for_kind(TpmKind::Infineon);
        let quote_unseal_delta = (b.mean(TpmOp::Quote) + b.mean(TpmOp::Unseal))
            - (i.mean(TpmOp::Quote) + i.mean(TpmOp::Unseal));
        assert!(
            (quote_unseal_delta.as_ms_f64() - 1132.0).abs() < 1.0,
            "got {quote_unseal_delta}"
        );
        let seal_delta = i.mean(TpmOp::Seal) - b.mean(TpmOp::Seal);
        assert!(
            (seal_delta.as_ms_f64() - 213.0).abs() < 0.5,
            "got {seal_delta}"
        );
    }

    #[test]
    fn hash_rate_reproduces_table1_endpoints() {
        let with_tpm = TpmTimingModel::for_kind(TpmKind::Broadcom);
        assert!((with_tpm.hash_time(64 * 1024).as_ms_f64() - 177.52).abs() < 0.1);
        let future = TpmTimingModel::for_kind(TpmKind::FutureFast);
        assert!((future.hash_time(64 * 1024).as_ms_f64() - 8.82).abs() < 0.05);
    }

    #[test]
    fn sampling_is_deterministic_and_near_mean() {
        let model = TpmTimingModel::for_kind(TpmKind::Broadcom);
        let mut a = Drbg::new(b"noise");
        let mut b = Drbg::new(b"noise");
        for _ in 0..20 {
            let sa = model.sample(TpmOp::Quote, &mut a);
            let sb = model.sample(TpmOp::Quote, &mut b);
            assert_eq!(sa, sb);
            let rel = (sa.as_ms_f64() - 880.0).abs() / 880.0;
            assert!(rel < 0.15, "sample {sa} too far from mean");
        }
    }

    #[test]
    fn getrandom_scales_in_blocks() {
        let m = TpmTimingModel::for_kind(TpmKind::Infineon);
        assert_eq!(m.getrandom_time(1), m.getrandom_time(128));
        assert_eq!(m.getrandom_time(129), m.getrandom_time(128) * 2);
        assert_eq!(m.getrandom_time(0), m.getrandom_time(128));
    }

    #[test]
    fn sped_up_divides_every_cost() {
        let m = TpmTimingModel::for_kind(TpmKind::Broadcom);
        let fast = m.sped_up(10.0);
        for op in TpmOp::FIGURE3_OPS {
            let ratio = m.mean(op).as_ms_f64() / fast.mean(op).as_ms_f64();
            assert!((ratio - 10.0).abs() < 1e-6, "{op:?}");
        }
        assert!((fast.hash_ns_per_byte() - m.hash_ns_per_byte() / 10.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_figure3_labels() {
        assert_eq!(TpmOp::PcrExtend.label(), "PCR Extend");
        assert_eq!(TpmOp::GetRandom128.label(), "GetRand 128B");
    }

    #[test]
    fn all_models_have_positive_costs() {
        for kind in all_kinds() {
            let m = TpmTimingModel::for_kind(kind);
            for op in TpmOp::FIGURE3_OPS {
                assert!(m.mean(op) > SimDuration::ZERO, "{kind:?} {op:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no timing model")]
    fn none_kind_panics() {
        let _ = TpmTimingModel::for_kind(TpmKind::None);
    }
}
