//! TPM secure transport sessions (§3.3).
//!
//! "The south bridge is not included in the TCB since the TPM is capable
//! of creating a secure channel to the PAL (by engaging in secure
//! transport sessions)." The TPM sits on the LPC bus behind the south
//! bridge (Figure 1); without a protected channel, a malicious south
//! bridge could tamper with commands and responses in flight.
//!
//! The model follows the TPM v1.2 transport-session construction in
//! spirit: the caller encrypts a fresh session secret to the TPM's
//! storage key (OAEP), and both ends then authenticate every
//! command/response with HMAC over the payload and a rolling sequence
//! number. Tampering and replay by the bus are detected by either end.

use sea_crypto::{CryptoError, Drbg, Hmac, OaepLabel, RsaPrivateKey, RsaPublicKey, Sha256};

use crate::error::TpmError;

const TRANSPORT_LABEL: &[u8] = b"TPM_TRANSPORT";
const SECRET_LEN: usize = 16;

/// A message protected by a transport session: payload + MAC + sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedMessage {
    /// The (cleartext) command or response bytes. Transport sessions
    /// provide *integrity and freshness*; payload confidentiality, when
    /// needed, comes from sealing.
    pub payload: Vec<u8>,
    /// Message sequence number within the session.
    pub seq: u64,
    /// HMAC-SHA-256 over direction ‖ seq ‖ payload.
    pub mac: Vec<u8>,
}

/// Which way a message travels (bound into the MAC so the bus cannot
/// reflect a command back as a response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    ToTpm,
    FromTpm,
}

fn mac_message(key: &[u8], dir: Direction, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut h = Hmac::<Sha256>::new(key);
    h.update(&[match dir {
        Direction::ToTpm => 0x00,
        Direction::FromTpm => 0x01,
    }]);
    h.update(&seq.to_be_bytes());
    h.update(payload);
    h.finalize()
}

/// One endpoint of an established transport session.
///
/// Both the caller (PAL side) and the TPM side hold one; the
/// construction is symmetric apart from the direction tags.
#[derive(Debug, Clone)]
pub struct TransportEndpoint {
    key: Vec<u8>,
    send_seq: u64,
    recv_seq: u64,
    outbound: Direction,
}

impl TransportEndpoint {
    fn new(secret: &[u8], outbound: Direction) -> Self {
        TransportEndpoint {
            key: Hmac::<Sha256>::mac(secret, b"transport-mac-key"),
            send_seq: 0,
            recv_seq: 0,
            outbound,
        }
    }

    /// Protects an outbound message.
    pub fn protect(&mut self, payload: &[u8]) -> SealedMessage {
        let seq = self.send_seq;
        self.send_seq += 1;
        SealedMessage {
            payload: payload.to_vec(),
            seq,
            mac: mac_message(&self.key, self.outbound, seq, payload),
        }
    }

    /// Verifies an inbound message's MAC and sequence, returning the
    /// payload.
    ///
    /// # Errors
    ///
    /// [`TpmError::InvalidBlob`] on tampering, reflection, replay, or
    /// reordering.
    pub fn open(&mut self, msg: &SealedMessage) -> Result<Vec<u8>, TpmError> {
        let expected_dir = match self.outbound {
            Direction::ToTpm => Direction::FromTpm,
            Direction::FromTpm => Direction::ToTpm,
        };
        if msg.seq != self.recv_seq {
            return Err(TpmError::InvalidBlob);
        }
        let expected = mac_message(&self.key, expected_dir, msg.seq, &msg.payload);
        if expected != msg.mac {
            return Err(TpmError::InvalidBlob);
        }
        self.recv_seq += 1;
        Ok(msg.payload.clone())
    }
}

/// Establishes a transport session toward a TPM whose storage public key
/// is `tpm_public`. Returns the caller's endpoint plus the encrypted
/// session secret to ship across the (untrusted) bus.
///
/// # Errors
///
/// Propagates RSA failures as [`CryptoError`].
pub fn establish(
    tpm_public: &RsaPublicKey,
    rng: &mut Drbg,
) -> Result<(TransportEndpoint, Vec<u8>), CryptoError> {
    let secret = rng.fill(SECRET_LEN);
    let enc = tpm_public.encrypt_oaep(&secret, &OaepLabel(TRANSPORT_LABEL.to_vec()), rng)?;
    Ok((TransportEndpoint::new(&secret, Direction::ToTpm), enc))
}

/// TPM-side acceptance of a transport session: decrypts the session
/// secret with the storage private key.
///
/// # Errors
///
/// [`TpmError::InvalidBlob`] if the encrypted secret fails OAEP
/// validation (wrong key, tampered in flight).
pub fn accept(srk: &RsaPrivateKey, encrypted_secret: &[u8]) -> Result<TransportEndpoint, TpmError> {
    let secret = srk
        .decrypt_oaep(encrypted_secret, &OaepLabel(TRANSPORT_LABEL.to_vec()))
        .map_err(|_| TpmError::InvalidBlob)?;
    if secret.len() != SECRET_LEN {
        return Err(TpmError::InvalidBlob);
    }
    Ok(TransportEndpoint::new(&secret, Direction::FromTpm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> (TransportEndpoint, TransportEndpoint) {
        let srk = RsaPrivateKey::generate(512, &mut Drbg::new(b"transport srk")).unwrap();
        let mut rng = Drbg::new(b"transport rng");
        let (caller, enc) = establish(srk.public_key(), &mut rng).unwrap();
        let tpm = accept(&srk, &enc).unwrap();
        (caller, tpm)
    }

    #[test]
    fn command_response_roundtrip() {
        let (mut caller, mut tpm) = session();
        let cmd = caller.protect(b"TPM_Extend(17, ...)");
        assert_eq!(tpm.open(&cmd).unwrap(), b"TPM_Extend(17, ...)");
        let resp = tpm.protect(b"OK");
        assert_eq!(caller.open(&resp).unwrap(), b"OK");
        // Sequences advance independently per direction.
        let cmd2 = caller.protect(b"TPM_Quote(...)");
        assert_eq!(cmd2.seq, 1);
        assert!(tpm.open(&cmd2).is_ok());
    }

    #[test]
    fn bus_tampering_detected() {
        let (mut caller, mut tpm) = session();
        let mut cmd = caller.protect(b"TPM_Seal(secret)");
        cmd.payload[4] ^= 0x01; // the south bridge flips a bit
        assert_eq!(tpm.open(&cmd).unwrap_err(), TpmError::InvalidBlob);
    }

    #[test]
    fn replay_detected() {
        let (mut caller, mut tpm) = session();
        let cmd = caller.protect(b"TPM_GetRandom(128)");
        assert!(tpm.open(&cmd).is_ok());
        // The bus replays the same command.
        assert_eq!(tpm.open(&cmd).unwrap_err(), TpmError::InvalidBlob);
    }

    #[test]
    fn reordering_detected() {
        let (mut caller, mut tpm) = session();
        let c0 = caller.protect(b"first");
        let c1 = caller.protect(b"second");
        // Bus delivers the second command first.
        assert_eq!(tpm.open(&c1).unwrap_err(), TpmError::InvalidBlob);
        // In-order delivery still works afterwards.
        assert!(tpm.open(&c0).is_ok());
        assert!(tpm.open(&c1).is_ok());
    }

    #[test]
    fn reflection_detected() {
        let (mut caller, tpm) = session();
        let cmd = caller.protect(b"echo");
        // The bus bounces the caller's own message back as a "response".
        assert_eq!(caller.open(&cmd).unwrap_err(), TpmError::InvalidBlob);
        let _ = tpm;
    }

    #[test]
    fn wrong_key_rejected_at_accept() {
        let srk = RsaPrivateKey::generate(512, &mut Drbg::new(b"srk-a")).unwrap();
        let other = RsaPrivateKey::generate(512, &mut Drbg::new(b"srk-b")).unwrap();
        let mut rng = Drbg::new(b"rng");
        let (_caller, enc) = establish(srk.public_key(), &mut rng).unwrap();
        assert_eq!(accept(&other, &enc).unwrap_err(), TpmError::InvalidBlob);
    }

    #[test]
    fn distinct_sessions_do_not_cross() {
        let (mut caller_a, _tpm_a) = session();
        let srk = RsaPrivateKey::generate(512, &mut Drbg::new(b"other srk")).unwrap();
        let mut rng = Drbg::new(b"other rng");
        let (_caller_b, enc_b) = establish(srk.public_key(), &mut rng).unwrap();
        let mut tpm_b = accept(&srk, &enc_b).unwrap();
        let cmd = caller_a.protect(b"cross-session");
        assert_eq!(tpm_b.open(&cmd).unwrap_err(), TpmError::InvalidBlob);
    }
}
