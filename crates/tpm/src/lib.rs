//! # sea-tpm
//!
//! A functional Trusted Platform Module (v1.2-style) for the minimal-TCB
//! reproduction of McCune et al., *"How Low Can You Go?"* (ASPLOS 2008).
//!
//! The paper identifies the TPM as the dominant performance bottleneck of
//! minimal-TCB execution on 2007 hardware: `Seal`/`Unseal`/`Quote` are
//! 2048-bit RSA operations on a low-cost chip (Figure 3), and the TPM's
//! LPC wait states stretch `SKINIT` to ~177 ms for a 64 KB PAL (Table 1).
//! This crate models both the *function* and the *cost*:
//!
//! * [`Tpm`] — PCR bank with static/dynamic PCRs and v1.2 reset semantics,
//!   [`Tpm::seal`]/[`Tpm::unseal`] (hybrid RSA-OAEP + stream encryption
//!   bound to a PCR composite), [`Tpm::quote`] (AIK signature over the
//!   composite and a nonce), [`Tpm::get_random`], and the
//!   `TPM_HASH_START/DATA/END` interface `SKINIT` drives.
//! * [`TpmTimingModel`] — per-vendor command latencies calibrated to
//!   Figure 3 (Broadcom, Infineon, two Atmels) with the measured
//!   long-wait hash rates of Table 1.
//! * [`SePcrBank`] — the paper's *proposed* secure-execution PCRs (§5.4)
//!   with the Free → Exclusive → Quote → Free life cycle, owner
//!   enforcement, `SKILL` constant-extension, and sePCR-bound
//!   seal/unseal/quote.
//! * [`TpmLock`] — the proposed hardware arbitration for multi-CPU TPM
//!   access (§5.4.5).
//!
//! Every command returns a [`Timed`] result carrying the virtual-time
//! cost, which callers add to their [`sea_hw::SimClock`].
//!
//! # Example
//!
//! ```
//! use sea_tpm::{KeyStrength, PcrIndex, Tpm};
//! use sea_hw::TpmKind;
//!
//! # fn main() -> Result<(), sea_tpm::TpmError> {
//! let mut tpm = Tpm::new(TpmKind::Broadcom, KeyStrength::Demo512, b"seed");
//! let m = sea_crypto::Sha1::digest(b"my PAL");
//! tpm.extend(PcrIndex(17), &m)?;
//! let blob = tpm.seal(b"secret", &[PcrIndex(17)])?.value;
//! let out = tpm.unseal(&blob)?.value;
//! assert_eq!(out, b"secret");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boot;
mod error;
mod lock;
mod nvram;
mod pcr;
mod quote;
mod seal;
mod sepcr;
mod sepcr_set;
mod shard;
mod timing;
mod tpm;
mod transport;

pub use boot::{BootEvent, EventLog, SecureBootOutcome, SecureBootPolicy};
pub use error::TpmError;
pub use lock::{EventOrderedTpmLock, SharedTpmLock, TpmLock};
pub use nvram::Nvram;
pub use pcr::{PcrBank, PcrIndex, PcrValue, DYNAMIC_PCR_FIRST, DYNAMIC_PCR_LAST, NUM_PCRS};
pub use quote::{Quote, QuoteSource, WireQuote, WIRE_QUOTE_MAGIC, WIRE_QUOTE_VERSION};
pub use seal::SealedBlob;
pub use sepcr::{SePcrBank, SePcrHandle, SePcrState, SharedSePcrBank, SKILL_CONSTANT};
pub use sepcr_set::{SePcrSetBank, SePcrSetHandle};
pub use shard::{ShardedSePcrBank, ShardedTpmArbiter, TpmGrant};
pub use timing::{TpmOp, TpmTimingModel};
pub use tpm::{KeyStrength, Locality, Timed, Tpm};
pub use transport::{establish as establish_transport, SealedMessage, TransportEndpoint};
