//! Kernel rootkit detection with an attestable verdict.
//!
//! ```text
//! cargo run --example rootkit_detector
//! ```
//!
//! The detector PAL scans kernel-text snapshots on the paper's proposed
//! hardware. Because the snapshot digest is extended into the PAL's
//! sePCR, the final quote proves to a *remote* verifier both that the
//! genuine detector ran and which snapshot it judged — even though the
//! kernel being scanned is exactly the software we do not trust.

use minimal_tcb::core::{EnhancedSea, PalLogic, SecurePlatform, Verifier};
use minimal_tcb::crypto::Sha1;
use minimal_tcb::hw::{CpuId, Platform};
use minimal_tcb::pals::{RootkitDetector, RootkitVerdict};
use minimal_tcb::tpm::KeyStrength;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== attestable rootkit detection ==\n");

    let good_kernel = b"vmlinuz-2.6.23: sys_call_table[...] intact".to_vec();
    let mut rooted_kernel = good_kernel.clone();
    rooted_kernel.extend_from_slice(b" // sys_call_table[59] -> evil_execve");

    let platform = SecurePlatform::new(
        Platform::recommended(2),
        KeyStrength::Demo512,
        b"rootkit-demo",
    );
    let mut sea = EnhancedSea::new(platform)?;
    let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());

    let mut detector = RootkitDetector::new(&[&good_kernel]);
    let detector_image = detector.image();

    for (label, snapshot) in [
        ("clean boot", &good_kernel),
        ("after infection", &rooted_kernel),
    ] {
        let id = sea.slaunch(&mut detector, snapshot, CpuId(0), None)?;
        let done = sea.run_to_exit(&mut detector, id, CpuId(0))?;
        let verdict = RootkitVerdict::from_byte(done.output[0]).expect("valid verdict");
        println!("scan ({label}): {verdict:?}");
        println!("  session cost: {}", done.report);

        // Untrusted code generates the attestation; the remote verifier
        // checks the detector identity AND the scanned snapshot.
        let quote = sea.quote_and_free(id, b"scan-nonce")?;
        let binding = [Sha1::digest(snapshot)];
        verifier.verify_sepcr_quote(&quote.value, b"scan-nonce", &detector_image, &binding)?;
        println!("  attestation bound to this exact snapshot: ACCEPTED");

        // Verification against a *different* snapshot fails — the OS
        // cannot substitute a clean snapshot's verdict for a dirty one.
        let wrong = [Sha1::digest(b"some other snapshot")];
        assert!(verifier
            .verify_sepcr_quote(&quote.value, b"scan-nonce", &detector_image, &wrong)
            .is_err());
        println!("  attestation replay with swapped snapshot: REJECTED\n");
    }
    Ok(())
}
