//! Quickstart: run one PAL on both generations of the architecture.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The same Piece of Application Logic executes (a) on simulated 2007
//! hardware via `LegacySea` — paying SKINIT + TPM Seal/Unseal on every
//! invocation — and (b) on the paper's recommended hardware via
//! `EnhancedSea` — measured once, context-switched at VM-entry cost.
//! Both runs end with an attestation an external verifier accepts, and
//! the baseline run records an observability span stream showing where
//! every nanosecond of virtual time went.

use minimal_tcb::core::{
    EnhancedSea, FnPal, LegacySea, PalLogic, PalOutcome, SecurePlatform, Verifier,
};
use minimal_tcb::hw::{CpuId, Layer, Obs, Platform, SimDuration};
use minimal_tcb::tpm::KeyStrength;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== minimal-tcb quickstart ==\n");

    // A PAL that does 5 ms of "application work" and seals a secret for
    // its next life. 64 KB image: the AMD SLB maximum the paper sweeps.
    let make_pal = || {
        FnPal::new("quickstart-pal", |ctx| {
            ctx.work(SimDuration::from_ms(5));
            let secret = ctx.random(16)?;
            let _blob = ctx.seal(&secret)?;
            Ok(PalOutcome::Exit(b"done".to_vec()))
        })
        .with_image_size(64 * 1024)
    };

    // ---- (a) Baseline: today's hardware (HP dc5750, Broadcom TPM) ----
    let mut platform = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"qs");
    // Record an observability span stream: every charged latency lands
    // as a leaf span attributed to a layer (hw/tpm/core/os).
    let (obs, sink) = Obs::recording();
    platform.install_obs(obs);
    let mut legacy = LegacySea::new(platform)?;
    let mut pal = make_pal();
    let image = pal.image();
    let result = legacy.run_session(&mut pal, b"")?;
    println!("baseline (HP dc5750 + Broadcom TPM):");
    println!("  {}", result.report);
    let quote = legacy.quote(b"quickstart-nonce")?;
    println!("  quote generation: {}", quote.elapsed);
    let verifier = Verifier::new(legacy.platform().tpm().unwrap().aik_public().clone());
    verifier.verify_legacy_quote(
        &quote.value,
        b"quickstart-nonce",
        &image,
        minimal_tcb::hw::CpuVendor::Amd,
        &[],
    )?;
    println!("  external verifier: ACCEPTED\n");

    // ---- (b) Proposed: the paper's recommended hardware ----
    let platform = SecurePlatform::new(Platform::recommended(2), KeyStrength::Demo512, b"qs");
    let mut enhanced = EnhancedSea::new(platform)?;
    let mut pal = make_pal();
    let id = enhanced.slaunch(&mut pal, b"", CpuId(0), None)?;
    let done = enhanced.run_to_exit(&mut pal, id, CpuId(0))?;
    println!("proposed (SLAUNCH + sePCRs):");
    println!("  {}", done.report);
    let quote = enhanced.quote_and_free(id, b"quickstart-nonce")?;
    println!("  quote generation: {}", quote.elapsed);
    let verifier = Verifier::new(enhanced.platform().tpm().unwrap().aik_public().clone());
    verifier.verify_sepcr_quote(&quote.value, b"quickstart-nonce", &image, &[])?;
    println!("  external verifier: ACCEPTED\n");

    // ---- The punchline: per-context-switch cost ----
    let baseline_switch = result.report.overhead();
    let proposed_switch = enhanced.context_switch_cost();
    println!(
        "context switch: {} (baseline session overhead) vs {} (proposed)",
        baseline_switch, proposed_switch
    );
    println!(
        "improvement: {:.0}x",
        baseline_switch.as_ns() as f64 / proposed_switch.as_ns() as f64
    );

    // ---- Where did the baseline's time go? Ask the span stream. ----
    let snap = sink.snapshot();
    println!(
        "\nbaseline attribution ({} spans recorded):",
        snap.spans.len()
    );
    for layer in Layer::ALL {
        println!("  {:>4}: {}", layer.as_str(), snap.layer_total(layer));
    }
    println!(" total: {} of charged virtual time", snap.total());
    Ok(())
}
