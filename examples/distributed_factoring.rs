//! Distributed-computing worker: where should intermediate state live?
//!
//! ```text
//! cargo run --example distributed_factoring
//! ```
//!
//! The same factoring job (the paper's SETI@Home-style workload, §4.1)
//! runs twice: on baseline hardware, sealing its progress to the TPM
//! between quanta, and on the proposed hardware, keeping progress in its
//! protected pages across `SYIELD`. The overhead ratio between the two
//! runs is §5.7's argument rendered as an application.

use minimal_tcb::core::{EnhancedSea, LegacySea, SecurePlatform, SessionReport};
use minimal_tcb::hw::{CpuId, Platform};
use minimal_tcb::pals::{decode_factors, FactoringPal, PersistMode};
use minimal_tcb::tpm::KeyStrength;

const N: u64 = 104_729 * 104_723; // product of two five-digit primes
const QUANTUM: u64 = 20_000; // candidate divisors per scheduling quantum

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== distributed factoring: n = {N} ==\n");

    // ---- Baseline: progress sealed to the TPM every quantum ----
    let platform = SecurePlatform::new(
        Platform::hp_dc5750(),
        KeyStrength::Demo512,
        b"factor-legacy",
    );
    let mut legacy = LegacySea::new(platform)?;
    let mut worker = FactoringPal::new(N, QUANTUM, PersistMode::TpmSeal);
    let mut total = SessionReport::default();
    let mut sessions = 0u32;
    let factors = loop {
        sessions += 1;
        let r = legacy.run_session(&mut worker, b"")?;
        total = total.merged(&r.report);
        if let Some(f) = decode_factors(&r.output.unwrap_or_default()) {
            break f;
        }
    };
    println!("baseline (TPM-sealed progress):");
    println!("  factors: {} x {}", factors.0, factors.1);
    println!("  sessions: {sessions}");
    println!("  totals:   {total}");
    let baseline_overhead = total.overhead();

    // ---- Proposed: progress lives in protected pages ----
    let platform = SecurePlatform::new(
        Platform::recommended(2),
        KeyStrength::Demo512,
        b"factor-enhanced",
    );
    let mut enhanced = EnhancedSea::new(platform)?;
    let mut worker = FactoringPal::new(N, QUANTUM, PersistMode::InRegion);
    let id = enhanced.slaunch(&mut worker, b"", CpuId(0), None)?;
    let done = enhanced.run_to_exit(&mut worker, id, CpuId(0))?;
    let factors2 = decode_factors(&done.output).expect("factors found");
    println!("\nproposed (in-region progress across SYIELD):");
    println!("  factors: {} x {}", factors2.0, factors2.1);
    println!("  totals:   {}", done.report);
    assert_eq!(factors, factors2);

    let proposed_overhead = done.report.overhead();
    println!(
        "\narchitectural overhead: {} -> {} ({:.0}x less)",
        baseline_overhead,
        proposed_overhead,
        baseline_overhead.as_ns() as f64 / proposed_overhead.as_ns().max(1) as f64
    );
    println!(
        "identical useful work ({} vs {}) — the difference is pure architecture.",
        total.pal_work, done.report.pal_work
    );
    Ok(())
}
