//! Capstone: a full system day in the life.
//!
//! ```text
//! cargo run --example full_system
//! ```
//!
//! Boots a measured platform, multiprograms the paper's application PALs
//! alongside legacy work on the recommended hardware, ships a serialized
//! attestation across a simulated network to a remote verifier, and lets
//! a ring-0 adversary probe every isolation boundary along the way.

use minimal_tcb::core::{EnhancedSea, FnPal, PalLogic, PalOutcome, SecurePlatform, Verifier};
use minimal_tcb::hw::{CpuId, Machine, Platform, SimDuration};
use minimal_tcb::os::{Adversary, Scheduler};
use minimal_tcb::pals::{RootkitDetector, SshPassword, SshRequest};
use minimal_tcb::tpm::{EventLog, KeyStrength, PcrIndex, Quote};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== full system walkthrough ==\n");

    // 1. Power on: measured boot fills the static PCRs.
    let platform_desc = Platform::recommended(4);
    let mut sp = SecurePlatform::new(platform_desc.clone(), KeyStrength::Demo512, b"full");
    *sp.machine_mut() = Machine::builder(platform_desc).device("NIC").build();
    let mut boot_log = EventLog::new();
    {
        let tpm = sp.tpm_mut().unwrap();
        boot_log.measure(tpm, PcrIndex(0), "BIOS", b"bios-1.0")?;
        boot_log.measure(tpm, PcrIndex(4), "bootloader", b"loader-2.1")?;
        boot_log.measure(tpm, PcrIndex(8), "kernel", b"kernel-5.5")?;
    }
    println!(
        "boot: {} components measured into static PCRs",
        boot_log.events().len()
    );

    // 2. The OS multiprograms security services as PALs.
    let mut sea = EnhancedSea::new(sp)?;

    // Keep one attested PAL outside the batch so we can walk its quote
    // across the "network".
    let mut audited = FnPal::new("audited-service", |ctx| {
        ctx.work(SimDuration::from_ms(3));
        Ok(PalOutcome::Exit(b"audit ok".to_vec()))
    });
    let audited_image = audited.image();
    let id = sea.slaunch(&mut audited, b"", CpuId(0), None)?;

    // The adversary probes while it runs.
    let adv = Adversary::new();
    let blocked = [
        adv.read_pal_memory(&mut sea, id, CpuId(1)).was_blocked(),
        adv.dma_read_pal_memory(&mut sea, id, minimal_tcb::hw::DeviceId(0))
            .was_blocked(),
        adv.hijack_sepcr(&mut sea, id, CpuId(2)).was_blocked(),
    ];
    println!(
        "adversary probes while the PAL runs: {}/{} blocked",
        blocked.iter().filter(|b| **b).count(),
        blocked.len()
    );

    // One more probe through the traced path, so the denial lands in
    // the hardware event log.
    let pal_base = sea.secb(id)?.pages().base_addr();
    let _ = sea.platform_mut().machine_mut().read_traced(
        minimal_tcb::hw::Requester::Cpu(CpuId(1)),
        pal_base,
        16,
    );

    let done = sea.run_to_exit(&mut audited, id, CpuId(0))?;
    println!(
        "audited service output: {:?}",
        String::from_utf8_lossy(&done.output)
    );

    // 3. Untrusted code generates the attestation and serializes it.
    let quote = sea.quote_and_free(id, b"remote-challenge")?.value;
    let wire: Vec<u8> = quote.to_bytes();
    println!("attestation serialized: {} bytes over the wire", wire.len());

    // 4. The remote verifier, holding only the AIK and the trusted
    //    image, reconstructs and checks it.
    let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
    let received = Quote::from_bytes(&wire)?;
    verifier.verify_sepcr_quote(&received, b"remote-challenge", &audited_image, &[])?;
    println!("remote verifier: ACCEPTED\n");

    // 5. Meanwhile, batch services share the machine with legacy work.
    let mut sched = Scheduler::new(sea);
    sched.set_preemption_timer(Some(SimDuration::from_ms(5)));
    let kernel = b"kernel-5.5".to_vec();
    sched.add_job(Box::new(RootkitDetector::new(&[&kernel])), &kernel);
    sched.add_job(
        Box::new(SshPassword::new()),
        &SshRequest::Enroll(b"hunter2".to_vec()).to_bytes(),
    );
    for i in 0..4 {
        sched.add_job(
            Box::new(FnPal::new(&format!("svc-{i}"), move |ctx| {
                ctx.work(SimDuration::from_ms(8));
                Ok(PalOutcome::Exit(vec![i]))
            })),
            b"",
        );
    }
    let horizon = SimDuration::from_secs(2);
    let out = sched.run_all(horizon)?;
    println!(
        "scheduler: {} PAL jobs done, wall {}, stalls {}",
        out.outputs.len(),
        out.wall,
        out.stalled
    );
    println!(
        "legacy work kept {:.1}% of a {}-core machine during it all",
        100.0 * out.legacy_utilization(4, horizon),
        4
    );

    // 6. Denial events are visible in the hardware trace.
    let denials = sched
        .sea()
        .platform()
        .machine()
        .trace()
        .filtered(|e| matches!(e, minimal_tcb::hw::TraceEvent::AccessDenied { .. }))
        .count();
    println!("hardware trace retained {denials} recorded denial(s)");
    Ok(())
}
