//! A tour of attestation: trusted boot vs minimal-TCB PALs, plus the
//! TPM transport session that keeps the south bridge out of the TCB.
//!
//! ```text
//! cargo run --example attestation_tour
//! ```
//!
//! §2.1.1 of the paper describes attestation "as originally envisioned":
//! the verifier must assess *every* component loaded since boot. This
//! example builds that full chain, then contrasts it with attesting one
//! PAL — the paper's whole motivation — and finally demonstrates the
//! §3.3 transport session detecting a malicious bus.

use minimal_tcb::core::{EnhancedSea, FnPal, PalLogic, PalOutcome, SecurePlatform, Verifier};
use minimal_tcb::crypto::Drbg;
use minimal_tcb::hw::{CpuId, Platform};
use minimal_tcb::tpm::KeyStrength;
use minimal_tcb::tpm::{establish_transport, EventLog, PcrIndex, Quote, QuoteSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== attestation tour ==\n");

    // ---- Act 1: trusted boot (the original vision) ----
    let mut sp = SecurePlatform::new(Platform::recommended(2), KeyStrength::Demo512, b"tour");
    let mut log = EventLog::new();
    {
        let tpm = sp.tpm_mut().unwrap();
        log.measure(tpm, PcrIndex(0), "BIOS", b"AMIBIOS 08.00.15")?;
        log.measure(tpm, PcrIndex(4), "bootloader", b"GRUB 0.97-29")?;
        log.measure(tpm, PcrIndex(8), "kernel", b"vmlinuz-2.6.23 + 214 modules")?;
        log.measure(
            tpm,
            PcrIndex(8),
            "init system + config",
            b"sysvinit, 382 rc scripts",
        )?;
    }
    let wire = sp
        .tpm_mut()
        .unwrap()
        .quote(b"boot-nonce", &[PcrIndex(0), PcrIndex(4), PcrIndex(8)])?
        .value;
    let quote = Quote::from_wire(&wire)?;
    println!("trusted boot attestation:");
    println!(
        "  log entries the verifier must individually judge: {}",
        log.events().len()
    );
    for e in log.events() {
        println!("    - {} (PCR {})", e.description, e.pcr.0);
    }
    let ok = quote.verify_signature(sp.tpm().unwrap().aik_public());
    let matches = match quote.source() {
        QuoteSource::Pcrs { selection, values } => log.matches(
            &selection
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect::<Vec<_>>(),
        ),
        _ => false,
    };
    println!("  signature valid: {ok}; log replays: {matches}");
    println!(
        "  ...but \"trusted\" still hinges on auditing a BIOS, a bootloader,\n\
         a multi-million-line kernel, and every config file. (§1: \"securing\n\
         applications has become a daunting task.\")\n"
    );

    // ---- Act 2: one PAL, one measurement ----
    let mut sea = EnhancedSea::new(sp)?;
    let mut pal = FnPal::new("tiny-signer", |ctx| {
        let sig_key = ctx.random(16)?;
        let _ = ctx.seal(&sig_key)?;
        Ok(PalOutcome::Exit(b"signed".to_vec()))
    });
    let image = pal.image();
    let id = sea.slaunch(&mut pal, b"", CpuId(0), None)?;
    sea.run_to_exit(&mut pal, id, CpuId(0))?;
    let quote = sea.quote_and_free(id, b"pal-nonce")?.value;
    let verifier = Verifier::new(sea.platform().tpm().unwrap().aik_public().clone());
    verifier.verify_sepcr_quote(&quote, b"pal-nonce", &image, &[])?;
    println!("minimal-TCB attestation:");
    println!(
        "  components the verifier must judge: 1 (a {}-byte PAL image)",
        image.len()
    );
    println!("  external verifier: ACCEPTED — regardless of the OS's state\n");

    // ---- Act 3: the transport session vs the south bridge ----
    println!("transport session (why Figure 1 excludes the south bridge):");
    let mut rng = Drbg::new(b"session entropy");
    let srk_pub = sea.platform().tpm().unwrap().srk_public().clone();
    let (mut pal_end, enc_secret) = establish_transport(&srk_pub, &mut rng)?;
    let mut tpm_end = sea
        .platform_mut()
        .tpm_mut()
        .unwrap()
        .accept_transport(&enc_secret)?;

    let cmd = pal_end.protect(b"TPM_Extend(sePCR, input-hash)");
    println!(
        "  command delivered intact: {:?}",
        tpm_end.open(&cmd).is_ok()
    );

    let mut tampered = pal_end.protect(b"TPM_Seal(key material)");
    tampered.payload[4] ^= 0x40; // the south bridge flips a bit in flight
    println!(
        "  south-bridge tampering detected: {:?}",
        tpm_end.open(&tampered).is_err()
    );
    let replay = cmd.clone();
    println!(
        "  replayed command rejected: {:?}",
        tpm_end.open(&replay).is_err()
    );
    Ok(())
}
