//! A certificate authority whose signing key never leaves the TCB.
//!
//! ```text
//! cargo run --example certificate_authority
//! ```
//!
//! Reproduces the paper's CA application (§4.1): a Gen session creates
//! the keypair and seals the private half; Use sessions unseal, sign a
//! CSR, and erase. The printed per-session overheads are the Figure 2
//! story told through a real application.

use minimal_tcb::core::{LegacySea, SecurePlatform};
use minimal_tcb::hw::Platform;
use minimal_tcb::pals::{decode_public_key, verify_ca_signature, CaRequest, CertAuthority};
use minimal_tcb::tpm::KeyStrength;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== certificate authority inside the minimal TCB ==\n");

    let platform = SecurePlatform::new(Platform::hp_dc5750(), KeyStrength::Demo512, b"ca-demo");
    let mut sea = LegacySea::new(platform)?;
    let mut ca = CertAuthority::new();

    // Gen session: create + seal the CA key.
    let gen = sea.run_session(&mut ca, &CaRequest::Generate.to_bytes())?;
    let public =
        decode_public_key(&gen.output.expect("public key output")).expect("well-formed public key");
    println!("key generation session (PAL Gen):");
    println!("  {}", gen.report);
    println!("  CA public key: {} bits\n", public.modulus_bits());

    // Use sessions: sign three CSRs.
    for name in ["CN=alice.example", "CN=bob.example", "CN=carol.example"] {
        let csr = name.as_bytes().to_vec();
        let result = sea.run_session(&mut ca, &CaRequest::Sign(csr.clone()).to_bytes())?;
        let sig = result.output.expect("signature output");
        assert!(verify_ca_signature(&public, &csr, &sig));
        println!("signed {name} (PAL Use):");
        println!("  {}", result.report);
    }

    println!(
        "\nNote the per-signature overhead: every Use session pays a full\n\
         SKINIT plus a TPM Unseal — >1 s of overhead for ~5 ms of signing.\n\
         This is exactly the impracticality §4 of the paper demonstrates."
    );

    // The signing key itself was never observable: only sealed blobs
    // crossed the untrusted world.
    let tampered = verify_ca_signature(&public, b"CN=mallory.example", b"forged");
    assert!(!tampered);
    println!("forged signature rejected: OK");
    Ok(())
}
