//! Multiprogramming PALs alongside legacy work (Figure 4).
//!
//! ```text
//! cargo run --example multi_pal_server
//! ```
//!
//! A server hosts several security-sensitive services as PALs — password
//! checks, CA signatures, integrity scans — while legacy work keeps the
//! remaining CPU time. On baseline hardware every PAL session freezes
//! the whole machine; on the proposed hardware PALs and the legacy OS
//! run concurrently (§5's goal). The example prints the legacy CPU time
//! each architecture leaves on the table.

use minimal_tcb::core::{EnhancedSea, FnPal, LegacySea, PalLogic, PalOutcome, SecurePlatform};
use minimal_tcb::hw::{CpuId, Platform, SimDuration};
use minimal_tcb::os::{LegacyBatch, Scheduler};
use minimal_tcb::pals::{SshPassword, SshRequest};
use minimal_tcb::tpm::KeyStrength;

const N_CPUS: u16 = 4;
const HORIZON: SimDuration = SimDuration::from_secs(5);

fn service_pal(name: &str, work_ms: u64) -> Box<dyn PalLogic> {
    Box::new(
        FnPal::new(name, move |ctx| {
            ctx.work(SimDuration::from_ms(work_ms));
            let token = ctx.random(8)?;
            Ok(PalOutcome::Exit(token))
        })
        .with_image_size(16 * 1024),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== multi-PAL server: {N_CPUS} cores, {HORIZON} horizon ==\n");

    // ---- Proposed hardware: Scheduler over EnhancedSea ----
    let platform = SecurePlatform::new(
        Platform::recommended(N_CPUS),
        KeyStrength::Demo512,
        b"server",
    );
    let mut scheduler = Scheduler::new(EnhancedSea::new(platform)?);
    scheduler.set_preemption_timer(Some(SimDuration::from_ms(10)));

    // A realistic mix: one real SSH-password PAL plus synthetic services.
    let mut ssh = SshPassword::new();
    // Enroll first (single session, outside the measured batch).
    {
        let sea = scheduler.sea_mut();
        let id = sea.slaunch(
            &mut ssh,
            &SshRequest::Enroll(b"correct horse battery staple".to_vec()).to_bytes(),
            CpuId(0),
            None,
        )?;
        sea.run_to_exit(&mut ssh, id, CpuId(0))?;
        sea.quote_and_free(id, b"enroll")?;
    }
    scheduler.add_job(
        Box::new(ssh),
        &SshRequest::Verify(b"correct horse battery staple".to_vec()).to_bytes(),
    );
    for i in 0..6 {
        scheduler.add_job(service_pal(&format!("service-{i}"), 20), b"");
    }
    let enhanced = scheduler.run_all(HORIZON)?;

    println!("proposed hardware (concurrent PALs, Figure 4):");
    println!("  schedule wall time: {}", enhanced.wall);
    println!("  PAL cpu time:       {}", enhanced.pal_busy);
    println!("  stalled cpu time:   {}", enhanced.stalled);
    println!(
        "  legacy cpu time:    {} ({:.1}% of capacity)\n",
        enhanced.legacy_available,
        100.0 * enhanced.legacy_utilization(N_CPUS, HORIZON)
    );

    // ---- Baseline hardware: every session stalls the platform ----
    // Same core count as the proposed machine for a fair comparison.
    let mut baseline_platform = Platform::hp_dc5750();
    baseline_platform.n_cpus = N_CPUS;
    let platform = SecurePlatform::new(baseline_platform, KeyStrength::Demo512, b"server-legacy");
    let mut batch = LegacyBatch::new(LegacySea::new(platform)?);
    batch.add_job(
        Box::new(SshPassword::new()),
        &SshRequest::Enroll(b"correct horse battery staple".to_vec()).to_bytes(),
    );
    for i in 0..6 {
        batch.add_job(service_pal(&format!("service-{i}"), 20), b"");
    }
    let baseline = batch.run_all(HORIZON)?;

    println!("baseline hardware (whole-platform stalls, §4.2):");
    println!("  schedule wall time: {}", baseline.wall);
    println!("  PAL cpu time:       {}", baseline.pal_busy);
    println!("  stalled cpu time:   {}", baseline.stalled);
    println!(
        "  legacy cpu time:    {} ({:.1}% of capacity)\n",
        baseline.legacy_available,
        100.0 * baseline.legacy_utilization(N_CPUS, HORIZON)
    );

    println!(
        "legacy throughput recovered by the proposed hardware: {}",
        enhanced.legacy_available - baseline.legacy_available
    );
    Ok(())
}
