//! # minimal-tcb
//!
//! A comprehensive Rust reproduction of McCune, Parno, Perrig, Reiter,
//! and Seshadri, *"How Low Can You Go? Recommendations for
//! Hardware-Supported Minimal TCB Code Execution"* (ASPLOS 2008).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`crypto`] — from-scratch SHA-1/SHA-256/HMAC/bignum/RSA/DRBG (the
//!   TPM's cryptography is part of the system under study).
//! * [`hw`] — virtual-time hardware: CPUs, memory, the north-bridge
//!   memory controller (baseline DEV plus the paper's proposed per-page
//!   × per-CPU access-control table), LPC bus, and platform presets for
//!   every machine the paper measures.
//! * [`tpm`] — a functional TPM v1.2 with calibrated per-vendor timing
//!   (Figure 3 / Table 1) and the proposed sePCR extension (§5.4).
//! * [`core`] — the Secure Execution Architecture itself:
//!   [`core::LegacySea`] (today's hardware: SKINIT + TPM sealing),
//!   [`core::EnhancedSea`] (proposed: SLAUNCH/SECB/SYIELD/SFREE/SKILL),
//!   and the external [`core::Verifier`].
//! * [`os`] — the untrusted OS: page allocator, PAL scheduler, and the
//!   threat model's ring-0 [`os::Adversary`].
//! * [`pals`] — the paper's four applications: rootkit detector,
//!   distributed factoring, certificate authority, SSH passwords.
//! * [`fleet`] — fleet-scale attestation: sharded simulated platforms
//!   behind a deterministic dispatcher, checked by a standalone remote
//!   verifier service (certificate walks, nonce freshness, TCB-status
//!   policy).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record of
//! every table and figure. Runnable demos live in `examples/`.
//!
//! # Example
//!
//! ```
//! use minimal_tcb::core::{EnhancedSea, FnPal, PalOutcome, SecurePlatform};
//! use minimal_tcb::hw::{CpuId, Platform};
//! use minimal_tcb::tpm::KeyStrength;
//!
//! # fn main() -> Result<(), minimal_tcb::core::SeaError> {
//! let platform = SecurePlatform::new(Platform::recommended(2), KeyStrength::Demo512, b"hi");
//! let mut sea = EnhancedSea::new(platform)?;
//! let mut pal = FnPal::new("hi", |_| Ok(PalOutcome::Exit(b"minimal TCB".to_vec())));
//! let id = sea.slaunch(&mut pal, b"", CpuId(0), None)?;
//! let done = sea.run_to_exit(&mut pal, id, CpuId(0))?;
//! assert_eq!(done.output, b"minimal TCB");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use sea_core as core;
pub use sea_crypto as crypto;
pub use sea_fleet as fleet;
pub use sea_hw as hw;
pub use sea_os as os;
pub use sea_pals as pals;
pub use sea_tpm as tpm;
